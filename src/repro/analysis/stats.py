"""Summary statistics for experiment results.

Implemented directly (numpy only) so the analysis pipeline has no scipy
dependency at runtime; scipy remains available to tests for
cross-checking these implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..errors import ConfigError


def median(values: Sequence[float]) -> float:
    """Sample median (the paper's headline statistic for Fig. 2)."""
    if not len(values):
        raise ConfigError("median of empty sample")
    return float(np.median(np.asarray(values, dtype=float)))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not len(values):
        raise ConfigError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def iqr(values: Sequence[float]) -> tuple[float, float]:
    """(25th, 75th) percentiles — the box of a boxplot."""
    return percentile(values, 25.0), percentile(values, 75.0)


def harmonic_mean(values: Sequence[float]) -> float:
    """Batch harmonic mean (cross-check for the incremental Eq. 2).

    >>> round(harmonic_mean([100.0, 50.0]), 2)
    66.67
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigError("harmonic mean of empty sample")
    if np.any(array <= 0):
        raise ConfigError("harmonic mean requires positive values")
    return float(array.size / np.sum(1.0 / array))


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.median,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    All resample indices come from one ``(resamples, n)`` draw and the
    statistic is applied along axis 1, so the cost is a couple of numpy
    passes rather than ``resamples`` Python-level calls.  Statistics
    without an ``axis`` parameter fall back to ``np.apply_along_axis``.

    .. note:: **Seed-stream change.**  The pre-campaign implementation
       drew each resample with its own ``rng.choice`` call; this one
       draws every index in a single ``rng.integers`` call.  For a
       given ``seed`` the resample sets therefore differ from the old
       implementation's, and interval endpoints move within bootstrap
       noise (the interval *width* is cross-checked against the old
       per-resample implementation in ``tests/test_analysis.py``).
       Determinism for a fixed seed is unchanged.
    """
    array = np.asarray(values, dtype=float)
    if array.size < 2:
        raise ConfigError("bootstrap needs at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.Generator(np.random.PCG64(seed))
    indices = rng.integers(0, array.size, size=(resamples, array.size))
    resampled = array[indices]
    try:
        stats = np.asarray(statistic(resampled, axis=1), dtype=float)
    except TypeError:
        stats = np.apply_along_axis(statistic, 1, resampled)
    if stats.shape != (resamples,):
        raise ConfigError(
            f"statistic must reduce each resample to a scalar, got shape {stats.shape}"
        )
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of one sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def row(self, label: str, unit: str = "s") -> dict[str, str]:
        """A formatted table row."""
        return {
            "config": label,
            "n": str(self.count),
            f"median ({unit})": f"{self.median:.2f}",
            f"mean ({unit})": f"{self.mean:.2f}",
            "std": f"{self.std:.2f}",
            "IQR": f"[{self.p25:.2f}, {self.p75:.2f}]",
        }


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` from a sample.

    Accepts lists or numpy arrays (``OutcomeBatch`` columns pass
    straight through without a copy).  The four order statistics come
    from one ``np.percentile`` call over a single sort; ``median`` uses
    ``np.median`` so its value is bit-identical to :func:`median`.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigError("summary of empty sample")
    minimum, p25, p75, maximum = np.percentile(array, (0.0, 25.0, 75.0, 100.0))
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(minimum),
        p25=float(p25),
        median=float(np.median(array)),
        p75=float(p75),
        maximum=float(maximum),
    )
