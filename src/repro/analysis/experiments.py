"""Experiment definitions — one registered :class:`ExperimentDef` per
paper figure/table.

Every experiment is declared to the study registry
(:mod:`repro.study.registry`) as a typed parameter schema plus a
``build`` function returning an :class:`~repro.study.registry.
ExperimentPlan`: an *unrun* :class:`~repro.sim.campaign.Campaign` (all
configurations' work specs registered) coupled with a ``render``
callable that turns the campaign's per-label results into an
:class:`ExperimentResult` whose ``rendered`` text reproduces the
figure/table and whose ``raw`` dict carries the numbers for
assertions.  The :class:`~repro.study.study.Study` facade, the
registry-generated CLI (``repro experiment <id>``), and the benchmarks
all drive experiments through these definitions; the module-level
functions (``fig2_prebuffer_testbed(...)`` and friends) remain as thin
compatibility wrappers over :func:`repro.study.run_experiment`.

Execution knobs are uniform across every experiment: ``seed`` is a
schema param everywhere, and ``jobs``/``ipc`` select the execution
backend at :meth:`Study.run` time (``1`` serial, ``N`` or ``"auto"`` a
process pool; see :mod:`repro.sim.execution`).  Every experiment —
including the formerly serial-only fig1 and x3 — runs its whole sweep
as one campaign submission, and trials are i.i.d. with derived seeds,
so the rendered output is byte-identical whatever the backend or
submission order.

Index (see DESIGN.md §4 and EXPERIMENTS.md):

=========  ==========================================================
fig1       HTTPS bootstrap timeline vs closed forms η, ψ, π
fig2       testbed pre-buffering: WiFi vs LTE vs MSPlayer (Ratio/1MB)
fig3       scheduler × pre-buffer × initial-chunk sweep
fig4       YouTube-profile pre-buffering: 20/40/60 s
fig5       YouTube-profile re-buffering: 64/256 KB vs MSPlayer
table1     WiFi traffic fraction, pre/re-buffering, 20/40/60 s
x1         robustness: server failure + WiFi outage
x2         source diversity vs single-server MPTCP analogue
x3         estimator ablation on bursty traces
x6         server-selection policies under replicated client
           populations (population campaign)
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from collections.abc import Mapping

import numpy as np

from ..core.config import PlayerConfig
from ..ext.multi_client import MultiClientExperiment
from ..ext.population import PopulationCampaign
from ..net.tls import TLSParams, eta, head_start, psi
from ..sim.campaign import Campaign
from ..sim.execution import MSPlayerSpec, TrialSpec
from ..sim.profiles import NetworkProfile, mobility_profile, testbed_profile, youtube_profile
from ..sim.runner import TrialRunner
from ..sim.scenario import Scenario, ScenarioConfig
from ..sim.singlepath import FLASH_CHUNK, HTML5_CHUNK
from ..study.params import Param, ParamSchema
from ..study.registry import ExperimentDef, ExperimentPlan, register
from ..units import KB, MB, MS, format_size, parse_size
from .ablation import EstimatorCampaign, EstimatorTraceSpec
from .stats import summarize
from .tables import format_table, render_distribution_rows

#: Experiment default: the paper's repetition count.
PAPER_TRIALS = 20

#: Type of the ``jobs`` knob shared by the compatibility wrappers.
Jobs = int | str | None

#: Schedulers a sweep may select (everything ``make_scheduler`` knows).
SCHEDULER_CHOICES = ("harmonic", "ewma", "ratio", "last", "window")

#: Server-selection policies a population may use.
POLICY_CHOICES = ("static", "rotate", "least_loaded")

#: Estimators the ablation may walk.
ESTIMATOR_CHOICES = ("harmonic", "ewma", "window", "last")


@dataclass
class ExperimentResult:
    experiment_id: str
    rendered: str
    raw: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.rendered


# ---------------------------------------------------------------------------
# Shared schema params
# ---------------------------------------------------------------------------


def _trials(default: int = PAPER_TRIALS) -> Param:
    # cli_default keeps the command line's historical CI-speed default
    # (10) while the library default stays the paper's 20 repetitions.
    return Param(
        "trials",
        int,
        default,
        help="independent trials per configuration (paper: 20, §5.2)",
        minimum=1,
        cli_default=10,
    )


def _seed(default: int) -> Param:
    return Param("seed", int, default, help="root seed for derived trial seeds")


# ---------------------------------------------------------------------------
# Fig. 1 — bootstrap timeline
# ---------------------------------------------------------------------------


def _fig1_profile(rtt_wifi: float, rtt_lte: float, tls: TLSParams) -> NetworkProfile:
    from ..sim.profiles import InterfaceProfile

    return NetworkProfile(
        name="fig1",
        wifi=InterfaceProfile(
            kind="wifi", mean_mbps=20.0, sigma=0.0, rho=0.0,
            one_way_delay_s=rtt_wifi / 2, jitter_std_s=0.0,
        ),
        lte=InterfaceProfile(
            kind="lte", mean_mbps=20.0, sigma=0.0, rho=0.0,
            one_way_delay_s=rtt_lte / 2, jitter_std_s=0.0,
        ),
        tls=tls,
        proxy_distance_s=0.0,
        video_distance_s=0.0,
        dns_delay_s=0.0,
    )


def _pair_ms(measured: float, predicted: float) -> str:
    return f"{measured * 1000:7.1f} / {predicted * 1000:7.1f}"


_FIG1_TLS = TLSParams(delta1=0.008, delta2=0.008)


def _plan_fig1(params: Mapping) -> ExperimentPlan:
    """Deterministic single runs, one per θ — still a campaign, so the
    θ sweep fans out across workers like any other figure."""
    campaign = Campaign()
    for theta in params["thetas"]:
        rtt_lte = theta * params["rtt_wifi"]
        campaign.add(
            [
                TrialSpec(
                    label=f"theta={theta}",
                    trial=0,
                    seed=params["seed"],
                    profile_factory=partial(
                        _fig1_profile, params["rtt_wifi"], rtt_lte, _FIG1_TLS
                    ),
                    driver=MSPlayerSpec(
                        config=PlayerConfig(prebuffer_s=20.0), stop="prebuffer"
                    ),
                    scenario_config=ScenarioConfig(video_duration_s=120.0),
                )
            ]
        )
    return ExperimentPlan(campaign, partial(_render_fig1, params))


def _render_fig1(params: Mapping, results: Mapping) -> ExperimentResult:
    """Measured η/ψ/π on the simulated message sequence vs closed forms.

    Deterministic latencies, one video server, zero server think time:
    the only costs are the Fig. 1 exchanges, so the measured milestones
    should track ``η = 4R+Δ₁+Δ₂``, ``ψ = 6R+Δ₁+Δ₂``, ``π ≈ ψ+η``, and
    the fast path's fetch head start ``π₂−π₁ ≈ 10(θ−1)R₁``.
    """
    rtt_wifi = params["rtt_wifi"]
    rows = []
    raw: dict[str, dict[str, dict[str, float]]] = {}
    for theta in params["thetas"]:
        rtt_lte = theta * rtt_wifi
        outcome = results[f"theta={theta}"].outcomes[0]
        measured = {
            "psi_wifi": outcome.path_json_delay.get(0, float("nan")),
            "psi_lte": outcome.path_json_delay.get(1, float("nan")),
            "pi_wifi": outcome.path_first_video_delay.get(0, float("nan")),
            "pi_lte": outcome.path_first_video_delay.get(1, float("nan")),
        }
        predicted = {
            "psi_wifi": psi(rtt_wifi, _FIG1_TLS),
            "psi_lte": psi(rtt_lte, _FIG1_TLS),
            "pi_wifi": psi(rtt_wifi, _FIG1_TLS) + eta(rtt_wifi, _FIG1_TLS),
            "pi_lte": psi(rtt_lte, _FIG1_TLS) + eta(rtt_lte, _FIG1_TLS),
            "head_start": head_start(rtt_wifi, rtt_lte),
        }
        measured["head_start"] = measured["pi_lte"] - measured["pi_wifi"]
        raw[f"theta={theta}"] = {"measured": measured, "predicted": predicted}
        rows.append(
            {
                "theta": f"{theta:.1f}",
                "psi wifi meas/pred (ms)": _pair_ms(measured["psi_wifi"], predicted["psi_wifi"]),
                "psi lte meas/pred": _pair_ms(measured["psi_lte"], predicted["psi_lte"]),
                "pi wifi meas/pred": _pair_ms(measured["pi_wifi"], predicted["pi_wifi"]),
                "pi lte meas/pred": _pair_ms(measured["pi_lte"], predicted["pi_lte"]),
                "head start meas/pred": _pair_ms(measured["head_start"], predicted["head_start"]),
            }
        )
    rendered = format_table(
        rows,
        title=(
            "Fig. 1 — HTTPS bootstrap milestones, measured message sequence vs "
            "closed form (eta=4R+d1+d2, psi=6R+d1+d2, pi~psi+eta, head~10(theta-1)R1)"
        ),
    )
    return ExperimentResult("fig1", rendered, raw)


FIG1 = register(
    ExperimentDef(
        experiment_id="fig1",
        title="HTTPS bootstrap timeline vs closed forms eta, psi, pi",
        kind="single",
        schema=ParamSchema(
            (
                Param(
                    "rtt_wifi",
                    float,
                    50 * MS,
                    help="WiFi round-trip time in seconds",
                    minimum=0.001,
                ),
                Param(
                    "thetas",
                    float,
                    (1.5, 2.0, 2.5, 3.0),
                    help="LTE/WiFi RTT ratios to sweep",
                    minimum=1.0,
                    many=True,
                ),
                _seed(7),
            )
        ),
        build=_plan_fig1,
        description="Measured bootstrap milestones vs the paper's closed forms.",
        smoke_params={"thetas": (2.0,)},
    )
)


def fig1_bootstrap_timing(
    rtt_wifi: float = 50 * MS,
    thetas: tuple[float, ...] = (1.5, 2.0, 2.5, 3.0),
    seed: int = 7,
    jobs: Jobs = None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("fig1", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "fig1", jobs=jobs, rtt_wifi=rtt_wifi, thetas=thetas, seed=seed
    )


# ---------------------------------------------------------------------------
# Fig. 2 — testbed pre-buffering
# ---------------------------------------------------------------------------


def _plan_fig2(params: Mapping) -> ExperimentPlan:
    """WiFi vs LTE vs MSPlayer(Ratio, 1 MB) at a 40 s pre-buffer (§5.1)."""
    runner = TrialRunner(
        testbed_profile, root_seed=params["seed"], trials=params["trials"]
    )
    config = PlayerConfig(scheduler="ratio", base_chunk_bytes=1 * MB)
    baseline_config = PlayerConfig()
    campaign = Campaign()
    campaign.add_run(runner, "wifi", runner.singlepath(0, HTML5_CHUNK, baseline_config))
    campaign.add_run(runner, "lte", runner.singlepath(1, HTML5_CHUNK, baseline_config))
    campaign.add_run(runner, "msplayer", runner.msplayer(config))
    return ExperimentPlan(campaign, _render_fig2)


def _render_fig2(results: Mapping) -> ExperimentResult:
    samples = [
        ("WiFi", results["wifi"].startup_delays()),
        ("LTE", results["lte"].startup_delays()),
        ("MSPlayer", results["msplayer"].startup_delays()),
    ]
    medians = {label: summarize(values).median for label, values in samples}
    reduction = 1.0 - medians["MSPlayer"] / min(medians["WiFi"], medians["LTE"])
    rendered = render_distribution_rows(
        samples,
        title=(
            "Fig. 2 — 40 s pre-buffering download time, emulated testbed "
            f"(paper: MSPlayer 6.9 s vs best-single WiFi 10.9 s, -37 %; "
            f"measured reduction {reduction:.0%})"
        ),
    )
    return ExperimentResult(
        "fig2", rendered, {"medians": medians, "reduction": reduction, "samples": dict(samples)}
    )


FIG2 = register(
    ExperimentDef(
        experiment_id="fig2",
        title="testbed pre-buffering: WiFi vs LTE vs MSPlayer (Ratio/1MB)",
        kind="trials",
        schema=ParamSchema((_trials(), _seed(2014))),
        build=_plan_fig2,
        description="40 s pre-buffer download time on the emulated testbed.",
        smoke_params={"trials": 1},
    )
)


def fig2_prebuffer_testbed(
    trials: int = PAPER_TRIALS, seed: int = 2014, jobs: Jobs = None
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("fig2", ...)``."""
    from ..study import run_experiment

    return run_experiment("fig2", jobs=jobs, trials=trials, seed=seed)


# ---------------------------------------------------------------------------
# Fig. 3 — scheduler sweep
# ---------------------------------------------------------------------------


def _plan_fig3(params: Mapping) -> ExperimentPlan:
    """Download time vs scheduler × pre-buffer duration × initial chunk
    (§5.2).  All ``len(prebuffers) × len(chunks) × len(schedulers)``
    configurations go to the pool as one campaign — the whole sweep is
    a single submission with no per-configuration barrier.
    """
    runner = TrialRunner(
        testbed_profile, root_seed=params["seed"], trials=params["trials"]
    )
    campaign = Campaign()
    for prebuffer in params["prebuffers"]:
        for chunk in params["chunks"]:
            for scheduler in params["schedulers"]:
                config = PlayerConfig(
                    prebuffer_s=prebuffer, scheduler=scheduler, base_chunk_bytes=chunk
                )
                label = f"{scheduler}/{format_size(chunk)}/{prebuffer:.0f}s"
                campaign.add_run(runner, label, runner.msplayer(config))
    return ExperimentPlan(campaign, partial(_render_fig3, params))


def _render_fig3(params: Mapping, results: Mapping) -> ExperimentResult:
    raw: dict[str, dict] = {}
    sections: list[str] = []
    for prebuffer in params["prebuffers"]:
        for chunk in params["chunks"]:
            samples = []
            for scheduler in params["schedulers"]:
                label = f"{scheduler}/{format_size(chunk)}/{prebuffer:.0f}s"
                delays = results[label].batch.startup_delays()
                samples.append((scheduler, delays))
                stats = summarize(delays)
                raw[label] = {"median": stats.median, "std": stats.std}
            sections.append(
                render_distribution_rows(
                    samples,
                    title=(
                        f"Fig. 3 — pre-buffer {prebuffer:.0f}s, "
                        f"initial chunk {format_size(chunk)}"
                    ),
                )
            )
    return ExperimentResult("fig3", "\n\n".join(sections), raw)


FIG3 = register(
    ExperimentDef(
        experiment_id="fig3",
        title="scheduler x pre-buffer x initial-chunk sweep",
        kind="trials",
        schema=ParamSchema(
            (
                _trials(),
                _seed(2015),
                Param(
                    "prebuffers",
                    float,
                    (20.0, 40.0, 60.0),
                    help="pre-buffer durations (seconds) to sweep",
                    minimum=1.0,
                    many=True,
                ),
                Param(
                    "chunks",
                    int,
                    (16 * KB, 64 * KB, 256 * KB, 1 * MB),
                    help="initial chunk sizes (accepts 64KB/1MB forms)",
                    minimum=1,
                    many=True,
                    parse=parse_size,
                ),
                Param(
                    "schedulers",
                    str,
                    ("harmonic", "ewma", "ratio"),
                    help="chunk schedulers to sweep",
                    choices=SCHEDULER_CHOICES,
                    many=True,
                ),
            )
        ),
        build=_plan_fig3,
        description="The full §5.2 configuration sweep as one campaign.",
        smoke_params={
            "trials": 1,
            "prebuffers": (20.0,),
            "chunks": (64 * KB,),
            "schedulers": ("harmonic",),
        },
    )
)


def fig3_scheduler_sweep(
    trials: int = PAPER_TRIALS,
    seed: int = 2015,
    prebuffers: tuple[float, ...] = (20.0, 40.0, 60.0),
    chunks: tuple[int, ...] = (16 * KB, 64 * KB, 256 * KB, 1 * MB),
    schedulers: tuple[str, ...] = ("harmonic", "ewma", "ratio"),
    jobs: Jobs = None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("fig3", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "fig3",
        jobs=jobs,
        trials=trials,
        seed=seed,
        prebuffers=prebuffers,
        chunks=chunks,
        schedulers=schedulers,
    )


# ---------------------------------------------------------------------------
# Fig. 4 — YouTube-profile pre-buffering
# ---------------------------------------------------------------------------


def _plan_fig4(params: Mapping) -> ExperimentPlan:
    """Start-up delay for each pre-buffer on the wide-area profile (§6)."""
    runner = TrialRunner(
        youtube_profile, root_seed=params["seed"], trials=params["trials"]
    )
    campaign = Campaign()
    for prebuffer in params["prebuffers"]:
        config = PlayerConfig(prebuffer_s=prebuffer)
        campaign.add_run(runner, f"wifi-{prebuffer}", runner.singlepath(0, HTML5_CHUNK, config))
        campaign.add_run(runner, f"lte-{prebuffer}", runner.singlepath(1, HTML5_CHUNK, config))
        campaign.add_run(runner, f"ms-{prebuffer}", runner.msplayer(config))
    return ExperimentPlan(campaign, partial(_render_fig4, params))


def _render_fig4(params: Mapping, results: Mapping) -> ExperimentResult:
    sections = []
    raw: dict[str, dict] = {}
    for prebuffer in params["prebuffers"]:
        samples = [
            ("WiFi", results[f"wifi-{prebuffer}"].startup_delays()),
            ("LTE", results[f"lte-{prebuffer}"].startup_delays()),
            ("MSPlayer", results[f"ms-{prebuffer}"].startup_delays()),
        ]
        medians = {label: summarize(values).median for label, values in samples}
        reduction = 1.0 - medians["MSPlayer"] / min(medians["WiFi"], medians["LTE"])
        raw[f"{prebuffer:.0f}s"] = {"medians": medians, "reduction": reduction}
        sections.append(
            render_distribution_rows(
                samples,
                title=(
                    f"Fig. 4 — {prebuffer:.0f} s pre-buffer over the YouTube profile "
                    f"(measured reduction {reduction:.0%}; paper: 12/21/28 % for 20/40/60 s)"
                ),
            )
        )
    return ExperimentResult("fig4", "\n\n".join(sections), raw)


FIG4 = register(
    ExperimentDef(
        experiment_id="fig4",
        title="YouTube-profile pre-buffering: 20/40/60 s",
        kind="trials",
        schema=ParamSchema(
            (
                _trials(),
                _seed(2016),
                Param(
                    "prebuffers",
                    float,
                    (20.0, 40.0, 60.0),
                    help="pre-buffer durations (seconds)",
                    minimum=1.0,
                    many=True,
                ),
            )
        ),
        build=_plan_fig4,
        description="Start-up delay on the wide-area profile (§6).",
        smoke_params={"trials": 1, "prebuffers": (20.0,)},
    )
)


def fig4_prebuffer_youtube(
    trials: int = PAPER_TRIALS,
    seed: int = 2016,
    prebuffers: tuple[float, ...] = (20.0, 40.0, 60.0),
    jobs: Jobs = None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("fig4", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "fig4", jobs=jobs, trials=trials, seed=seed, prebuffers=prebuffers
    )


# ---------------------------------------------------------------------------
# Fig. 5 — re-buffering
# ---------------------------------------------------------------------------

#: The fixed single-path baselines of Fig. 5.
_FIG5_FIXED = (
    ("WiFi 64KB", 0, FLASH_CHUNK),
    ("WiFi 256KB", 0, HTML5_CHUNK),
    ("LTE 64KB", 1, FLASH_CHUNK),
    ("LTE 256KB", 1, HTML5_CHUNK),
)


def _plan_fig5(params: Mapping) -> ExperimentPlan:
    """Playout-buffer refill time: fixed 64/256 KB single path vs
    MSPlayer (§6).  Each refill duration gets its own runner (the
    scenario's video must outlast the refills), but every configuration
    of every duration still lands in one campaign submission.
    """
    campaign = Campaign()
    target_cycles = params["target_cycles"]
    for rebuffer in params["rebuffers"]:
        # Longer refills need a longer video so cycles complete.
        scenario_config = ScenarioConfig(video_duration_s=max(300.0, rebuffer * 8))
        runner = TrialRunner(
            youtube_profile,
            scenario_config=scenario_config,
            root_seed=params["seed"],
            trials=params["trials"],
        )
        config = PlayerConfig(rebuffer_fetch_s=rebuffer)
        for label, iface, chunk in _FIG5_FIXED:
            campaign.add_run(
                runner,
                f"{label}-{rebuffer}",
                runner.singlepath(
                    iface, chunk, config, stop="cycles", target_cycles=target_cycles
                ),
            )
        campaign.add_run(
            runner,
            f"ms-{rebuffer}",
            runner.msplayer(config, stop="cycles", target_cycles=target_cycles),
        )
    return ExperimentPlan(campaign, partial(_render_fig5, params))


def _render_fig5(params: Mapping, results: Mapping) -> ExperimentResult:
    sections = []
    raw: dict[str, dict] = {}
    for rebuffer in params["rebuffers"]:
        samples = [
            (label, results[f"{label}-{rebuffer}"].cycle_durations())
            for label, _iface, _chunk in _FIG5_FIXED
        ]
        samples.append(("MSPlayer", results[f"ms-{rebuffer}"].cycle_durations()))
        raw[f"{rebuffer:.0f}s"] = {
            label: summarize(values).median for label, values in samples if values
        }
        sections.append(
            render_distribution_rows(
                [(label, values) for label, values in samples if values],
                title=f"Fig. 5 — refill {rebuffer:.0f} s of video (re-buffering phase)",
            )
        )
    return ExperimentResult("fig5", "\n\n".join(sections), raw)


FIG5 = register(
    ExperimentDef(
        experiment_id="fig5",
        title="YouTube-profile re-buffering: 64/256 KB vs MSPlayer",
        kind="trials",
        schema=ParamSchema(
            (
                _trials(),
                _seed(2017),
                Param(
                    "rebuffers",
                    float,
                    (20.0, 40.0, 60.0),
                    help="re-buffer refill durations (seconds of video)",
                    minimum=1.0,
                    many=True,
                ),
                Param(
                    "target_cycles",
                    int,
                    3,
                    help="completed re-buffering cycles per session",
                    minimum=1,
                ),
            )
        ),
        build=_plan_fig5,
        description="Refill-time distributions during steady-state playback.",
        smoke_params={"trials": 1, "rebuffers": (20.0,), "target_cycles": 1},
    )
)


def fig5_rebuffer(
    trials: int = PAPER_TRIALS,
    seed: int = 2017,
    rebuffers: tuple[float, ...] = (20.0, 40.0, 60.0),
    target_cycles: int = 3,
    jobs: Jobs = None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("fig5", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "fig5",
        jobs=jobs,
        trials=trials,
        seed=seed,
        rebuffers=rebuffers,
        target_cycles=target_cycles,
    )


# ---------------------------------------------------------------------------
# Table 1 — traffic fraction over WiFi
# ---------------------------------------------------------------------------


def _plan_table1(params: Mapping) -> ExperimentPlan:
    """Mean ± std of WiFi's byte share, pre- and re-buffering (§6)."""
    campaign = Campaign()
    for duration in params["durations"]:
        scenario_config = ScenarioConfig(video_duration_s=max(300.0, duration * 8))
        runner = TrialRunner(
            youtube_profile,
            scenario_config=scenario_config,
            root_seed=params["seed"],
            trials=params["trials"],
        )
        config = PlayerConfig(prebuffer_s=duration, rebuffer_fetch_s=duration)
        campaign.add_run(
            runner, f"t1-{duration}", runner.msplayer(config, stop="cycles", target_cycles=3)
        )
    return ExperimentPlan(campaign, partial(_render_table1, params))


def _render_table1(params: Mapping, results: Mapping) -> ExperimentResult:
    rows = []
    raw: dict[str, dict[str, float]] = {}
    for duration in params["durations"]:
        batch = results[f"t1-{duration}"].batch
        pre = batch.traffic_fractions(0, "prebuffer")
        re = batch.traffic_fractions(0, "rebuffer")
        raw[f"{duration:.0f}s"] = {
            "prebuffer_mean": float(np.mean(pre)),
            "prebuffer_std": float(np.std(pre)),
            "rebuffer_mean": float(np.mean(re)),
            "rebuffer_std": float(np.std(re)),
        }
        rows.append(
            {
                "duration": f"{duration:.0f} sec",
                "Pre-buffering": f"{np.mean(pre):.1%} +/- {np.std(pre):.1%}",
                "Re-buffering": f"{np.mean(re):.1%} +/- {np.std(re):.1%}",
            }
        )
    rendered = format_table(
        rows,
        title=(
            "Table 1 — fraction of traffic over WiFi, initial chunk 256 KB "
            "(paper: 60-64 % pre-buffering, 56-62 % re-buffering)"
        ),
    )
    return ExperimentResult("table1", rendered, raw)


TABLE1 = register(
    ExperimentDef(
        experiment_id="table1",
        title="WiFi traffic fraction, pre/re-buffering, 20/40/60 s",
        kind="trials",
        schema=ParamSchema(
            (
                _trials(),
                _seed(2018),
                Param(
                    "durations",
                    float,
                    (20.0, 40.0, 60.0),
                    help="pre/re-buffer durations (seconds)",
                    minimum=1.0,
                    many=True,
                ),
            )
        ),
        build=_plan_table1,
        description="WiFi byte share per phase (Table 1).",
        smoke_params={"trials": 1, "durations": (20.0,)},
    )
)


def table1_traffic_fraction(
    trials: int = PAPER_TRIALS,
    seed: int = 2018,
    durations: tuple[float, ...] = (20.0, 40.0, 60.0),
    jobs: Jobs = None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("table1", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "table1", jobs=jobs, trials=trials, seed=seed, durations=durations
    )


# ---------------------------------------------------------------------------
# EXP-X1 — robustness (unreported in the paper; §2/§7 motivate it)
# ---------------------------------------------------------------------------


def _crash_primary_video_host(scenario: Scenario) -> None:
    """Scenario hook: the WiFi network's first video server dies at 10 s.

    A module-level function (not a closure) so trial specs carrying it
    stay picklable for the process execution backend.
    """

    def crash():
        yield scenario.env.timeout(10.0)
        scenario.deployment.pools["wifi-net"].video_hosts[0].fail()

    scenario.env.process(crash())


def _plan_x1(params: Mapping) -> ExperimentPlan:
    """Mid-stream WiFi outage + video-server failure (§2/§7).

    (a) WiFi outage during playback: MSPlayer vs single-path WiFi.  The
    outage must overlap an ON cycle of the single-path player: with a
    40 s pre-buffer done by ~12 s and a 10 s low watermark, the first
    re-buffering cycle opens around t = 42 s, inside the 15–75 s outage
    window.  (b) primary video-server crash at 10 s: source failover
    inside a network.  Both sub-experiments (their own profiles and
    root seeds) share one campaign submission.
    """
    seed, trials = params["seed"], params["trials"]
    runner = TrialRunner(
        partial(mobility_profile, wifi_down_at=15.0, wifi_up_at=75.0),
        scenario_config=ScenarioConfig(video_duration_s=180.0),
        root_seed=seed,
        trials=trials,
    )
    runner2 = TrialRunner(
        youtube_profile,
        scenario_config=ScenarioConfig(video_duration_s=180.0),
        root_seed=seed + 1,
        trials=trials,
    )
    config = PlayerConfig()
    campaign = Campaign()
    campaign.add_run(runner, "x1-ms", runner.msplayer(config, stop="full"))
    campaign.add_run(runner, "x1-wifi", runner.singlepath(0, HTML5_CHUNK, config, stop="full"))
    campaign.add_run(
        runner2,
        "x1-crash",
        runner2.msplayer(config, stop="full"),
        scenario_hook=_crash_primary_video_host,
    )
    return ExperimentPlan(campaign, partial(_render_x1, params))


def _render_x1(params: Mapping, results: Mapping) -> ExperimentResult:
    trials = params["trials"]
    raw: dict[str, dict] = {}
    rows = []

    ms, sp = results["x1-ms"].batch, results["x1-wifi"].batch
    sp_failed = int(np.sum(np.char.startswith(sp.stop_reasons, "failed")))
    raw["wifi-outage"] = {
        "msplayer_mean_stall_s": float(np.mean(ms.total_stall)),
        "singlepath_mean_stall_s": float(np.mean(sp.total_stall)),
        "singlepath_aborted_sessions": sp_failed,
        "msplayer_failovers": int(np.sum(ms.failovers)),
    }
    rows.append(
        {
            "scenario": "WiFi outage 15-75 s",
            "MSPlayer stall (mean s)": f"{np.mean(ms.total_stall):.2f}",
            "single-path outcome": f"{sp_failed}/{trials} sessions aborted",
        }
    )

    crashed = results["x1-crash"].batch
    finished = int(np.sum(crashed.stop_reasons == "playback-finished"))
    raw["server-crash"] = {
        "mean_failovers": float(np.mean(crashed.failovers)),
        "mean_stall_s": float(np.mean(crashed.total_stall)),
        "sessions_finished": finished,
    }
    rows.append(
        {
            "scenario": "video server crash @10 s",
            "MSPlayer stall (mean s)": f"{np.mean(crashed.total_stall):.2f}",
            "single-path outcome": f"{finished}/{trials} MSPlayer sessions finished "
            f"({np.mean(crashed.failovers):.1f} failovers avg)",
        }
    )
    rendered = format_table(rows, title="EXP-X1 — robustness (mobility + server failure)")
    return ExperimentResult("x1", rendered, raw)


X1 = register(
    ExperimentDef(
        experiment_id="x1",
        title="robustness: server failure + WiFi outage",
        kind="trials",
        schema=ParamSchema((_trials(10), _seed(2019))),
        build=_plan_x1,
        description="Stall/abort behavior with and without path+source diversity.",
        smoke_params={"trials": 1},
    )
)


def x1_robustness(trials: int = 10, seed: int = 2019, jobs: Jobs = None) -> ExperimentResult:
    """Compatibility wrapper over ``Study("x1", ...)``."""
    from ..study import run_experiment

    return run_experiment("x1", jobs=jobs, trials=trials, seed=seed)


# ---------------------------------------------------------------------------
# EXP-X2 — source diversity vs MPTCP analogue
# ---------------------------------------------------------------------------


def _plan_x2(params: Mapping) -> ExperimentPlan:
    """Server-load concentration and start-up: 2 sources vs 1 (MPTCP-like)."""
    scenario_config = ScenarioConfig(video_duration_s=240.0, overload_threshold=2)
    runner = TrialRunner(
        youtube_profile,
        scenario_config=scenario_config,
        root_seed=params["seed"],
        trials=params["trials"],
    )
    config = PlayerConfig()
    campaign = Campaign()
    campaign.add_run(runner, "x2-ms", runner.msplayer(config))
    campaign.add_run(runner, "x2-mptcp", runner.mptcp(config, stop="prebuffer"))
    return ExperimentPlan(campaign, _render_x2)


def _render_x2(results: Mapping) -> ExperimentResult:
    ms, mp = results["x2-ms"], results["x2-mptcp"]

    def concentration(outcomes) -> float:
        tops = []
        for outcome in outcomes:
            served = outcome.server_bytes
            total = sum(served.values())
            if total:
                tops.append(max(served.values()) / total)
        return float(np.mean(tops)) if tops else 0.0

    raw = {
        "msplayer": {
            "median_startup_s": summarize(ms.startup_delays()).median,
            "peak_server_share": concentration(ms.outcomes),
        },
        "mptcp_like": {
            "median_startup_s": summarize(mp.startup_delays()).median,
            "peak_server_share": concentration(mp.outcomes),
        },
    }
    rows = [
        {
            "player": "MSPlayer (2 sources)",
            "median start-up (s)": f"{raw['msplayer']['median_startup_s']:.2f}",
            "peak server share": f"{raw['msplayer']['peak_server_share']:.0%}",
        },
        {
            "player": "MPTCP-like (1 source)",
            "median start-up (s)": f"{raw['mptcp_like']['median_startup_s']:.2f}",
            "peak server share": f"{raw['mptcp_like']['peak_server_share']:.0%}",
        },
    ]
    rendered = format_table(
        rows, title="EXP-X2 — source diversity ablation (overloadable servers)"
    )
    return ExperimentResult("x2", rendered, raw)


X2 = register(
    ExperimentDef(
        experiment_id="x2",
        title="source diversity vs single-server MPTCP analogue",
        kind="trials",
        schema=ParamSchema((_trials(10), _seed(2020))),
        build=_plan_x2,
        description="Load concentration and start-up: 2 sources vs 1.",
        smoke_params={"trials": 1},
    )
)


def x2_source_diversity(trials: int = 10, seed: int = 2020, jobs: Jobs = None) -> ExperimentResult:
    """Compatibility wrapper over ``Study("x2", ...)``."""
    from ..study import run_experiment

    return run_experiment("x2", jobs=jobs, trials=trials, seed=seed)


# ---------------------------------------------------------------------------
# EXP-X3 — estimator ablation
# ---------------------------------------------------------------------------


def _plan_x3(params: Mapping) -> ExperimentPlan:
    """Tracking error of the estimators on a bursty synthetic trace (§3.3).

    The trace alternates a stable base rate with occasional 8× bursts —
    the "large outliers due to network variation" the harmonic mean is
    chosen to resist.  Error is measured against the *sustainable* rate
    (the base), since chunk sizing should follow what the path can be
    trusted to deliver, not one lucky burst.  Each estimator's walk is
    one work unit on the engine (all share the seed, hence the trace).
    """
    campaign = EstimatorCampaign()
    for name in params["estimators"]:
        campaign.add(
            [
                EstimatorTraceSpec(
                    label=name,
                    trial=0,
                    seed=params["seed"],
                    estimator=name,
                    samples=params["samples"],
                )
            ]
        )
    return ExperimentPlan(campaign, partial(_render_x3, params))


def _render_x3(params: Mapping, results: Mapping) -> ExperimentResult:
    rows = []
    raw: dict[str, float] = {}
    for name in params["estimators"]:
        error = results[name].mean_error
        raw[name] = error
        rows.append({"estimator": name, "mean |err| vs sustainable rate": f"{error:.1%}"})
    rendered = format_table(
        rows,
        title="EXP-X3 — estimator tracking error on an 8x-burst trace "
        "(harmonic damps outliers; §3.3's design rationale)",
    )
    return ExperimentResult("x3", rendered, raw)


X3 = register(
    ExperimentDef(
        experiment_id="x3",
        title="estimator ablation on bursty traces",
        kind="single",
        schema=ParamSchema(
            (
                _seed(2021),
                Param(
                    "samples",
                    int,
                    400,
                    help="trace length (first 20 samples are warm-up)",
                    minimum=30,
                ),
                Param(
                    "estimators",
                    str,
                    ESTIMATOR_CHOICES,
                    help="estimators to walk over the trace",
                    choices=ESTIMATOR_CHOICES,
                    many=True,
                ),
            )
        ),
        build=_plan_x3,
        description="Why the paper picks the harmonic mean (§3.3).",
        smoke_params={"samples": 60},
    )
)


def x3_estimators(
    seed: int = 2021, samples: int = 400, jobs: Jobs = None
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("x3", ...)``."""
    from ..study import run_experiment

    return run_experiment("x3", jobs=jobs, seed=seed, samples=samples)


# ---------------------------------------------------------------------------
# EXP-X6 — server-selection policies under client populations
# ---------------------------------------------------------------------------


def _plan_x6(params: Mapping) -> ExperimentPlan:
    """Load imbalance and start-up per selection policy, over replicated
    flash-crowd populations (§2's source-diversity argument at scale).

    One :class:`~repro.ext.population.PopulationCampaign`: every
    (policy, replicate) pair is a whole ``clients``-strong
    :class:`~repro.ext.multi_client.MultiClientExperiment` population
    run as one work unit, so replicates fan out across processes while
    each population keeps its single shared environment.  Replicate
    seeds are policy-independent — every policy faces the same
    sequence of seeded populations.
    """
    experiment = MultiClientExperiment(
        youtube_profile,
        client_count=params["clients"],
        seed=params["seed"],
        video_duration_s=120.0,
        overload_threshold=2,
    )
    campaign = PopulationCampaign()
    for policy in params["policies"]:
        campaign.add(experiment.specs_for(policy, params["replicates"]))
    return ExperimentPlan(campaign, partial(_render_x6, params))


def _render_x6(params: Mapping, results: Mapping) -> ExperimentResult:
    policies = params["policies"]
    replicates, clients = params["replicates"], params["clients"]
    rows = []
    raw: dict[str, dict[str, float]] = {}
    for policy in policies:
        batch = results[policy].batch
        delays = np.asarray(results[policy].startup_delays())
        raw[policy] = {
            "imbalance_mean": float(np.mean(batch.load_imbalance)),
            "imbalance_std": float(np.std(batch.load_imbalance)),
            "median_startup_s": float(np.median(delays)),
            "p95_startup_s": float(np.quantile(delays, 0.95)),
            "total_server_mb": float(np.sum(batch.total_server_bytes) / 1e6),
            "completed": int(np.sum(batch.completed)),
            "sessions": clients * replicates,
        }
        rows.append(
            {
                "policy": policy,
                "load imbalance (max/mean)": (
                    f"{raw[policy]['imbalance_mean']:.2f} "
                    f"+/- {raw[policy]['imbalance_std']:.2f}"
                ),
                "median start-up (s)": f"{raw[policy]['median_startup_s']:.2f}",
                "p95 start-up (s)": f"{raw[policy]['p95_startup_s']:.2f}",
                "sessions": f"{raw[policy]['completed']}/{clients * replicates}",
            }
        )
    rendered = format_table(
        rows,
        title=(
            f"EXP-X6 — {len(policies)} selection policies x {replicates} "
            f"replicate populations of {clients} clients, overloadable servers"
        ),
    )
    return ExperimentResult("x6", rendered, raw)


X6 = register(
    ExperimentDef(
        experiment_id="x6",
        title="server-selection policies under replicated client populations",
        kind="population",
        schema=ParamSchema(
            (
                Param(
                    "replicates",
                    int,
                    5,
                    help="independently seeded populations per policy; each "
                    "whole population is one parallel work unit",
                    minimum=1,
                ),
                Param(
                    "clients",
                    int,
                    12,
                    help="simultaneous MSPlayer clients per population (a "
                    "flash crowd sharing one CDN deployment)",
                    minimum=1,
                ),
                _seed(2022),
                Param(
                    "policies",
                    str,
                    POLICY_CHOICES,
                    help="server-selection policies to compare",
                    choices=POLICY_CHOICES,
                    many=True,
                ),
            )
        ),
        build=_plan_x6,
        description="Flash-crowd populations per (policy, replicate) work unit.",
        smoke_params={"replicates": 1, "clients": 2},
    )
)


def x6_population(
    replicates: int = 5,
    clients: int = 12,
    seed: int = 2022,
    policies: tuple[str, ...] = POLICY_CHOICES,
    jobs: Jobs = None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("x6", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "x6",
        jobs=jobs,
        replicates=replicates,
        clients=clients,
        seed=seed,
        policies=policies,
    )
