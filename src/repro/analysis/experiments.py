"""Experiment definitions — one function per paper figure/table.

Benchmarks (and examples) call these; each returns an
:class:`ExperimentResult` whose ``rendered`` text reproduces the
figure/table and whose ``raw`` dict carries the numbers for assertions.
The functions accept a ``trials`` knob so CI can run quick passes and a
full run matches the paper's 20 repetitions (§5.2), plus a ``jobs``
knob selecting the trial execution backend (``1`` serial, ``N`` or
``"auto"`` a process pool; see :mod:`repro.sim.execution`).  Every
trial-based experiment runs its whole sweep as one
:class:`~repro.sim.campaign.Campaign`: all configurations' trials are
interleaved into a single pool submission (no per-configuration
barrier) and aggregated through the columnar
:class:`~repro.sim.campaign.OutcomeBatch`.  Trials are i.i.d. with
derived seeds, so the rendered output is byte-identical whatever the
backend or submission order.

Index (see DESIGN.md §4 and EXPERIMENTS.md):

=========  ==========================================================
fig1       HTTPS bootstrap timeline vs closed forms η, ψ, π
fig2       testbed pre-buffering: WiFi vs LTE vs MSPlayer (Ratio/1MB)
fig3       scheduler × pre-buffer × initial-chunk sweep
fig4       YouTube-profile pre-buffering: 20/40/60 s
fig5       YouTube-profile re-buffering: 64/256 KB vs MSPlayer
table1     WiFi traffic fraction, pre/re-buffering, 20/40/60 s
x1         robustness: server failure + WiFi outage
x2         source diversity vs single-server MPTCP analogue
x3         estimator ablation on bursty traces
x6         server-selection policies under replicated client
           populations (population campaign)
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Union

import numpy as np

from ..core.config import PlayerConfig
from ..core.estimators import make_estimator
from ..ext.multi_client import MultiClientExperiment
from ..net.tls import TLSParams, eta, head_start, psi
from ..sim.campaign import Campaign
from ..sim.driver import MSPlayerDriver
from ..sim.profiles import NetworkProfile, mobility_profile, testbed_profile, youtube_profile
from ..sim.runner import TrialRunner
from ..sim.scenario import Scenario, ScenarioConfig
from ..sim.singlepath import FLASH_CHUNK, HTML5_CHUNK
from ..units import KB, MB, MS, format_size
from .stats import summarize
from .tables import format_table, render_distribution_rows

#: Experiment default: the paper's repetition count.
PAPER_TRIALS = 20

#: Type of the ``jobs`` knob shared by the trial-based experiments.
Jobs = Union[int, str, None]


@dataclass
class ExperimentResult:
    experiment_id: str
    rendered: str
    raw: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.rendered


# ---------------------------------------------------------------------------
# Fig. 1 — bootstrap timeline
# ---------------------------------------------------------------------------


def fig1_bootstrap_timing(
    rtt_wifi: float = 50 * MS, thetas: tuple[float, ...] = (1.5, 2.0, 2.5, 3.0)
) -> ExperimentResult:
    """Measure η/ψ/π on the simulated message sequence vs closed forms.

    Deterministic latencies, one video server, zero server think time:
    the only costs are the Fig. 1 exchanges, so the measured milestones
    should track ``η = 4R+Δ₁+Δ₂``, ``ψ = 6R+Δ₁+Δ₂``, ``π ≈ ψ+η``, and
    the fast path's fetch head start ``π₂−π₁ ≈ 10(θ−1)R₁``.
    """
    tls = TLSParams(delta1=0.008, delta2=0.008)
    rows = []
    raw: dict[str, dict[str, float]] = {}
    for theta in thetas:
        rtt_lte = theta * rtt_wifi
        profile = _fig1_profile(rtt_wifi, rtt_lte, tls)
        scenario = Scenario(profile, seed=7, config=ScenarioConfig(video_duration_s=120.0))
        driver = MSPlayerDriver(scenario, PlayerConfig(prebuffer_s=20.0), stop="prebuffer")
        outcome = driver.run()
        measured = {
            "psi_wifi": outcome.path_json_delay.get(0, float("nan")),
            "psi_lte": outcome.path_json_delay.get(1, float("nan")),
            "pi_wifi": outcome.path_first_video_delay.get(0, float("nan")),
            "pi_lte": outcome.path_first_video_delay.get(1, float("nan")),
        }
        predicted = {
            "psi_wifi": psi(rtt_wifi, tls),
            "psi_lte": psi(rtt_lte, tls),
            "pi_wifi": psi(rtt_wifi, tls) + eta(rtt_wifi, tls),
            "pi_lte": psi(rtt_lte, tls) + eta(rtt_lte, tls),
            "head_start": head_start(rtt_wifi, rtt_lte),
        }
        measured["head_start"] = measured["pi_lte"] - measured["pi_wifi"]
        raw[f"theta={theta}"] = {"measured": measured, "predicted": predicted}
        rows.append(
            {
                "theta": f"{theta:.1f}",
                "psi wifi meas/pred (ms)": _pair_ms(measured["psi_wifi"], predicted["psi_wifi"]),
                "psi lte meas/pred": _pair_ms(measured["psi_lte"], predicted["psi_lte"]),
                "pi wifi meas/pred": _pair_ms(measured["pi_wifi"], predicted["pi_wifi"]),
                "pi lte meas/pred": _pair_ms(measured["pi_lte"], predicted["pi_lte"]),
                "head start meas/pred": _pair_ms(measured["head_start"], predicted["head_start"]),
            }
        )
    rendered = format_table(
        rows,
        title=(
            "Fig. 1 — HTTPS bootstrap milestones, measured message sequence vs "
            "closed form (eta=4R+d1+d2, psi=6R+d1+d2, pi~psi+eta, head~10(theta-1)R1)"
        ),
    )
    return ExperimentResult("fig1", rendered, raw)


def _pair_ms(measured: float, predicted: float) -> str:
    return f"{measured * 1000:7.1f} / {predicted * 1000:7.1f}"


def _fig1_profile(rtt_wifi: float, rtt_lte: float, tls: TLSParams) -> NetworkProfile:
    from ..sim.profiles import InterfaceProfile

    return NetworkProfile(
        name="fig1",
        wifi=InterfaceProfile(
            kind="wifi", mean_mbps=20.0, sigma=0.0, rho=0.0,
            one_way_delay_s=rtt_wifi / 2, jitter_std_s=0.0,
        ),
        lte=InterfaceProfile(
            kind="lte", mean_mbps=20.0, sigma=0.0, rho=0.0,
            one_way_delay_s=rtt_lte / 2, jitter_std_s=0.0,
        ),
        tls=tls,
        proxy_distance_s=0.0,
        video_distance_s=0.0,
        dns_delay_s=0.0,
    )


# ---------------------------------------------------------------------------
# Fig. 2 — testbed pre-buffering
# ---------------------------------------------------------------------------


def fig2_prebuffer_testbed(
    trials: int = PAPER_TRIALS, seed: int = 2014, jobs: Jobs = None
) -> ExperimentResult:
    """WiFi vs LTE vs MSPlayer(Ratio, 1 MB) at a 40 s pre-buffer (§5.1)."""
    runner = TrialRunner(testbed_profile, root_seed=seed, trials=trials)
    config = PlayerConfig(scheduler="ratio", base_chunk_bytes=1 * MB)
    baseline_config = PlayerConfig()
    campaign = Campaign(jobs=jobs)
    campaign.add_run(runner, "wifi", runner.singlepath(0, HTML5_CHUNK, baseline_config))
    campaign.add_run(runner, "lte", runner.singlepath(1, HTML5_CHUNK, baseline_config))
    campaign.add_run(runner, "msplayer", runner.msplayer(config))
    results = campaign.run()
    samples = [
        ("WiFi", results["wifi"].startup_delays()),
        ("LTE", results["lte"].startup_delays()),
        ("MSPlayer", results["msplayer"].startup_delays()),
    ]
    medians = {label: summarize(values).median for label, values in samples}
    reduction = 1.0 - medians["MSPlayer"] / min(medians["WiFi"], medians["LTE"])
    rendered = render_distribution_rows(
        samples,
        title=(
            "Fig. 2 — 40 s pre-buffering download time, emulated testbed "
            f"(paper: MSPlayer 6.9 s vs best-single WiFi 10.9 s, -37 %; "
            f"measured reduction {reduction:.0%})"
        ),
    )
    return ExperimentResult(
        "fig2", rendered, {"medians": medians, "reduction": reduction, "samples": dict(samples)}
    )


# ---------------------------------------------------------------------------
# Fig. 3 — scheduler sweep
# ---------------------------------------------------------------------------


def fig3_scheduler_sweep(
    trials: int = PAPER_TRIALS,
    seed: int = 2015,
    prebuffers: tuple[float, ...] = (20.0, 40.0, 60.0),
    chunks: tuple[int, ...] = (16 * KB, 64 * KB, 256 * KB, 1 * MB),
    schedulers: tuple[str, ...] = ("harmonic", "ewma", "ratio"),
    jobs: Jobs = None,
) -> ExperimentResult:
    """Download time vs scheduler × pre-buffer duration × initial chunk (§5.2).

    All ``len(prebuffers) × len(chunks) × len(schedulers)``
    configurations go to the pool as one campaign — the whole sweep is
    a single submission with no per-configuration barrier.
    """
    runner = TrialRunner(testbed_profile, root_seed=seed, trials=trials)
    campaign = Campaign(jobs=jobs)
    for prebuffer in prebuffers:
        for chunk in chunks:
            for scheduler in schedulers:
                config = PlayerConfig(
                    prebuffer_s=prebuffer, scheduler=scheduler, base_chunk_bytes=chunk
                )
                label = f"{scheduler}/{format_size(chunk)}/{prebuffer:.0f}s"
                campaign.add_run(runner, label, runner.msplayer(config))
    results = campaign.run()
    raw: dict[str, dict] = {}
    sections: list[str] = []
    for prebuffer in prebuffers:
        for chunk in chunks:
            samples = []
            for scheduler in schedulers:
                label = f"{scheduler}/{format_size(chunk)}/{prebuffer:.0f}s"
                delays = results[label].batch.startup_delays()
                samples.append((scheduler, delays))
                stats = summarize(delays)
                raw[label] = {"median": stats.median, "std": stats.std}
            sections.append(
                render_distribution_rows(
                    samples,
                    title=(
                        f"Fig. 3 — pre-buffer {prebuffer:.0f}s, "
                        f"initial chunk {format_size(chunk)}"
                    ),
                )
            )
    return ExperimentResult("fig3", "\n\n".join(sections), raw)


# ---------------------------------------------------------------------------
# Fig. 4 — YouTube-profile pre-buffering
# ---------------------------------------------------------------------------


def fig4_prebuffer_youtube(
    trials: int = PAPER_TRIALS,
    seed: int = 2016,
    prebuffers: tuple[float, ...] = (20.0, 40.0, 60.0),
    jobs: Jobs = None,
) -> ExperimentResult:
    """Start-up delay for 20/40/60 s pre-buffers on the wide-area profile (§6)."""
    runner = TrialRunner(youtube_profile, root_seed=seed, trials=trials)
    campaign = Campaign(jobs=jobs)
    for prebuffer in prebuffers:
        config = PlayerConfig(prebuffer_s=prebuffer)
        campaign.add_run(runner, f"wifi-{prebuffer}", runner.singlepath(0, HTML5_CHUNK, config))
        campaign.add_run(runner, f"lte-{prebuffer}", runner.singlepath(1, HTML5_CHUNK, config))
        campaign.add_run(runner, f"ms-{prebuffer}", runner.msplayer(config))
    results = campaign.run()
    sections = []
    raw: dict[str, dict] = {}
    for prebuffer in prebuffers:
        samples = [
            ("WiFi", results[f"wifi-{prebuffer}"].startup_delays()),
            ("LTE", results[f"lte-{prebuffer}"].startup_delays()),
            ("MSPlayer", results[f"ms-{prebuffer}"].startup_delays()),
        ]
        medians = {label: summarize(values).median for label, values in samples}
        reduction = 1.0 - medians["MSPlayer"] / min(medians["WiFi"], medians["LTE"])
        raw[f"{prebuffer:.0f}s"] = {"medians": medians, "reduction": reduction}
        sections.append(
            render_distribution_rows(
                samples,
                title=(
                    f"Fig. 4 — {prebuffer:.0f} s pre-buffer over the YouTube profile "
                    f"(measured reduction {reduction:.0%}; paper: 12/21/28 % for 20/40/60 s)"
                ),
            )
        )
    return ExperimentResult("fig4", "\n\n".join(sections), raw)


# ---------------------------------------------------------------------------
# Fig. 5 — re-buffering
# ---------------------------------------------------------------------------


def fig5_rebuffer(
    trials: int = PAPER_TRIALS,
    seed: int = 2017,
    rebuffers: tuple[float, ...] = (20.0, 40.0, 60.0),
    target_cycles: int = 3,
    jobs: Jobs = None,
) -> ExperimentResult:
    """Playout-buffer refill time: fixed 64/256 KB single path vs MSPlayer (§6).

    Each refill duration gets its own runner (the scenario's video must
    outlast the refills), but every configuration of every duration
    still lands in one campaign submission.
    """
    fixed = (
        ("WiFi 64KB", 0, FLASH_CHUNK),
        ("WiFi 256KB", 0, HTML5_CHUNK),
        ("LTE 64KB", 1, FLASH_CHUNK),
        ("LTE 256KB", 1, HTML5_CHUNK),
    )
    campaign = Campaign(jobs=jobs)
    for rebuffer in rebuffers:
        # Longer refills need a longer video so cycles complete.
        scenario_config = ScenarioConfig(video_duration_s=max(300.0, rebuffer * 8))
        runner = TrialRunner(
            youtube_profile,
            scenario_config=scenario_config,
            root_seed=seed,
            trials=trials,
        )
        config = PlayerConfig(rebuffer_fetch_s=rebuffer)
        for label, iface, chunk in fixed:
            campaign.add_run(
                runner,
                f"{label}-{rebuffer}",
                runner.singlepath(
                    iface, chunk, config, stop="cycles", target_cycles=target_cycles
                ),
            )
        campaign.add_run(
            runner,
            f"ms-{rebuffer}",
            runner.msplayer(config, stop="cycles", target_cycles=target_cycles),
        )
    results = campaign.run()
    sections = []
    raw: dict[str, dict] = {}
    for rebuffer in rebuffers:
        samples = [
            (label, results[f"{label}-{rebuffer}"].cycle_durations())
            for label, _iface, _chunk in fixed
        ]
        samples.append(("MSPlayer", results[f"ms-{rebuffer}"].cycle_durations()))
        raw[f"{rebuffer:.0f}s"] = {
            label: summarize(values).median for label, values in samples if values
        }
        sections.append(
            render_distribution_rows(
                [(label, values) for label, values in samples if values],
                title=f"Fig. 5 — refill {rebuffer:.0f} s of video (re-buffering phase)",
            )
        )
    return ExperimentResult("fig5", "\n\n".join(sections), raw)


# ---------------------------------------------------------------------------
# Table 1 — traffic fraction over WiFi
# ---------------------------------------------------------------------------


def table1_traffic_fraction(
    trials: int = PAPER_TRIALS,
    seed: int = 2018,
    durations: tuple[float, ...] = (20.0, 40.0, 60.0),
    jobs: Jobs = None,
) -> ExperimentResult:
    """Mean ± std of WiFi's byte share, pre- and re-buffering (§6)."""
    campaign = Campaign(jobs=jobs)
    for duration in durations:
        scenario_config = ScenarioConfig(video_duration_s=max(300.0, duration * 8))
        runner = TrialRunner(
            youtube_profile,
            scenario_config=scenario_config,
            root_seed=seed,
            trials=trials,
        )
        config = PlayerConfig(prebuffer_s=duration, rebuffer_fetch_s=duration)
        campaign.add_run(
            runner, f"t1-{duration}", runner.msplayer(config, stop="cycles", target_cycles=3)
        )
    results = campaign.run()
    rows = []
    raw: dict[str, dict[str, float]] = {}
    for duration in durations:
        batch = results[f"t1-{duration}"].batch
        pre = batch.traffic_fractions(0, "prebuffer")
        re = batch.traffic_fractions(0, "rebuffer")
        raw[f"{duration:.0f}s"] = {
            "prebuffer_mean": float(np.mean(pre)),
            "prebuffer_std": float(np.std(pre)),
            "rebuffer_mean": float(np.mean(re)),
            "rebuffer_std": float(np.std(re)),
        }
        rows.append(
            {
                "duration": f"{duration:.0f} sec",
                "Pre-buffering": f"{np.mean(pre):.1%} +/- {np.std(pre):.1%}",
                "Re-buffering": f"{np.mean(re):.1%} +/- {np.std(re):.1%}",
            }
        )
    rendered = format_table(
        rows,
        title=(
            "Table 1 — fraction of traffic over WiFi, initial chunk 256 KB "
            "(paper: 60-64 % pre-buffering, 56-62 % re-buffering)"
        ),
    )
    return ExperimentResult("table1", rendered, raw)


# ---------------------------------------------------------------------------
# EXP-X1 — robustness (unreported in the paper; §2/§7 motivate it)
# ---------------------------------------------------------------------------


def _crash_primary_video_host(scenario: Scenario) -> None:
    """Scenario hook: the WiFi network's first video server dies at 10 s.

    A module-level function (not a closure) so trial specs carrying it
    stay picklable for the process execution backend.
    """

    def crash():
        yield scenario.env.timeout(10.0)
        scenario.deployment.pools["wifi-net"].video_hosts[0].fail()

    scenario.env.process(crash())


def x1_robustness(trials: int = 10, seed: int = 2019, jobs: Jobs = None) -> ExperimentResult:
    """Mid-stream WiFi outage + video-server failure: stalls with/without diversity."""
    raw: dict[str, dict] = {}
    rows = []

    # (a) WiFi outage during playback: MSPlayer vs single-path WiFi.
    # The outage must overlap an ON cycle of the single-path player:
    # with a 40 s pre-buffer done by ~12 s and a 10 s low watermark,
    # the first re-buffering cycle opens around t = 42 s, inside the
    # 15–75 s outage window.
    runner = TrialRunner(
        partial(mobility_profile, wifi_down_at=15.0, wifi_up_at=75.0),
        scenario_config=ScenarioConfig(video_duration_s=180.0),
        root_seed=seed,
        trials=trials,
    )
    # (b) primary video-server crash at 10 s: source failover inside a
    # network.  Both sub-experiments (their own profiles and root
    # seeds) share one campaign submission.
    runner2 = TrialRunner(
        youtube_profile,
        scenario_config=ScenarioConfig(video_duration_s=180.0),
        root_seed=seed + 1,
        trials=trials,
    )
    config = PlayerConfig()
    campaign = Campaign(jobs=jobs)
    campaign.add_run(runner, "x1-ms", runner.msplayer(config, stop="full"))
    campaign.add_run(runner, "x1-wifi", runner.singlepath(0, HTML5_CHUNK, config, stop="full"))
    campaign.add_run(
        runner2,
        "x1-crash",
        runner2.msplayer(config, stop="full"),
        scenario_hook=_crash_primary_video_host,
    )
    results = campaign.run()

    ms, sp = results["x1-ms"].batch, results["x1-wifi"].batch
    sp_failed = int(np.sum(np.char.startswith(sp.stop_reasons, "failed")))
    raw["wifi-outage"] = {
        "msplayer_mean_stall_s": float(np.mean(ms.total_stall)),
        "singlepath_mean_stall_s": float(np.mean(sp.total_stall)),
        "singlepath_aborted_sessions": sp_failed,
        "msplayer_failovers": int(np.sum(ms.failovers)),
    }
    rows.append(
        {
            "scenario": "WiFi outage 15-75 s",
            "MSPlayer stall (mean s)": f"{np.mean(ms.total_stall):.2f}",
            "single-path outcome": f"{sp_failed}/{trials} sessions aborted",
        }
    )

    crashed = results["x1-crash"].batch
    finished = int(np.sum(crashed.stop_reasons == "playback-finished"))
    raw["server-crash"] = {
        "mean_failovers": float(np.mean(crashed.failovers)),
        "mean_stall_s": float(np.mean(crashed.total_stall)),
        "sessions_finished": finished,
    }
    rows.append(
        {
            "scenario": "video server crash @10 s",
            "MSPlayer stall (mean s)": f"{np.mean(crashed.total_stall):.2f}",
            "single-path outcome": f"{finished}/{trials} MSPlayer sessions finished "
            f"({np.mean(crashed.failovers):.1f} failovers avg)",
        }
    )
    rendered = format_table(rows, title="EXP-X1 — robustness (mobility + server failure)")
    return ExperimentResult("x1", rendered, raw)


# ---------------------------------------------------------------------------
# EXP-X2 — source diversity vs MPTCP analogue
# ---------------------------------------------------------------------------


def x2_source_diversity(trials: int = 10, seed: int = 2020, jobs: Jobs = None) -> ExperimentResult:
    """Server-load concentration and start-up: 2 sources vs 1 (MPTCP-like)."""
    scenario_config = ScenarioConfig(video_duration_s=240.0, overload_threshold=2)
    runner = TrialRunner(
        youtube_profile,
        scenario_config=scenario_config,
        root_seed=seed,
        trials=trials,
    )
    config = PlayerConfig()

    campaign = Campaign(jobs=jobs)
    campaign.add_run(runner, "x2-ms", runner.msplayer(config))
    campaign.add_run(runner, "x2-mptcp", runner.mptcp(config, stop="prebuffer"))
    results = campaign.run()
    ms, mp = results["x2-ms"], results["x2-mptcp"]

    def concentration(outcomes) -> float:
        tops = []
        for outcome in outcomes:
            served = outcome.server_bytes
            total = sum(served.values())
            if total:
                tops.append(max(served.values()) / total)
        return float(np.mean(tops)) if tops else 0.0

    raw = {
        "msplayer": {
            "median_startup_s": summarize(ms.startup_delays()).median,
            "peak_server_share": concentration(ms.outcomes),
        },
        "mptcp_like": {
            "median_startup_s": summarize(mp.startup_delays()).median,
            "peak_server_share": concentration(mp.outcomes),
        },
    }
    rows = [
        {
            "player": "MSPlayer (2 sources)",
            "median start-up (s)": f"{raw['msplayer']['median_startup_s']:.2f}",
            "peak server share": f"{raw['msplayer']['peak_server_share']:.0%}",
        },
        {
            "player": "MPTCP-like (1 source)",
            "median start-up (s)": f"{raw['mptcp_like']['median_startup_s']:.2f}",
            "peak server share": f"{raw['mptcp_like']['peak_server_share']:.0%}",
        },
    ]
    rendered = format_table(
        rows, title="EXP-X2 — source diversity ablation (overloadable servers)"
    )
    return ExperimentResult("x2", rendered, raw)


# ---------------------------------------------------------------------------
# EXP-X6 — server-selection policies under client populations
# ---------------------------------------------------------------------------


def x6_population(
    replicates: int = 5,
    clients: int = 12,
    seed: int = 2022,
    policies: tuple[str, ...] = ("static", "rotate", "least_loaded"),
    jobs: Jobs = None,
) -> ExperimentResult:
    """Load imbalance and start-up per selection policy, over replicated
    flash-crowd populations (§2's source-diversity argument at scale).

    One :class:`~repro.ext.population.PopulationCampaign`: every
    (policy, replicate) pair is a whole ``clients``-strong
    :class:`~repro.ext.multi_client.MultiClientExperiment` population
    run as one work unit, so replicates fan out across processes while
    each population keeps its single shared environment.  Replicate
    seeds are policy-independent — every policy faces the same
    sequence of seeded populations.
    """
    experiment = MultiClientExperiment(
        youtube_profile,
        client_count=clients,
        seed=seed,
        video_duration_s=120.0,
        overload_threshold=2,
    )
    results = experiment.compare(policies, replicates=replicates, jobs=jobs)
    rows = []
    raw: dict[str, dict[str, float]] = {}
    for policy in policies:
        batch = results[policy].batch
        delays = np.asarray(results[policy].startup_delays())
        raw[policy] = {
            "imbalance_mean": float(np.mean(batch.load_imbalance)),
            "imbalance_std": float(np.std(batch.load_imbalance)),
            "median_startup_s": float(np.median(delays)),
            "p95_startup_s": float(np.quantile(delays, 0.95)),
            "total_server_mb": float(np.sum(batch.total_server_bytes) / 1e6),
            "completed": int(np.sum(batch.completed)),
            "sessions": clients * replicates,
        }
        rows.append(
            {
                "policy": policy,
                "load imbalance (max/mean)": (
                    f"{raw[policy]['imbalance_mean']:.2f} "
                    f"+/- {raw[policy]['imbalance_std']:.2f}"
                ),
                "median start-up (s)": f"{raw[policy]['median_startup_s']:.2f}",
                "p95 start-up (s)": f"{raw[policy]['p95_startup_s']:.2f}",
                "sessions": f"{raw[policy]['completed']}/{clients * replicates}",
            }
        )
    rendered = format_table(
        rows,
        title=(
            f"EXP-X6 — {len(policies)} selection policies x {replicates} "
            f"replicate populations of {clients} clients, overloadable servers"
        ),
    )
    return ExperimentResult("x6", rendered, raw)


# ---------------------------------------------------------------------------
# EXP-X3 — estimator ablation
# ---------------------------------------------------------------------------


def x3_estimators(seed: int = 2021, samples: int = 400) -> ExperimentResult:
    """Tracking error of the estimators on a bursty synthetic trace (§3.3).

    The trace alternates a stable base rate with occasional 8× bursts —
    the "large outliers due to network variation" the harmonic mean is
    chosen to resist.  Error is measured against the *sustainable* rate
    (the base), since chunk sizing should follow what the path can be
    trusted to deliver, not one lucky burst.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    base = 1_000_000.0
    trace = []
    for _ in range(samples):
        if rng.random() < 0.06:
            trace.append(base * 8.0 * (1.0 + 0.2 * rng.random()))
        else:
            trace.append(base * (1.0 + 0.15 * rng.standard_normal()))
    trace = [max(v, base * 0.1) for v in trace]

    rows = []
    raw: dict[str, float] = {}
    for name in ("harmonic", "ewma", "window", "last"):
        estimator = make_estimator(name, alpha=0.9, window=8)
        errors = []
        for value in trace:
            estimator.update(value)
            errors.append(abs(estimator.estimate - base) / base)
        error = float(np.mean(errors[20:]))  # skip warm-up
        raw[name] = error
        rows.append({"estimator": name, "mean |err| vs sustainable rate": f"{error:.1%}"})
    rendered = format_table(
        rows,
        title="EXP-X3 — estimator tracking error on an 8x-burst trace "
        "(harmonic damps outliers; §3.3's design rationale)",
    )
    return ExperimentResult("x3", rendered, raw)
