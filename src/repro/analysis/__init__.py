"""Result analysis: summary statistics and text rendering.

The benchmarks print paper-style tables and ASCII distribution plots
from these helpers; keeping them in the library (rather than inline in
bench scripts) makes the experiment outputs testable.
"""

from .stats import (
    Summary,
    bootstrap_ci,
    harmonic_mean,
    iqr,
    median,
    percentile,
    summarize,
)
from .tables import ascii_boxplot, format_table, render_distribution_rows

__all__ = [
    "Summary",
    "median",
    "percentile",
    "iqr",
    "harmonic_mean",
    "bootstrap_ci",
    "summarize",
    "format_table",
    "ascii_boxplot",
    "render_distribution_rows",
]
