"""Estimator-ablation work units (EXP-X3) for the execution engines.

EXP-X3 used to be a bare loop inside its experiment function, which
made it the one experiment that silently ignored the ``jobs`` knob the
rest of the surface honors.  This module makes each estimator's trace
walk a first-class :class:`~repro.sim.execution.WorkSpec` — the third
spec kind after :class:`~repro.sim.execution.TrialSpec` and
:class:`~repro.ext.population.PopulationSpec` — so the ablation rides
the same serial/process engines, the same shm arena transport, and the
same byte-identity bar as every campaign:

* :class:`EstimatorTraceSpec.run` regenerates the bursty trace from its
  seed (every spec shares the seed, so every estimator faces the same
  trace — exactly the retired loop's semantics) and walks one estimator
  over it;
* the dense arena row is the single ``mean_error`` scalar
  (:data:`ESTIMATOR_COLUMNS`); the side channel carries only the
  estimator name, and :meth:`EstimatorTraceSpec.rebuild` inverts the
  pair exactly;
* :class:`EstimatorCampaign` demultiplexes into per-estimator
  :class:`EstimatorResult`s whose columnar :class:`EstimatorBatch`
  plugs into the same :func:`~repro.sim.campaign.dense_field_mismatches`
  determinism predicate (and the study archive's column extraction) as
  the other batch kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import ClassVar, NamedTuple

import numpy as np

from ..core.estimators import make_estimator
from ..sim.campaign import Campaign, dense_field_mismatches
from ..sim.shm import ColumnLayout, OutcomeArena

__all__ = [
    "BASE_RATE",
    "ESTIMATOR_COLUMNS",
    "EstimatorBatch",
    "EstimatorCampaign",
    "EstimatorResult",
    "EstimatorTraceOutcome",
    "EstimatorTraceSpec",
    "burst_trace",
]

#: The sustainable base rate the §3.3 burst trace oscillates around.
BASE_RATE = 1_000_000.0

#: Dense arena layout: one scalar per estimator work unit.
ESTIMATOR_COLUMNS: ColumnLayout = (("mean_error", np.float64),)


def burst_trace(seed: int, samples: int, base: float = BASE_RATE) -> list[float]:
    """The §3.3 synthetic trace: a stable base rate with ~6 % chance of
    an 8× burst per sample, floored at 10 % of base.

    Regenerated from the seed on whichever process runs the spec — the
    arithmetic (and therefore the float64 bits) is identical serial or
    pooled.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    trace = []
    for _ in range(samples):
        if rng.random() < 0.06:
            trace.append(base * 8.0 * (1.0 + 0.2 * rng.random()))
        else:
            trace.append(base * (1.0 + 0.15 * rng.standard_normal()))
    return [max(value, base * 0.1) for value in trace]


class EstimatorTraceOutcome(NamedTuple):
    """One estimator's tracking error over the trace."""

    estimator: str
    mean_error: float


class _EstimatorSide(NamedTuple):
    """Side-channel remainder: just the name (the scalar is dense)."""

    estimator: str


@dataclass(frozen=True)
class EstimatorTraceSpec:
    """One estimator's walk over the burst trace, self-contained."""

    label: str
    trial: int
    seed: int
    estimator: str
    samples: int
    alpha: float = 0.9
    window: int = 8
    #: Samples ignored before the error average (estimator warm-up).
    warmup: int = 20

    #: Arena layout for the shm collection path (see ``WorkSpec``).
    dense_columns: ClassVar[ColumnLayout] = ESTIMATOR_COLUMNS

    def run(self) -> EstimatorTraceOutcome:
        trace = burst_trace(self.seed, self.samples)
        estimator = make_estimator(
            self.estimator, alpha=self.alpha, window=self.window
        )
        errors = []
        for value in trace:
            estimator.update(value)
            errors.append(abs(estimator.estimate - BASE_RATE) / BASE_RATE)
        return EstimatorTraceOutcome(
            self.estimator, float(np.mean(errors[self.warmup :]))
        )

    def write_dense(
        self, arena: OutcomeArena, row: int, result: EstimatorTraceOutcome
    ) -> None:
        arena.write_row(row, {"mean_error": result.mean_error})

    def encode_side(self, result: EstimatorTraceOutcome) -> _EstimatorSide:
        return _EstimatorSide(result.estimator)

    @staticmethod
    def rebuild(
        dense: dict[str, np.ndarray], sides: Sequence[_EstimatorSide]
    ) -> list[EstimatorTraceOutcome]:
        errors = dense["mean_error"]
        return [
            EstimatorTraceOutcome(side.estimator, float(errors[i]))
            for i, side in enumerate(sides)
        ]


@dataclass(frozen=True, eq=False)
class EstimatorBatch:
    """Columnar view of one label's outcomes (a single column here —
    the point is protocol uniformity: archives and determinism checks
    enumerate ndarray dataclass fields, whatever the batch kind)."""

    mean_error: np.ndarray

    def __len__(self) -> int:
        return len(self.mean_error)

    def column_mismatches(self, other: "EstimatorBatch") -> list[str]:
        return dense_field_mismatches(self, other)


class EstimatorResult:
    """One estimator label's outcomes (one per registered trial)."""

    def __init__(self, label: str, outcomes: list[EstimatorTraceOutcome]) -> None:
        self.label = label
        self.outcomes = outcomes

    @property
    def batch(self) -> EstimatorBatch:
        return EstimatorBatch(
            mean_error=np.asarray(
                [outcome.mean_error for outcome in self.outcomes], dtype=np.float64
            )
        )

    @property
    def mean_error(self) -> float:
        """The (single-trial) tracking error for this estimator."""
        return self.outcomes[0].mean_error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EstimatorResult(label={self.label!r}, n={len(self.outcomes)})"


class EstimatorCampaign(Campaign):
    """Campaign demux for estimator work units."""

    def _result_from_outcomes(
        self, label: str, outcomes: list[EstimatorTraceOutcome]
    ) -> EstimatorResult:
        return EstimatorResult(label, outcomes)

    def _result_from_columnar(
        self, label: str, dense: dict[str, np.ndarray], sides: list
    ) -> EstimatorResult:
        return EstimatorResult(label, EstimatorTraceSpec.rebuild(dense, sides))
