"""Text rendering for benchmark outputs.

The paper's figures are boxplot panels; a terminal harness renders the
same information as aligned tables plus ASCII box-whisker strips, so a
``pytest benchmarks/`` run reproduces every figure as readable text.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConfigError
from .stats import Summary, summarize


def format_table(rows: list[dict[str, str]], title: str = "") -> str:
    """Render dict-rows as an aligned monospace table.

    >>> print(format_table([{"a": "1", "bb": "x"}]))
    a | bb
    --+---
    1 | x
    """
    if not rows:
        raise ConfigError("cannot format an empty table")
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(r.get(c, "")) for r in rows)) for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(row.get(c, "").ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def ascii_boxplot(
    summary: Summary, lo: float, hi: float, width: int = 48
) -> str:
    """One box-whisker strip scaled to [lo, hi].

    ``|`` marks min/max whisker ends, ``[`` ``]`` the quartiles, ``*``
    the median — enough to eyeball the Fig. 2/3/4/5 panels in a
    terminal.
    """
    if hi <= lo:
        raise ConfigError(f"bad scale [{lo}, {hi}]")
    if width < 8:
        raise ConfigError("width too small for a boxplot")

    def pos(value: float) -> int:
        clamped = min(max(value, lo), hi)
        return int(round((clamped - lo) / (hi - lo) * (width - 1)))

    cells = [" "] * width
    for start, end in ((pos(summary.minimum), pos(summary.p25)),
                       (pos(summary.p75), pos(summary.maximum))):
        for i in range(min(start, end), max(start, end) + 1):
            cells[i] = "-"
    for i in range(pos(summary.p25), pos(summary.p75) + 1):
        cells[i] = "="
    cells[pos(summary.minimum)] = "|"
    cells[pos(summary.maximum)] = "|"
    cells[pos(summary.p25)] = "["
    cells[pos(summary.p75)] = "]"
    cells[pos(summary.median)] = "*"
    return "".join(cells)


def render_distribution_rows(
    labelled_samples: list[tuple[str, Sequence[float]]],
    unit: str = "s",
    width: int = 48,
    title: str = "",
) -> str:
    """A figure panel: one labelled boxplot row per configuration."""
    if not labelled_samples:
        raise ConfigError("no samples to render")
    summaries = [(label, summarize(values)) for label, values in labelled_samples]
    lo = min(s.minimum for _, s in summaries)
    hi = max(s.maximum for _, s in summaries)
    if hi <= lo:  # degenerate: all identical
        hi = lo + 1.0
    label_width = max(len(label) for label, _ in summaries)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'':<{label_width}}  {lo:>8.2f}{unit}{'':<{width - 18}}{hi:>8.2f}{unit}"
    )
    for label, summary in summaries:
        strip = ascii_boxplot(summary, lo, hi, width=width)
        lines.append(f"{label:<{label_width}}  {strip}  median={summary.median:.2f}{unit}")
    return "\n".join(lines)
