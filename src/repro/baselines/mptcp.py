"""Idealized MPTCP-like aggregation to a single server (EXP-X2).

§2's "Content Source Diversity" argument: if YouTube spoke MPTCP,
a client would aggregate both paths *to one video server*, concentrating
demand ("users streaming videos from one server with high aggregate
bandwidth through multiple paths could quickly incur server demand
surges").  This driver realizes that counterfactual inside our
simulator so the source-diversity ablation can measure it:

* both interfaces fetch chunks, but every request goes to the *same*
  video server (the one in the WiFi network, as an MPTCP primary);
* scheduling reuses MSPlayer's machinery (it is a fair aggregate
  scheduler), so the only difference under test is source diversity;
* with a per-server ``overload_threshold`` configured in the scenario,
  the single server's queueing penalty grows with concurrent load —
  the effect MSPlayer's load spreading avoids.

This is *idealized* MPTCP: no middlebox fallback, no option stripping —
i.e. the best case for the alternative.  The paper notes two of three
US carriers blocked MPTCP entirely; modelling that would only make the
comparison more lopsided.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.config import PlayerConfig
from ..core.session import PlayerSession
from ..sim.driver import MSPlayerDriver, SessionOutcome
from ..sim.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.execution import SessionDriver


class MPTCPLikeDriver(MSPlayerDriver):
    """MSPlayer's driver with source diversity surgically removed."""

    def __init__(
        self,
        scenario: Scenario,
        config: PlayerConfig | None = None,
        stop: str = "full",
        target_cycles: int = 3,
        max_sim_time: float = 1800.0,
    ) -> None:
        super().__init__(
            scenario,
            config=config,
            stop=stop,
            target_cycles=target_cycles,
            max_sim_time=max_sim_time,
        )
        #: The single server both subflows converge on (set at bootstrap).
        self.primary_server: str | None = None
        #: Runtime of the path that won the bootstrap race; its token,
        #: signature, and video info are shared by both subflows, the
        #: way one MPTCP connection shares one HTTPS session.
        self._primary_runtime = None

    def _full_bootstrap(self, path_id: int, runtime):
        details = yield from super()._full_bootstrap(path_id, runtime)
        # Pin every path's candidate list to the primary path's first
        # server.  The session's SourceManager then has exactly one
        # candidate per path — the same host.
        if self.primary_server is None:
            self.primary_server = details.video_servers[0]
            self._primary_runtime = runtime
        pinned = details.__class__(
            total_bytes=details.total_bytes,
            bitrate_bytes_per_s=details.bitrate_bytes_per_s,
            duration_s=details.duration_s,
            video_servers=(self.primary_server,),
            json_completed_at=details.json_completed_at,
        )
        runtime.details = pinned
        # The data connection must go to the pinned server, not the
        # path-local pool: warm it now (the super() call warmed the
        # local one, which simply goes unused for the secondary path).
        yield self.scenario.env.process(runtime.client.connect(self.primary_server))
        return pinned

    def _fetch(self, command):
        # Both subflows present the primary's token and signature: the
        # token is pool-bound (§4), and with a single server there is a
        # single pool.  The connection itself still rides the commanded
        # path's interface.
        primary = self._primary_runtime
        if primary is not None:
            runtime = self._runtimes[command.path_id]
            runtime.info = primary.info
            runtime.signature = primary.signature
        yield from super()._fetch(command)

    def run(self) -> SessionOutcome:
        outcome = super().run()
        return outcome

    @property
    def server_concentration(self) -> float:
        """Fraction of bytes served by the busiest video server (1.0 = all)."""
        served = self.scenario.deployment.total_bytes_served()
        total = sum(served.values())
        return max(served.values()) / total if total else 0.0


if TYPE_CHECKING:  # pragma: no cover - static conformance declaration

    def _declares_session_driver(driver: MPTCPLikeDriver) -> "SessionDriver":
        return driver


def aggregate_session_paths(session: PlayerSession) -> list[str]:
    """The distinct server addresses a session actually used (test aid)."""
    servers: list[str] = []
    for path in session.paths.values():
        try:
            servers.append(path.sources.active)
        except Exception:  # sources exhausted: path died
            continue
    return servers
