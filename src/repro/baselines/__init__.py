"""Comparator players.

* :mod:`repro.baselines.mptcp` — an idealized MPTCP-style aggregator:
  two paths into a *single* video server, the §2 counterfactual that
  motivates source diversity (one server absorbs the whole aggregate
  demand, and a shared server-side bottleneck caps the gain);
* the single-path commercial-player emulation lives in
  :mod:`repro.sim.singlepath` (it is a driver, not a scheduler).
"""

from .mptcp import MPTCPLikeDriver

__all__ = ["MPTCPLikeDriver"]
