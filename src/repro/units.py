"""Byte, bitrate, and time unit helpers.

The paper mixes units freely — chunk sizes in KB/MB (binary multiples,
matching the 64 KB / 256 KB player defaults reported in [23]), link
capacities in Mb/s (decimal), and buffer levels in seconds of video.
This module gives every layer one vocabulary so that unit bugs (the
classic KB-vs-kb factor of 8,000) cannot silently creep in.

Conventions used throughout the library:

* sizes are ``int`` **bytes**; ``KB``/``MB`` are binary (1024-based)
  because player chunk sizes are powers of two;
* rates are ``float`` **bytes per second** internally; the constructors
  :func:`mbit`, :func:`kbit` convert from decimal bits/s as used for
  link capacities and video bitrates;
* times are ``float`` **seconds**.
"""

from __future__ import annotations

import re

from .errors import UnitParseError

#: One kibibyte in bytes (player chunk sizes are binary multiples).
KB: int = 1024
#: One mebibyte in bytes.
MB: int = 1024 * 1024
#: One gibibyte in bytes.
GB: int = 1024 * 1024 * 1024

#: Milliseconds expressed in seconds, for readable RTT literals.
MS: float = 1e-3


def kbit(rate_kbps: float) -> float:
    """Convert a rate in kilobits/s (decimal) to bytes/s."""
    return rate_kbps * 1000.0 / 8.0


def mbit(rate_mbps: float) -> float:
    """Convert a rate in megabits/s (decimal) to bytes/s.

    >>> mbit(8.0)
    1000000.0
    """
    return rate_mbps * 1_000_000.0 / 8.0


def to_mbit(rate_bytes_per_s: float) -> float:
    """Convert a rate in bytes/s back to megabits/s (decimal)."""
    return rate_bytes_per_s * 8.0 / 1_000_000.0


_SIZE_RE = re.compile(
    r"""^\s*
        (?P<num>\d+(?:\.\d+)?)
        \s*
        (?P<unit>B|KB|KIB|MB|MIB|GB|GIB|K|M|G)?
        \s*$""",
    re.IGNORECASE | re.VERBOSE,
)

_SIZE_MULTIPLIER = {
    None: 1,
    "B": 1,
    "K": KB,
    "KB": KB,
    "KIB": KB,
    "M": MB,
    "MB": MB,
    "MIB": MB,
    "G": GB,
    "GB": GB,
    "GIB": GB,
}


def parse_size(text: str | int) -> int:
    """Parse a human-readable size like ``"256KB"`` or ``"1MB"`` to bytes.

    Integers pass through unchanged, so configuration code can accept
    either form.  Binary multiples are used for K/M/G, matching how the
    paper (and YouTube players) quote chunk sizes.

    >>> parse_size("256KB")
    262144
    >>> parse_size("1MB") == 1024 * 1024
    True
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, int):
        if text < 0:
            raise UnitParseError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise UnitParseError(f"unparseable size: {text!r}")
    value = float(match.group("num"))
    unit = match.group("unit")
    multiplier = _SIZE_MULTIPLIER[unit.upper() if unit else None]
    result = value * multiplier
    if result != int(result):
        raise UnitParseError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_size(num_bytes: int) -> str:
    """Render a byte count the way the paper labels axes (16KB … 1MB).

    Exact binary multiples render without a decimal point; other values
    get one decimal of precision.

    >>> format_size(262144)
    '256KB'
    >>> format_size(1536)
    '1.5KB'
    """
    if num_bytes < 0:
        raise UnitParseError(f"size must be non-negative, got {num_bytes}")
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if num_bytes >= factor:
            value = num_bytes / factor
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
    return f"{num_bytes}B"


_RATE_RE = re.compile(
    r"""^\s*
        (?P<num>\d+(?:\.\d+)?)
        \s*
        (?P<unit>bps|kbps|mbps|gbps|kbit|mbit|gbit)
        \s*$""",
    re.IGNORECASE | re.VERBOSE,
)

_RATE_MULTIPLIER = {
    "bps": 1.0,
    "kbps": 1e3,
    "kbit": 1e3,
    "mbps": 1e6,
    "mbit": 1e6,
    "gbps": 1e9,
    "gbit": 1e9,
}


def parse_rate(text: str | float) -> float:
    """Parse a rate like ``"22mbps"`` into bytes/s.

    Bare numbers (int/float) are taken as bytes/s already.

    >>> parse_rate("8mbps")
    1000000.0
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise UnitParseError(f"rate must be non-negative, got {text}")
        return float(text)
    match = _RATE_RE.match(text)
    if match is None:
        raise UnitParseError(f"unparseable rate: {text!r}")
    bits_per_s = float(match.group("num")) * _RATE_MULTIPLIER[match.group("unit").lower()]
    return bits_per_s / 8.0


def seconds_of_video(num_bytes: int, bitrate_bytes_per_s: float) -> float:
    """How many seconds of playback ``num_bytes`` of media represents.

    The paper streams constant-bitrate video (no rate adaptation, §2),
    so bytes map linearly to playback time.
    """
    if bitrate_bytes_per_s <= 0:
        raise UnitParseError("bitrate must be positive")
    return num_bytes / bitrate_bytes_per_s


def bytes_of_video(duration_s: float, bitrate_bytes_per_s: float) -> int:
    """Bytes needed to hold ``duration_s`` seconds of constant-bitrate video."""
    if duration_s < 0:
        raise UnitParseError("duration must be non-negative")
    if bitrate_bytes_per_s <= 0:
        raise UnitParseError("bitrate must be positive")
    return int(round(duration_s * bitrate_bytes_per_s))
