"""Exception hierarchy for the MSPlayer reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch one base class at API boundaries.  Subsystems define narrower
classes here (rather than locally) to avoid import cycles between the
network, HTTP, CDN, and player layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class UnitParseError(ConfigError):
    """A human-readable unit string (e.g. ``"256KB"``) could not be parsed."""


class ServiceError(ConfigError):
    """The study service (broker, worker, or client) failed or was misused.

    A :class:`ConfigError` subclass on purpose: callers that already
    catch configuration problems at API boundaries (the CLI handlers,
    ``Study.run`` users) report service failures the same way — one
    line, exit code 2 — instead of needing a new except arm.
    """


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class ClockError(SimulationError):
    """An event was scheduled in the past or the clock moved backwards."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (e.g. yielded a non-event)."""


class Interrupt(SimulationError):
    """Raised *inside* a simulation process that another process interrupted.

    The interrupt cause is available as :attr:`cause`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# --------------------------------------------------------------------------
# Network substrate
# --------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for (simulated) network failures."""


class ConnectionClosedError(NetworkError):
    """Operation on a connection that is already closed."""


class ConnectionResetError_(NetworkError):
    """The remote endpoint or the path reset the connection mid-transfer.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`ConnectionResetError`; the built-in is *not* raised by the
    simulator so that simulated failures are distinguishable from real
    socket errors in the live backend.
    """


class LinkDownError(NetworkError):
    """The underlying link/interface is administratively or physically down."""


class DNSError(NetworkError):
    """Name resolution failed."""


class RoutingError(NetworkError):
    """No route from the selected interface to the destination."""


# --------------------------------------------------------------------------
# HTTP substrate
# --------------------------------------------------------------------------


class HTTPError(ReproError):
    """Base class for HTTP protocol errors."""


class HTTPParseError(HTTPError):
    """Malformed HTTP message on the wire."""


class RangeError(HTTPError):
    """Malformed or unsatisfiable byte-range specification (RFC 7233)."""


class HTTPStatusError(HTTPError):
    """A response carried an unexpected status code.

    :attr:`status` holds the numeric code so retry logic can dispatch.
    """

    def __init__(self, status: int, reason: str = "") -> None:
        super().__init__(f"unexpected HTTP status {status} {reason}".rstrip())
        self.status = status
        self.reason = reason


# --------------------------------------------------------------------------
# CDN / service emulation
# --------------------------------------------------------------------------


class CDNError(ReproError):
    """Base class for video-service errors."""


class VideoNotFoundError(CDNError):
    """The requested video id is not in the catalog."""


class TokenError(CDNError):
    """An access token is missing, malformed, expired, or scope-mismatched."""


class SignatureError(CDNError):
    """A (copyrighted) video signature failed to decipher or verify."""


class ServerUnavailableError(CDNError, NetworkError):
    """The selected video server is failed, overloaded, or draining.

    Also a :class:`NetworkError`: a crashed server manifests to the
    client as refused/reset connections, so transport-level handlers
    (retry, failover, session eviction) must catch it.
    """


# --------------------------------------------------------------------------
# Player core
# --------------------------------------------------------------------------


class PlayerError(ReproError):
    """Base class for player-state errors."""


class SchedulerError(PlayerError):
    """The chunk scheduler was driven with inconsistent inputs."""


class BufferError_(PlayerError):
    """Playout-buffer invariant violated (named to avoid the built-in)."""


class SourcesExhaustedError(PlayerError):
    """Every candidate video server in a network has been tried and failed."""
