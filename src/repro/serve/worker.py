"""The pull worker: lease, execute, heartbeat, post back.

``repro worker URL`` runs this loop against a broker.  Workers are
stateless and interchangeable — determinism means any worker's result
for a cell is *the* result — so a fleet scales by just starting more of
them, and losing one costs at most a lease timeout (the broker requeues
the cell; see :mod:`repro.serve.broker`).

Per leased cell the worker:

1. starts a daemon heartbeat thread at a third of the lease timeout, so
   a long cell stays leased while a dead worker's lease expires in one
   timeout;
2. executes the cell with its *local* engine (``--jobs`` semantics —
   a beefy worker can parallelize within a cell) via
   :func:`~repro.serve.cells.execute_cell`;
3. posts the deterministic archive back with ``complete`` — or reports
   ``fail`` with the error, letting the broker decide between requeue
   and quarantine.

Broker unreachability is survivable by design: the loop logs once and
keeps polling, so workers ride out a broker restart (whose sqlite queue
also survives, leases included).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from contextlib import suppress
from collections.abc import Callable
from typing import Any

from ..errors import ServiceError
from ..sim.execution import resolve_engine
from .cells import cell_archive, execute_cell
from .client import BrokerClient

__all__ = ["default_worker_id", "run_worker"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat(threading.Thread):
    """Extends one lease until stopped; flags a lost lease instead of
    crashing (transient broker unreachability is ignored — the final
    ``complete`` decides)."""

    def __init__(self, client: Any, lease_id: str, interval: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{lease_id[:8]}")
        self._client = client
        self._lease_id = lease_id
        self._interval = interval
        self._stopped = threading.Event()
        self.lost = False

    def run(self) -> None:
        while not self._stopped.wait(self._interval):
            with suppress(ServiceError):
                if not self._client.heartbeat(self._lease_id):
                    self.lost = True
                    return

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=5.0)


def run_worker(
    broker: Any,
    *,
    jobs: int | str | None = None,
    poll: float = 0.5,
    max_cells: int | None = None,
    once: bool = False,
    worker_id: str | None = None,
    stop: threading.Event | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Pull and execute cells until stopped; returns cells processed.

    ``broker`` is a URL, a :class:`~repro.serve.client.BrokerClient`,
    or a :class:`~repro.serve.broker.Broker` (the surfaces match).
    ``once`` exits at the first empty poll (drain-and-quit semantics);
    ``max_cells`` bounds the leases taken; ``stop`` is an external kill
    switch the sleep and the loop both honor.  Failed cells count as
    processed — the broker owns retry policy, not the worker.
    """
    client = BrokerClient(broker) if isinstance(broker, str) else broker
    name = worker_id or default_worker_id()
    engine = resolve_engine(jobs)

    def _emit(message: str) -> None:
        if log is not None:
            log(message)

    def _pause() -> bool:
        """Sleep one poll interval; ``True`` if the stop switch fired."""
        if stop is not None:
            return stop.wait(poll)
        time.sleep(poll)
        return False

    unreachable = False
    processed = 0
    while True:
        if stop is not None and stop.is_set():
            break
        if max_cells is not None and processed >= max_cells:
            break
        try:
            lease = client.lease(name)
        except ServiceError as exc:
            if once:
                raise
            if not unreachable:
                _emit(f"[worker {name}] broker unreachable, retrying: {exc}")
                unreachable = True
            if _pause():
                break
            continue
        if unreachable:
            _emit(f"[worker {name}] broker reachable again")
            unreachable = False
        if lease is None:
            if once:
                break
            if _pause():
                break
            continue
        job_id, cell = lease["job_id"], lease["cell"]
        _emit(f"[worker {name}] leased job {job_id} cell {cell}")
        beat = _Heartbeat(
            client,
            lease["lease_id"],
            max(0.05, float(lease.get("lease_timeout", 60.0)) / 3.0),
        )
        beat.start()
        try:
            result = execute_cell(lease["experiment"], lease["params"], engine=engine)
            manifest_text, npz_bytes = cell_archive(lease["experiment"], result)
        except Exception as exc:  # a cell failure must not kill the worker
            beat.stop()
            error = f"{type(exc).__name__}: {exc}"
            _emit(f"[worker {name}] job {job_id} cell {cell} failed: {error}")
            with suppress(ServiceError):
                client.fail(lease["lease_id"], error)
            processed += 1
            continue
        beat.stop()
        try:
            response = client.complete(
                job_id,
                cell,
                manifest_text,
                npz_bytes,
                lease_id=lease["lease_id"],
                worker=name,
            )
        except ServiceError as exc:
            _emit(f"[worker {name}] job {job_id} cell {cell} commit failed: {exc}")
            processed += 1
            continue
        verdict = (
            "completed" if response.get("accepted") else f"discarded ({response.get('reason')})"
        )
        _emit(f"[worker {name}] job {job_id} cell {cell} {verdict}")
        processed += 1
    return processed
