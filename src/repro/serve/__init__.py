"""The study service: distributed campaigns over a brokered job queue.

Everything under :mod:`repro.serve` carries a :class:`~repro.study.
study.Study` across process and machine boundaries while preserving the
repo's core invariant — results byte-identical to a local serial run:

* :mod:`repro.serve.broker` — a sqlite-backed (WAL) job queue.  A
  submission is the *declarative* study description (experiment id +
  schema params + grid axes; the registry makes it serializable), which
  the broker re-expands into per-cell work items with the same product
  order the client computes.  Cells are handed out as leases with
  heartbeat/timeout/requeue semantics — the ``BrokenProcessPool``
  evict-and-retry generalized to lost workers — with a bounded attempt
  count and poisoned-cell quarantine.  The PR 8
  :class:`~repro.study.cache.StudyCache` plugs in broker-side, so a
  resubmitted cell is served from disk and never leased at all.
* :mod:`repro.serve.httpd` — a stdlib ``http.server`` front end (what
  ``repro serve`` runs and the tests exercise); :mod:`repro.serve.app`
  is the same surface on FastAPI for deployments that installed the
  optional ``serve`` extra.
* :mod:`repro.serve.worker` — the pull worker behind ``repro worker
  URL``: lease, execute the cell with a local engine, post the result
  archive back, heartbeating all the while.
* :mod:`repro.serve.engine` — :class:`ServiceEngine`, the third
  execution backend (``--backend service --broker URL`` /
  ``REPRO_JOBS=service``): ``Study.run()`` ships the study to the
  broker, streams progress, and reassembles an ordinary
  :class:`~repro.study.study.StudyResult`.

Results move as single-cell :func:`~repro.study.archive.save_study`
archives (manifest text + npz bytes), the byte-deterministic format the
cache already round-trips bit-exactly — which is what makes
service-backed archives ``cmp``-identical to in-process ones.
"""

from ..errors import ServiceError
from .broker import Broker
from .client import BrokerClient
from .engine import ServiceEngine
from .worker import run_worker

__all__ = [
    "Broker",
    "BrokerClient",
    "ServiceEngine",
    "ServiceError",
    "run_worker",
]
