"""The sqlite-brokered study queue: leases, retries, quarantine.

One broker owns one sqlite database (WAL mode — readers never block the
writer, and the file survives restarts with in-flight leases intact).
A submission names a registered experiment plus schema params and grid
axes; the broker re-expands the grid through the same
:meth:`~repro.study.study.Study.cells` product the client computes, so
cell indices mean the same thing on both ends without any pickled state
crossing the wire.

Lease state machine (per cell)::

    pending ──lease()──▶ leased ──complete(valid)──▶ done
       ▲                   │
       │   expiry / fail / invalid archive
       └──────◀────────────┘          (attempts < max_attempts)
                           └────────▶ failed   (attempts >= max_attempts)

* ``lease`` hands the oldest pending cell to a worker and charges an
  attempt; the lease carries a deadline (``now + lease_timeout``).
* ``heartbeat`` pushes the deadline out; a worker that stops beating —
  killed, wedged, partitioned — is *lost*, and its cell requeues the
  next time any call scans for expiry (lazy, no background thread: the
  same pattern as ``BrokenProcessPool``'s evict-and-retry, generalized).
* A cell that keeps failing is **quarantined**: after ``max_attempts``
  charged attempts it parks in ``failed`` with its last error, which
  surfaces as a per-cell error in the client's ``StudyResult`` instead
  of poisoning the whole sweep.
* Completion is **first commit wins**: results are deterministic, so
  the first valid archive for a cell is *the* result; a late duplicate
  (a lost worker racing its requeued cell) is acknowledged and
  discarded.  A valid archive is accepted even without a live lease —
  including for an already-quarantined cell, which it rescues.

Cache integration: give the broker a
:class:`~repro.study.cache.StudyCache` and submissions consult it per
cell — hits are born ``done`` (served straight from the entry's archive
bytes, zero leases, zero work units) and fresh completions are stored
back, so the farm's cache warms across tenants.

Concurrency: one connection guarded by one lock.  Calls are short
(sqlite work plus at most one archive validation); the serialization
point is the queue's correctness argument, not a bottleneck at
cell-sized work units.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from collections.abc import Callable, Mapping
from typing import Any

from ..errors import ConfigError, ServiceError
from ..study.archive import _jsonify
from ..study.cache import StudyCache, code_fingerprint
from ..study.registry import get_experiment
from ..study.study import Study
from .cells import load_cell_archive

__all__ = ["Broker"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS studies (
    job_id  TEXT PRIMARY KEY,
    experiment TEXT NOT NULL,
    payload TEXT NOT NULL,
    n_cells INTEGER NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    job_id  TEXT NOT NULL REFERENCES studies(job_id),
    cell    INTEGER NOT NULL,
    experiment TEXT NOT NULL,
    params  TEXT NOT NULL,
    overrides TEXT NOT NULL,
    units   INTEGER NOT NULL,
    state   TEXT NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    from_cache INTEGER NOT NULL DEFAULT 0,
    lease_id TEXT,
    worker  TEXT,
    deadline REAL,
    error   TEXT,
    manifest TEXT,
    npz     BLOB,
    PRIMARY KEY (job_id, cell)
);
CREATE INDEX IF NOT EXISTS idx_cells_state ON cells(state);
"""


class Broker:
    """A sqlite-backed study queue with lease/heartbeat/requeue semantics.

    ``clock`` is injectable (wall-clock seconds; the default is
    ``time.time`` so deadlines survive a broker restart) and ``log`` is
    an optional ``str -> None`` sink for queue transitions — the CI
    e2e job greps it for the requeue line.
    """

    def __init__(
        self,
        db_path: str | Path,
        cache: StudyCache | None = None,
        *,
        lease_timeout: float = 60.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ConfigError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        self.db_path = str(db_path)
        self.cache = cache
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self._clock = clock
        self._log = log
        self._lock = threading.Lock()
        self._db = sqlite3.connect(self.db_path, check_same_thread=False)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=10000")
        self._db.executescript(_SCHEMA)
        self._db.commit()

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def _emit(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    # -- submission ---------------------------------------------------------

    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Accept a serialized study; returns the job summary.

        ``payload`` is ``{"experiment": id, "params": {...},
        "axes": {...}}`` — the declarative description, validated by
        re-expanding it through the registry exactly as the client did
        (schema errors die here, before anything queues).  Cells with a
        cache hit are created ``done``; only the rest ever lease.
        """
        if not isinstance(payload, Mapping):
            raise ConfigError("submission payload must be a JSON object")
        experiment = payload.get("experiment")
        params = payload.get("params") or {}
        axes = payload.get("axes") or {}
        if not isinstance(experiment, str):
            raise ConfigError("submission needs an 'experiment' id string")
        if not isinstance(params, Mapping) or not isinstance(axes, Mapping):
            raise ConfigError("'params' and 'axes' must be JSON objects")
        study = Study(experiment, **dict(params))
        if axes:
            study = study.grid(**{name: list(values) for name, values in axes.items()})
        definition = study.definition
        fingerprint = "" if self.cache is None else code_fingerprint()
        job_id = f"{experiment}-{os.urandom(6).hex()}"
        now = self._clock()
        rows = []
        cached = 0
        units = 0
        for index, overrides in enumerate(study.cells()):
            cell_params = dict(study.params)
            cell_params.update(overrides)
            # Building the plan validates the cell end to end and sizes
            # it (work units = campaign length) for the accounting the
            # client reports as CacheInfo.
            plan = definition.build(cell_params)
            cell_units = len(plan.campaign)
            state = "pending"
            from_cache = 0
            manifest: str | None = None
            npz: bytes | None = None
            if self.cache is not None:
                hit = self.cache.lookup(definition, cell_params, fingerprint)
                if hit is not None:
                    key = self.cache.cell_key(definition, cell_params, fingerprint)
                    json_path, npz_path = self.cache.entry_files(key)
                    manifest = json_path.read_text()
                    npz = npz_path.read_bytes()
                    state = "done"
                    from_cache = 1
                    cached += 1
            if state == "pending":
                units += cell_units
            rows.append(
                (
                    job_id,
                    index,
                    experiment,
                    json.dumps(_jsonify(cell_params), sort_keys=True),
                    json.dumps(_jsonify(overrides), sort_keys=True),
                    cell_units,
                    state,
                    from_cache,
                    manifest,
                    npz,
                )
            )
        with self._lock:
            self._db.execute(
                "INSERT INTO studies (job_id, experiment, payload, n_cells, created)"
                " VALUES (?, ?, ?, ?, ?)",
                (job_id, experiment, json.dumps(_jsonify(dict(payload))), len(rows), now),
            )
            self._db.executemany(
                "INSERT INTO cells (job_id, cell, experiment, params, overrides,"
                " units, state, from_cache, manifest, npz)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._db.commit()
        self._emit(
            f"[broker] job {job_id}: submitted {experiment} "
            f"({len(rows)} cell(s), {cached} cached, {units} work units)"
        )
        return {"job_id": job_id, "cells": len(rows), "cached": cached, "units": units}

    # -- leases -------------------------------------------------------------

    def lease(self, worker: str) -> dict[str, Any] | None:
        """Hand the oldest pending cell to ``worker``, or ``None``.

        Charges an attempt and stamps a deadline; expired leases are
        requeued first, so a single polling worker eventually drains a
        queue other workers abandoned.
        """
        with self._lock:
            now = self._clock()
            self._requeue_expired_locked(now)
            row = self._db.execute(
                "SELECT job_id, cell, experiment, params, attempts FROM cells"
                " WHERE state='pending' ORDER BY rowid LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            job_id, cell, experiment, params_text, attempts = row
            lease_id = os.urandom(8).hex()
            deadline = now + self.lease_timeout
            self._db.execute(
                "UPDATE cells SET state='leased', lease_id=?, worker=?, deadline=?,"
                " attempts=attempts+1 WHERE job_id=? AND cell=?",
                (lease_id, worker, deadline, job_id, cell),
            )
            self._db.commit()
        self._emit(
            f"[broker] job {job_id} cell {cell}: leased to {worker} "
            f"(attempt {attempts + 1}/{self.max_attempts})"
        )
        return {
            "job_id": job_id,
            "cell": cell,
            "experiment": experiment,
            "params": json.loads(params_text),
            "lease_id": lease_id,
            "lease_timeout": self.lease_timeout,
        }

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease's deadline; ``False`` if it is gone.

        A ``False`` return tells the worker its lease was lost (expired
        and requeued, or completed by someone else) — it should stop
        working on the cell.
        """
        with self._lock:
            now = self._clock()
            self._requeue_expired_locked(now)
            cursor = self._db.execute(
                "UPDATE cells SET deadline=? WHERE lease_id=? AND state='leased'",
                (now + self.lease_timeout, lease_id),
            )
            self._db.commit()
            return cursor.rowcount == 1

    def requeue_expired(self) -> int:
        """Requeue every expired lease now; returns how many moved."""
        with self._lock:
            return self._requeue_expired_locked(self._clock())

    def _requeue_expired_locked(self, now: float) -> int:
        rows = self._db.execute(
            "SELECT job_id, cell, attempts, worker FROM cells"
            " WHERE state='leased' AND deadline < ?",
            (now,),
        ).fetchall()
        for job_id, cell, attempts, worker in rows:
            self._attempt_failed_locked(
                job_id,
                cell,
                attempts,
                f"lease expired (worker {worker or '?'} lost)",
            )
        return len(rows)

    def _attempt_failed_locked(self, job_id: str, cell: int, attempts: int, error: str) -> bool:
        """One charged attempt went bad: requeue or quarantine.

        Returns ``True`` if the cell requeued, ``False`` if it hit the
        attempt bound and is now quarantined with ``error``.
        """
        if attempts >= self.max_attempts:
            self._db.execute(
                "UPDATE cells SET state='failed', lease_id=NULL, deadline=NULL,"
                " error=? WHERE job_id=? AND cell=?",
                (error, job_id, cell),
            )
            self._db.commit()
            self._emit(
                f"[broker] job {job_id} cell {cell}: quarantined after "
                f"{attempts} attempt(s): {error}"
            )
            return False
        self._db.execute(
            "UPDATE cells SET state='pending', lease_id=NULL, worker=NULL,"
            " deadline=NULL, error=? WHERE job_id=? AND cell=?",
            (error, job_id, cell),
        )
        self._db.commit()
        self._emit(
            f"[broker] job {job_id} cell {cell}: requeued "
            f"(attempt {attempts}/{self.max_attempts} failed: {error})"
        )
        return True

    # -- completion ---------------------------------------------------------

    def complete(
        self,
        job_id: str,
        cell: int,
        manifest_text: str,
        npz_bytes: bytes,
        lease_id: str | None = None,
        worker: str | None = None,
    ) -> dict[str, Any]:
        """Commit one cell's result archive (first commit wins).

        The archive is fully validated (strict ``load_study`` plus an
        experiment/params match against the queued cell) before any
        state changes; an invalid archive charges the attempt like a
        worker failure.  ``lease_id`` is advisory — determinism means
        any valid result is *the* result, so late completions from lost
        leases (or even for quarantined cells) are accepted whenever
        the cell is not already done.
        """
        del lease_id  # recorded nowhere: validity, not ownership, decides
        invalid: str | None = None
        loaded = None
        try:
            loaded = load_cell_archive(manifest_text, npz_bytes)
            loaded_cell = loaded.only()
        except ConfigError as exc:
            invalid = str(exc)
        with self._lock:
            row = self._db.execute(
                "SELECT state, attempts, experiment, params FROM cells"
                " WHERE job_id=? AND cell=?",
                (job_id, cell),
            ).fetchone()
            if row is None:
                raise ServiceError(f"unknown cell {job_id}/{cell}")
            state, attempts, experiment, params_text = row
            if state == "done":
                self._emit(
                    f"[broker] job {job_id} cell {cell}: duplicate completion "
                    f"from {worker or '?'} discarded (first commit wins)"
                )
                return {"accepted": False, "reason": "already-complete"}
            if invalid is None:
                assert loaded is not None
                definition = get_experiment(experiment)
                if loaded.experiment_id != experiment:
                    invalid = (
                        f"archive holds experiment {loaded.experiment_id!r}, "
                        f"expected {experiment!r}"
                    )
                elif loaded_cell.params != definition.schema.resolve(json.loads(params_text)):
                    invalid = "archive params do not match the queued cell"
            if invalid is not None:
                self._attempt_failed_locked(
                    job_id, cell, attempts, f"invalid result archive: {invalid}"
                )
                return {"accepted": False, "reason": f"invalid-archive: {invalid}"}
            self._db.execute(
                "UPDATE cells SET state='done', lease_id=NULL, deadline=NULL,"
                " error=NULL, worker=?, manifest=?, npz=? WHERE job_id=? AND cell=?",
                (worker, manifest_text, npz_bytes, job_id, cell),
            )
            self._db.commit()
        self._emit(f"[broker] job {job_id} cell {cell}: completed by {worker or '?'}")
        if self.cache is not None:
            # Content-addressed store: concurrent completions of equal
            # cells race only toward writing identical bytes.
            assert loaded is not None
            self.cache.store(get_experiment(experiment), loaded_cell.params, loaded_cell)
        return {"accepted": True, "reason": "stored"}

    def fail(self, lease_id: str, error: str) -> dict[str, Any]:
        """A worker reports its leased cell failed; requeue or quarantine."""
        with self._lock:
            row = self._db.execute(
                "SELECT job_id, cell, attempts FROM cells"
                " WHERE lease_id=? AND state='leased'",
                (lease_id,),
            ).fetchone()
            if row is None:
                return {"accepted": False, "requeued": False, "reason": "unknown-lease"}
            job_id, cell, attempts = row
            requeued = self._attempt_failed_locked(job_id, cell, attempts, error)
            return {
                "accepted": True,
                "requeued": requeued,
                "reason": "requeued" if requeued else "quarantined",
            }

    # -- status / results ---------------------------------------------------

    def status(self, job_id: str) -> dict[str, Any]:
        """The job's cell states (expiry-scanned first).

        ``state`` is ``running`` until no cell is pending or leased,
        then ``failed`` if any cell quarantined, else ``done``.
        """
        with self._lock:
            self._requeue_expired_locked(self._clock())
            study_row = self._db.execute(
                "SELECT experiment, n_cells FROM studies WHERE job_id=?", (job_id,)
            ).fetchone()
            if study_row is None:
                raise ServiceError(f"unknown job {job_id!r}")
            experiment, n_cells = study_row
            cell_rows = self._db.execute(
                "SELECT cell, state, attempts, units, from_cache, error, worker"
                " FROM cells WHERE job_id=? ORDER BY cell",
                (job_id,),
            ).fetchall()
        cells = [
            {
                "cell": cell,
                "state": state,
                "attempts": attempts,
                "units": units,
                "from_cache": bool(from_cache),
                "error": error,
                "worker": worker,
            }
            for cell, state, attempts, units, from_cache, error, worker in cell_rows
        ]
        counts: dict[str, int] = {}
        for info in cells:
            counts[info["state"]] = counts.get(info["state"], 0) + 1
        if counts.get("pending", 0) or counts.get("leased", 0):
            state = "running"
        elif counts.get("failed", 0):
            state = "failed"
        else:
            state = "done"
        return {
            "job_id": job_id,
            "experiment": experiment,
            "n_cells": n_cells,
            "state": state,
            "counts": counts,
            "cells": cells,
        }

    def result(self, job_id: str, cell: int) -> tuple[str, bytes]:
        """One done cell's ``(manifest_text, npz_bytes)`` archive."""
        with self._lock:
            row = self._db.execute(
                "SELECT state, manifest, npz FROM cells WHERE job_id=? AND cell=?",
                (job_id, cell),
            ).fetchone()
        if row is None:
            raise ServiceError(f"unknown cell {job_id}/{cell}")
        state, manifest, npz = row
        if state == "done" and (manifest is None or npz is None):
            raise ServiceError(
                f"cell {job_id}/{cell} has no result (state={state}): "
                "its blobs were purged by broker gc"
            )
        if state != "done" or manifest is None or npz is None:
            raise ServiceError(f"cell {job_id}/{cell} has no result (state={state})")
        return manifest, bytes(npz)

    # -- maintenance --------------------------------------------------------

    def gc(self, keep_days: float = 7.0) -> dict[str, int]:
        """Purge result blobs of completed studies older than the cutoff.

        A study is *completed* when none of its cells are pending,
        leased, or failed — in-flight and quarantined studies keep their
        bytes so workers and post-mortems are never pulled out from
        under.  Purging NULLs the ``manifest``/``npz`` payloads but
        keeps the study and cell rows: ``status`` stays answerable
        forever, only ``result`` reports the blobs gone.  Returns
        ``{"studies", "cells", "bytes"}`` purge accounting.
        """
        if keep_days < 0:
            raise ConfigError(f"keep_days must be >= 0, got {keep_days}")
        cutoff = self._clock() - keep_days * 86400.0
        with self._lock:
            rows = self._db.execute(
                "SELECT s.job_id FROM studies s WHERE s.created < ?"
                " AND NOT EXISTS (SELECT 1 FROM cells c"
                "   WHERE c.job_id = s.job_id AND c.state != 'done')"
                " ORDER BY s.created",
                (cutoff,),
            ).fetchall()
            purged_studies = 0
            purged_cells = 0
            freed = 0
            for (job_id,) in rows:
                size, count = self._db.execute(
                    "SELECT COALESCE(SUM(LENGTH(npz)), 0)"
                    " + COALESCE(SUM(LENGTH(manifest)), 0), COUNT(*)"
                    " FROM cells WHERE job_id=? AND npz IS NOT NULL",
                    (job_id,),
                ).fetchone()
                if count == 0:
                    continue  # already purged on an earlier pass
                self._db.execute(
                    "UPDATE cells SET manifest=NULL, npz=NULL WHERE job_id=?",
                    (job_id,),
                )
                purged_studies += 1
                purged_cells += count
                freed += size
            self._db.commit()
            if purged_cells:
                # Reclaim the file space the NULLed blobs occupied.
                self._db.execute("VACUUM")
        if purged_studies:
            self._emit(
                f"[gc] purged {purged_cells} cell blob(s) across "
                f"{purged_studies} completed study(ies), {freed} bytes"
            )
        return {"studies": purged_studies, "cells": purged_cells, "bytes": freed}
