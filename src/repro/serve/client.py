"""The broker's HTTP client (urllib, stdlib-only).

One class, one method per endpoint, mirroring the :class:`~repro.serve.
broker.Broker` call surface exactly — ``run_worker`` and the tests
duck-type between a ``BrokerClient`` (over HTTP) and a ``Broker``
(in-process) because the signatures match.  Transport failures and
broker-side rejections both surface as :class:`~repro.errors.
ServiceError` with the broker's one-line message attached.
"""

from __future__ import annotations

import base64
import json
import urllib.error
import urllib.request
from collections.abc import Mapping
from typing import Any

from ..errors import ServiceError

__all__ = ["BrokerClient"]


class BrokerClient:
    """Talks to one broker URL (e.g. ``http://127.0.0.1:8742``)."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BrokerClient({self.url!r})"

    def _request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        timeout: float | None = None,
    ) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read().decode() or "null")
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode()).get("error", "")
            except (ValueError, AttributeError):
                detail = ""
            finally:
                exc.close()
            raise ServiceError(
                f"broker rejected {method} {path}: HTTP {exc.code} {detail}".rstrip()
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach broker at {self.url}: {exc.reason}") from None

    # -- the broker surface (signature-identical to Broker) -----------------

    def health(self) -> bool:
        return bool(self._request("GET", "/api/v1/health").get("ok"))

    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        return self._request("POST", "/api/v1/studies", payload)

    def status(
        self, job_id: str, wait: float | None = None, done: int | None = None
    ) -> dict[str, Any]:
        """Job status; ``wait``/``done`` long-poll for progress (the
        server holds the request until the finished count moves past
        ``done`` or ``wait`` seconds pass)."""
        query = ""
        if wait is not None:
            query = f"?wait={wait:g}&done={-1 if done is None else done}"
        timeout = None if wait is None else self.timeout + wait
        return self._request("GET", f"/api/v1/studies/{job_id}{query}", timeout=timeout)

    def lease(self, worker: str) -> dict[str, Any] | None:
        return self._request("POST", "/api/v1/lease", {"worker": worker})

    def heartbeat(self, lease_id: str) -> bool:
        return bool(self._request("POST", "/api/v1/heartbeat", {"lease_id": lease_id}).get("ok"))

    def complete(
        self,
        job_id: str,
        cell: int,
        manifest_text: str,
        npz_bytes: bytes,
        lease_id: str | None = None,
        worker: str | None = None,
    ) -> dict[str, Any]:
        return self._request(
            "POST",
            "/api/v1/complete",
            {
                "job_id": job_id,
                "cell": cell,
                "manifest_text": manifest_text,
                "npz_b64": base64.b64encode(npz_bytes).decode(),
                "lease_id": lease_id,
                "worker": worker,
            },
        )

    def fail(self, lease_id: str, error: str) -> dict[str, Any]:
        return self._request("POST", "/api/v1/fail", {"lease_id": lease_id, "error": error})

    def result(self, job_id: str, cell: int) -> tuple[str, bytes]:
        payload = self._request("GET", f"/api/v1/studies/{job_id}/cells/{cell}/result")
        return payload["manifest_text"], base64.b64decode(payload["npz_b64"])
