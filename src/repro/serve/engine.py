"""``ServiceEngine``: the distributed third backend for ``Study.run``.

``Study.run(jobs="service")`` (or ``--backend service --broker URL``,
or ``REPRO_JOBS=service`` + ``REPRO_BROKER``) resolves to this engine.
Instead of mapping work specs locally it ships the *declarative* study
to a broker, streams progress while the worker fleet executes, and
reassembles an ordinary :class:`~repro.study.study.StudyResult` from
the per-cell archives — byte-identical to a serial in-process run,
because the archives themselves are (see :mod:`repro.serve.cells`).

Quarantined cells come back as per-cell errors
(:attr:`StudyCell.error` / :attr:`StudyResult.errors`) rather than an
exception, so one poisoned cell does not cost a 999-cell sweep its
results.  Broker-side cache accounting lands in
``StudyResult.cache_info`` exactly like a local ``--cache`` run: a
fully cached resubmission reports zero submitted work units.
"""

from __future__ import annotations

import os
import sys
import time
from collections.abc import Callable, Sequence
from typing import Any

from ..errors import ConfigError, ServiceError
from ..study.cache import CacheInfo
from ..study.study import Study, StudyCell, StudyResult
from .cells import load_cell_archive
from .client import BrokerClient

__all__ = ["ServiceEngine", "resolve_broker"]


def resolve_broker(broker: str | BrokerClient | None = None) -> BrokerClient:
    """Turn a ``--broker`` / ``REPRO_BROKER``-style value into a client."""
    if isinstance(broker, BrokerClient):
        return broker
    if broker is None:
        broker = os.environ.get("REPRO_BROKER", "").strip() or None
    if not broker:
        raise ConfigError(
            "the service backend needs a broker URL: pass --broker URL "
            "(Study.run: ServiceEngine(url)) or set REPRO_BROKER"
        )
    return BrokerClient(broker)


class ServiceEngine:
    """Runs whole studies against a remote broker (``name="service"``).

    Satisfies the :class:`~repro.sim.execution.ExecutionEngine`
    protocol so engine plumbing treats it uniformly, but its real
    surface is :meth:`run_study` — ``Study.run`` delegates whole
    studies to it, and raw spec batches are a usage error (cells, not
    specs, are the service's unit of work).
    """

    name = "service"
    jobs = 0

    def __init__(
        self,
        broker: str | BrokerClient | None = None,
        *,
        poll: float = 0.5,
        timeout: float | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.client = resolve_broker(broker)
        self.poll = float(poll)
        #: Overall wall-clock budget for one run (None = wait forever).
        self.timeout = timeout
        self._progress = progress

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceEngine({self.client.url!r})"

    def _emit(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)
        else:
            print(message, file=sys.stderr)

    def map(self, specs: Sequence[Any]) -> list:
        raise ConfigError(
            "the service backend executes whole studies, not raw spec batches; "
            "go through Study.run / repro experiment --backend service"
        )

    def run_study(self, study: Study) -> StudyResult:
        """Submit, stream progress, reassemble the StudyResult."""
        axes = {name: list(values) for name, values in study.axes.items()}
        submitted = self.client.submit(
            {
                "experiment": study.experiment_id,
                "params": dict(study.params),
                "axes": axes,
            }
        )
        job_id = submitted["job_id"]
        cell_overrides = study.cells()
        if submitted.get("cells") != len(cell_overrides):
            raise ServiceError(
                f"broker expanded {submitted.get('cells')} cell(s), this client "
                f"expects {len(cell_overrides)} — client/broker version skew?"
            )
        self._emit(
            f"[service] job {job_id}: {submitted['cells']} cell(s) submitted "
            f"({submitted.get('cached', 0)} cached, "
            f"{submitted.get('units', 0)} work units)"
        )
        status = self._wait(job_id, len(cell_overrides))
        by_index = {info["cell"]: info for info in status["cells"]}
        cells = []
        for index, overrides in enumerate(cell_overrides):
            params = dict(study.params)
            params.update(overrides)
            info = by_index[index]
            if info["state"] == "done":
                manifest_text, npz_bytes = self.client.result(job_id, index)
                loaded = load_cell_archive(manifest_text, npz_bytes).only()
                cells.append(
                    StudyCell(
                        index=index,
                        overrides=overrides,
                        params=params,
                        result=loaded.result,
                        columns=loaded.columns,
                    )
                )
            else:
                cells.append(
                    StudyCell(
                        index=index,
                        overrides=overrides,
                        params=params,
                        result=None,
                        columns={},
                        error=info.get("error") or f"cell state {info['state']!r}",
                    )
                )
        result = StudyResult(
            experiment_id=study.experiment_id,
            kind=study.definition.kind,
            params=dict(study.params),
            axes=axes,
            cells=cells,
        )
        result.cache_info = CacheInfo(
            hits=submitted.get("cached", 0),
            misses=len(cells) - submitted.get("cached", 0),
            submitted_units=submitted.get("units", 0),
        )
        return result

    def _wait(self, job_id: str, n_cells: int) -> dict[str, Any]:
        """Long-poll status until the job leaves ``running``."""
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        finished = -1
        while True:
            status = self.client.status(job_id, wait=2.0, done=finished)
            counts = status["counts"]
            now_finished = counts.get("done", 0) + counts.get("failed", 0)
            if now_finished != finished:
                finished = now_finished
                self._emit(f"[service] job {job_id}: {finished}/{n_cells} finished")
            if status["state"] != "running":
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"service run timed out after {self.timeout}s (job {job_id}; "
                    "the queue keeps the job — resubmitting reuses its cache)"
                )
            time.sleep(self.poll)
