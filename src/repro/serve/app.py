"""Optional FastAPI front end (the ``serve`` extra).

The stdlib :mod:`repro.serve.httpd` server is the tested reference —
this module exposes the *same* wire surface on FastAPI/uvicorn for
deployments that want an ASGI stack (OpenAPI docs, middleware, real
concurrency limits).  Strictly optional: importing :mod:`repro.serve`
never touches it, and building the app without the extra installed
raises a one-line :class:`~repro.errors.ConfigError` naming it.

Everything here is a thin translation layer over the same
:class:`~repro.serve.broker.Broker` the stdlib server uses, so the two
front ends cannot drift in behavior — only in plumbing.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigError, ReproError
from .broker import Broker

__all__ = ["create_app", "serve_uvicorn"]

_EXTRA_HINT = (
    "the FastAPI front end needs the optional 'serve' extra "
    "(pip install 'repro-msplayer[serve]'); `repro serve` without "
    "--fastapi runs the dependency-free stdlib server"
)


def create_app(broker: Broker) -> Any:  # pragma: no cover - needs the extra
    """Build the FastAPI app mirroring :mod:`repro.serve.httpd`."""
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse
    except ImportError:
        raise ConfigError(_EXTRA_HINT) from None

    import base64

    app = FastAPI(title="repro study service", version="1")

    @app.exception_handler(ReproError)
    async def _repro_error(request: Request, exc: ReproError) -> JSONResponse:
        return JSONResponse(status_code=400, content={"error": str(exc)})

    @app.get("/api/v1/health")
    async def health() -> dict:
        return {"ok": True}

    @app.post("/api/v1/studies")
    async def submit(payload: dict) -> dict:
        return broker.submit(payload)

    @app.get("/api/v1/studies/{job_id}")
    async def status(job_id: str) -> dict:
        return broker.status(job_id)

    @app.get("/api/v1/studies/{job_id}/cells/{cell}/result")
    async def result(job_id: str, cell: int) -> dict:
        manifest, npz = broker.result(job_id, cell)
        return {
            "manifest_text": manifest,
            "npz_b64": base64.b64encode(npz).decode(),
        }

    @app.post("/api/v1/lease")
    async def lease(payload: dict) -> Any:
        return broker.lease(str(payload.get("worker") or "?"))

    @app.post("/api/v1/heartbeat")
    async def heartbeat(payload: dict) -> dict:
        return {"ok": broker.heartbeat(str(payload.get("lease_id") or ""))}

    @app.post("/api/v1/complete")
    async def complete(payload: dict) -> dict:
        return broker.complete(
            str(payload.get("job_id") or ""),
            int(payload.get("cell") or 0),
            str(payload.get("manifest_text") or ""),
            base64.b64decode(str(payload.get("npz_b64") or "")),
            lease_id=payload.get("lease_id"),
            worker=payload.get("worker"),
        )

    @app.post("/api/v1/fail")
    async def fail(payload: dict) -> dict:
        return broker.fail(
            str(payload.get("lease_id") or ""),
            str(payload.get("error") or "worker-reported failure"),
        )

    return app


def serve_uvicorn(
    broker: Broker, host: str, port: int
) -> None:  # pragma: no cover - needs the extra
    """Run the FastAPI app under uvicorn (``repro serve --fastapi``)."""
    try:
        import uvicorn
    except ImportError:
        raise ConfigError(_EXTRA_HINT) from None
    uvicorn.run(create_app(broker), host=host, port=port, log_level="info")
