"""Cell-level execution and archive transport for the study service.

The service's unit of work is one grid cell, and its wire format for a
finished cell is the single-cell :func:`~repro.study.archive.save_study`
archive — exactly the representation the content-addressed cache
(:mod:`repro.study.cache`) stores.  That choice is what buys the
byte-identity guarantee for free: the archive writer is deterministic
(pinned zip metadata, canonical JSON), and the cache tests already pin
that a cell rebuilt from such an archive is bit-identical to a freshly
computed one.  The broker, the workers, and the client all speak this
format; nothing else crosses the wire.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any

from ..sim.campaign import run_together
from ..study.archive import load_study, save_study
from ..study.registry import get_experiment
from ..study.study import StudyCell, StudyResult, _batch_columns

__all__ = ["cell_archive", "execute_cell", "load_cell_archive"]


def execute_cell(experiment_id: str, params: dict[str, Any], engine: Any = None) -> StudyCell:
    """Run one grid cell exactly as ``Study.run`` would.

    ``params`` is the cell's full param dict (any JSON-roundtripped
    spelling; the schema re-coerces), ``engine`` the worker's local
    execution backend (``None`` lets the campaign resolve one, i.e.
    ``REPRO_JOBS`` semantics).  Determinism makes the engine choice
    irrelevant to the bytes produced.
    """
    definition = get_experiment(experiment_id)
    resolved = definition.schema.resolve(dict(params))
    plan = definition.build(resolved)
    results = run_together([plan.campaign], engine)[0]
    assert results is not None  # nothing was skipped
    return StudyCell(
        index=0,
        overrides={},
        params=resolved,
        result=plan.render(results),
        columns=_batch_columns(results),
    )


def cell_archive(experiment_id: str, cell: StudyCell) -> tuple[str, bytes]:
    """Serialize one finished cell to ``(manifest_text, npz_bytes)``.

    The pair is a complete single-cell study archive — the same bytes
    ``StudyCache.store`` would put on disk for this cell, written
    through the same deterministic ``save_study`` path.
    """
    definition = get_experiment(experiment_id)
    normalized = StudyCell(
        index=0,
        overrides={},
        params=dict(cell.params),
        result=cell.result,
        columns=cell.columns,
    )
    single = StudyResult(
        experiment_id=definition.experiment_id,
        kind=definition.kind,
        params=dict(cell.params),
        axes={},
        cells=[normalized],
    )
    with tempfile.TemporaryDirectory(prefix="repro-cell-") as tmp:
        json_path, npz_path = save_study(single, Path(tmp) / "cell")
        return Path(json_path).read_text(), Path(npz_path).read_bytes()


def load_cell_archive(manifest_text: str, npz_bytes: bytes) -> StudyResult:
    """Parse a cell archive back into its (strictly checked) result.

    Runs the full ``load_study`` validation — schema version, manifest
    shape, column metadata — so a corrupt or hand-rolled submission is
    rejected with a :class:`~repro.errors.ConfigError`, never stored.
    The caller reads the single cell via ``.only()``.
    """
    with tempfile.TemporaryDirectory(prefix="repro-cell-") as tmp:
        base = Path(tmp) / "cell"
        base.with_suffix(".npz").write_bytes(npz_bytes)
        base.with_suffix(".json").write_text(manifest_text)
        return load_study(base)
