"""Stdlib HTTP front end for the broker (``repro serve``).

JSON over ``http.server`` — zero dependencies, which is what lets the
tier-1 tests and the CI e2e job run a real broker + workers over real
sockets on any checkout.  :mod:`repro.serve.app` offers the same
surface on FastAPI for deployments that installed the ``serve`` extra.

Endpoints (all JSON; errors are ``{"error": msg}`` with a 4xx code):

====== ====================================== =========================
POST   /api/v1/studies                         submit a study
GET    /api/v1/studies/<job>                   status (``?wait=S&done=N``
                                               long-polls until the
                                               finished count differs)
GET    /api/v1/studies/<job>/cells/<i>/result  cell archive (npz base64)
POST   /api/v1/lease                           ``{"worker": id}`` → lease
                                               or JSON ``null``
POST   /api/v1/heartbeat                       ``{"lease_id"}`` → ok flag
POST   /api/v1/complete                        commit a cell archive
POST   /api/v1/fail                            report a failed lease
GET    /api/v1/health                          liveness probe
====== ====================================== =========================

Result archives ride as ``{"manifest_text": str, "npz_b64": base64}``
— text-safe encodings of the exact bytes, so byte-identity survives
the wire.
"""

from __future__ import annotations

import base64
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit
from typing import Any

from ..errors import ConfigError, ReproError
from .broker import Broker

__all__ = ["BrokerServer", "create_server", "run_server"]

_STATUS = re.compile(r"^/api/v1/studies/([^/]+)$")
_RESULT = re.compile(r"^/api/v1/studies/([^/]+)/cells/(\d+)/result$")

#: Long-poll bounds: the status endpoint re-checks at this period and
#: refuses to hold a connection longer than the cap.
_POLL_STEP = 0.05
_MAX_WAIT = 30.0


class BrokerServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Broker`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], broker: Broker) -> None:
        super().__init__(address, _Handler)
        self.broker = broker


class _Handler(BaseHTTPRequestHandler):
    server: BrokerServer

    # One request per connection: keeps the worker/client side trivially
    # leak-free (urllib closes after every call anyway).
    protocol_version = "HTTP/1.0"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the broker's own log carries the queue transitions

    # -- plumbing -----------------------------------------------------------

    def _send_json(self, code: int, payload: Any) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") from None

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        try:
            url = urlsplit(self.path)
            if url.path == "/api/v1/health":
                self._send_json(200, {"ok": True})
                return
            match = _STATUS.match(url.path)
            if match:
                self._send_json(200, self._status(match.group(1), url.query))
                return
            match = _RESULT.match(url.path)
            if match:
                manifest, npz = self.server.broker.result(match.group(1), int(match.group(2)))
                self._send_json(
                    200,
                    {
                        "manifest_text": manifest,
                        "npz_b64": base64.b64encode(npz).decode(),
                    },
                )
                return
            self._send_json(404, {"error": f"unknown path {url.path!r}"})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})

    def _status(self, job_id: str, query: str) -> dict[str, Any]:
        """Job status, optionally long-polled.

        ``?wait=S&done=N`` holds the request until the finished
        (done + failed) cell count differs from ``N``, the job leaves
        ``running``, or ``S`` seconds pass — the "streamed progress"
        primitive: a client looping on it sees every transition without
        hot-polling.
        """
        params = parse_qs(query)
        wait = min(float(params.get("wait", ["0"])[0]), _MAX_WAIT)
        seen = int(params.get("done", ["-1"])[0])
        deadline = time.monotonic() + wait
        while True:
            status = self.server.broker.status(job_id)
            counts = status["counts"]
            finished = counts.get("done", 0) + counts.get("failed", 0)
            if finished != seen or status["state"] != "running" or time.monotonic() >= deadline:
                return status
            time.sleep(_POLL_STEP)

    def do_POST(self) -> None:  # noqa: N802 - http.server's naming
        try:
            body = self._read_json()
            broker = self.server.broker
            if self.path == "/api/v1/studies":
                self._send_json(200, broker.submit(body))
            elif self.path == "/api/v1/lease":
                lease = broker.lease(str(body.get("worker") or "?"))
                self._send_json(200, lease)
            elif self.path == "/api/v1/heartbeat":
                ok = broker.heartbeat(str(body.get("lease_id") or ""))
                self._send_json(200, {"ok": ok})
            elif self.path == "/api/v1/complete":
                self._send_json(
                    200,
                    broker.complete(
                        str(body.get("job_id") or ""),
                        int(body.get("cell") or 0),
                        str(body.get("manifest_text") or ""),
                        base64.b64decode(str(body.get("npz_b64") or "")),
                        lease_id=body.get("lease_id"),
                        worker=body.get("worker"),
                    ),
                )
            elif self.path == "/api/v1/fail":
                self._send_json(
                    200,
                    broker.fail(
                        str(body.get("lease_id") or ""),
                        str(body.get("error") or "worker-reported failure"),
                    ),
                )
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})


def create_server(broker: Broker, host: str = "127.0.0.1", port: int = 0) -> BrokerServer:
    """Bind a :class:`BrokerServer` (port 0 = ephemeral, for tests)."""
    return BrokerServer((host, port), broker)


def run_server(
    broker: Broker,
    host: str = "127.0.0.1",
    port: int = 8742,
    *,
    ready: threading.Event | None = None,
    server_box: list[BrokerServer] | None = None,
) -> None:
    """Bind and serve until shutdown (the ``repro serve`` main loop).

    ``ready``/``server_box`` are test hooks: the bound server lands in
    the box (so a test learns the ephemeral port and can call
    ``shutdown``) before ``ready`` is set.
    """
    server = create_server(broker, host, port)
    try:
        if server_box is not None:
            server_box.append(server)
        if ready is not None:
            ready.set()
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
