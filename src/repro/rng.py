"""Seeded random-number fan-out.

Every stochastic component in the simulator (per-link bandwidth
processes, RTT jitter, server compute delays, failure injectors) draws
from its *own* :class:`numpy.random.Generator`, derived deterministically
from one experiment seed and a component label.  Two benefits:

* trials are exactly reproducible from ``(seed, label)``;
* adding a new stochastic component does not perturb the random streams
  of existing ones (no shared-global-state coupling), so experiment
  results stay comparable across library versions.

This mirrors how the paper randomizes the order of tested configurations
over 20 repetitions (§5.2): our experiment runner derives one substream
per (configuration, trial) pair.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _label_to_ints(label: str) -> list[int]:
    """Hash a textual label into integers usable as seed material."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    # Four 8-byte words; plenty of entropy for SeedSequence spawning.
    return [int.from_bytes(digest[i : i + 8], "big") for i in range(0, 32, 8)]


class RngFactory:
    """Derives independent named random generators from one root seed.

    >>> factory = RngFactory(42)
    >>> a = factory.generator("wifi.bandwidth")
    >>> b = factory.generator("lte.bandwidth")
    >>> a.random() != b.random()  # independent streams
    True
    >>> RngFactory(42).generator("wifi.bandwidth").random() == \
        RngFactory(42).generator("wifi.bandwidth").random()
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed

    def generator(self, label: str) -> np.random.Generator:
        """Return a fresh generator for ``label``, deterministic in (seed, label)."""
        sequence = np.random.SeedSequence([self.seed % (2**63), *_label_to_ints(label)])
        return np.random.Generator(np.random.PCG64(sequence))

    def child(self, label: str) -> "RngFactory":
        """Derive a sub-factory, e.g. one per trial: ``factory.child("trial3")``."""
        material = _label_to_ints(label)
        mixed = (self.seed * 1_000_003 + material[0]) % (2**63)
        return RngFactory(mixed)

    def integer(self, label: str, high: int = 2**31) -> int:
        """A deterministic integer in ``[0, high)`` for seeding third parties."""
        return int(self.generator(label).integers(0, high))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"
