"""Runs a PlayerSession against a simulated scenario.

The driver is the IO half of MSPlayer: it executes the sans-IO
session's commands as simulated network activity —

* ``StartBootstrap`` → DNS lookup, HTTPS to the web proxy, JSON parse,
  the signature-decoder detour for copyrighted videos (footnote 1),
  then a warm HTTPS connection to the selected video server.  Each
  path bootstraps in its *own* process, so the fast path starts
  fetching video while the slow path is still shaking hands — the
  π₂−π₁ head start of §3.2 emerges rather than being scripted;
* ``FetchChunk`` → an HTTP range request on the path's persistent
  connection, feeding the completion (or failure) back in;
* a playback ticker drives ``on_tick`` at the configured granularity.

Stop conditions support the experiments: ``"prebuffer"`` ends the run
at playback start (Figs. 2–4), ``"cycles"`` after N completed
re-buffering cycles (Fig. 5, Table 1), ``"full"`` at end of playback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cdn.deployment import PROXY_DNS_NAME
from ..cdn.jsonapi import VideoInfo, parse_video_info
from ..cdn.signature import decipher
from ..cdn.webproxy import parse_decoder_page
from ..core.config import PlayerConfig
from ..core.metrics import QoEMetrics
from ..core.session import (
    Command,
    FetchChunk,
    PathDead,
    PlayerSession,
    SessionDone,
    StartBootstrap,
    StartPlayback,
    StreamDetails,
)
from ..errors import CDNError, HTTPError, NetworkError
from ..http.client import SimHTTPClient
from ..http.messages import Request
from .scenario import Scenario


@dataclass
class PathRuntime:
    """Driver-side state for one path."""

    client: SimHTTPClient
    info: VideoInfo | None = None
    signature: str = ""
    decoder_program: list[tuple[str, int]] | None = None
    details: StreamDetails | None = None


@dataclass
class SessionOutcome:
    """Everything a trial reports."""

    metrics: QoEMetrics
    finished_at: float
    stop_reason: str
    peak_out_of_order: int
    #: Per-path measured bootstrap milestones (Fig. 1 reproduction).
    path_json_delay: dict[int, float] = field(default_factory=dict)
    path_first_video_delay: dict[int, float] = field(default_factory=dict)
    #: Bytes served per video server (source-diversity accounting).
    server_bytes: dict[str, int] = field(default_factory=dict)
    requests_by_path: dict[int, int] = field(default_factory=dict)

    @property
    def startup_delay(self) -> float | None:
        return self.metrics.startup_delay


class MSPlayerDriver:
    """Simulated-IO executor for one MSPlayer session."""

    def __init__(
        self,
        scenario: Scenario,
        config: PlayerConfig | None = None,
        stop: str = "full",
        target_cycles: int = 3,
        max_sim_time: float = 1800.0,
    ) -> None:
        if stop not in ("prebuffer", "cycles", "full"):
            raise ValueError(f"unknown stop condition {stop!r}")
        self.scenario = scenario
        self.config = config or PlayerConfig()
        self.stop = stop
        self.target_cycles = target_cycles
        self.max_sim_time = max_sim_time
        self.session = PlayerSession(self.config, scenario.path_specs(self.config.max_paths))
        env = scenario.env
        self._finish = env.event()
        self._stop_reason = "unknown"
        self._runtimes: dict[int, PathRuntime] = {}
        for path_id in self.session.paths:
            iface = scenario.iface_for(path_id)
            self._runtimes[path_id] = PathRuntime(
                client=SimHTTPClient(env, scenario.network, iface)
            )
            iface.status_listeners.append(
                lambda down, path_id=path_id: self._on_iface_status(path_id, down)
            )

    # -- public -------------------------------------------------------------

    def run(self) -> SessionOutcome:
        self.launch()
        self.scenario.env.run(until=self.finished)
        return self.collect()

    def launch(self) -> None:
        """Start the session without running the event loop.

        Lets several drivers (multi-client experiments) share one
        environment: launch each, then run the environment until all
        of their ``finished`` events have fired.
        """
        env = self.scenario.env
        result = self.session.start(env.now)
        self._execute(result.commands)
        env.process(self._ticker())
        env.process(self._watchdog())

    @property
    def finished(self):
        """Event fired when the driver's stop condition is met."""
        return self._finish

    def collect(self) -> SessionOutcome:
        return self._collect()

    # -- command execution ------------------------------------------------------

    def _execute(self, commands: list[Command]) -> None:
        env = self.scenario.env
        for command in commands:
            if isinstance(command, StartBootstrap):
                env.process(self._bootstrap(command.path_id, command.server))
            elif isinstance(command, FetchChunk):
                env.process(self._fetch(command))
            elif isinstance(command, StartPlayback):
                if self.stop == "prebuffer":
                    self._finish_once("prebuffer-complete")
            elif isinstance(command, SessionDone):
                self._finish_once(command.reason)
            elif isinstance(command, PathDead):
                pass  # informational; metrics carry the details
        if (
            self.stop == "cycles"
            and len(self.session.metrics.completed_cycle_durations()) >= self.target_cycles
        ):
            self._finish_once("cycles-complete")

    def _finish_once(self, reason: str) -> None:
        if not self._finish.triggered:
            self._stop_reason = reason
            self._finish.succeed(reason)

    # -- bootstrap -----------------------------------------------------------------

    def _bootstrap(self, path_id: int, server: str | None):
        """Process: full proxy bootstrap, or a failover redial to ``server``."""
        env = self.scenario.env
        runtime = self._runtimes[path_id]
        try:
            if server is not None and runtime.details is not None:
                # Failover within the network: token and signature stay
                # valid, only the data connection moves (§2).
                yield env.process(runtime.client.connect(server))
                details = runtime.details
            else:
                details = yield from self._full_bootstrap(path_id, runtime)
        except (NetworkError, CDNError, HTTPError) as exc:
            iface = self.scenario.iface_for(path_id)
            result = self.session.on_chunk_failed(
                path_id,
                bytes_delivered=0,
                now=env.now,
                reason=f"bootstrap: {exc}",
                interface_down=not iface.is_up,
            )
            self._execute(result.commands)
            return
        result = self.session.on_path_ready(path_id, details, env.now)
        self._execute(result.commands)

    def _full_bootstrap(self, path_id: int, runtime: PathRuntime):
        """The §3.1/§4 sequence against the web proxy, then the video server."""
        env = self.scenario.env
        network_id = self.session.paths[path_id].network_id
        addresses = yield env.process(
            self.scenario.resolver.resolve(PROXY_DNS_NAME, network_id)
        )
        proxy = addresses[0]
        response, _timing = yield env.process(
            runtime.client.get(
                proxy,
                Request.get(
                    f"/videoinfo?v={self.scenario.video.video_id}", host=proxy
                ),
                expect=(200,),
            )
        )
        info = parse_video_info(response.parsed_json())
        json_completed_at = env.now
        runtime.info = info
        stream = info.stream(self.config.itag)

        if stream.needs_decipher:
            if runtime.decoder_program is None:
                page, _ = yield env.process(
                    runtime.client.get(
                        proxy, Request.get(info.decoder_path, host=proxy), expect=(200,)
                    )
                )
                runtime.decoder_program = parse_decoder_page(page.body)
            runtime.signature = decipher(
                stream.enciphered_signature, runtime.decoder_program
            )
        else:
            runtime.signature = stream.signature

        # Warm the data-plane connection (TCP + TLS) to the primary
        # video server so the first range request pays only its RTT.
        yield env.process(runtime.client.connect(stream.hosts[0]))
        details = StreamDetails(
            total_bytes=stream.size_bytes,
            bitrate_bytes_per_s=stream.size_bytes / info.duration_s,
            duration_s=info.duration_s,
            video_servers=tuple(stream.hosts),
            json_completed_at=json_completed_at,
        )
        runtime.details = details
        return details

    # -- chunk fetching ---------------------------------------------------------------

    def _fetch(self, command: FetchChunk):
        env = self.scenario.env
        runtime = self._runtimes[command.path_id]
        info = runtime.info
        if info is None:
            raise CDNError(f"path {command.path_id} fetching before bootstrap")
        target = info.playback_target(self.config.itag, runtime.signature)
        request = Request.get(target, host=command.server, byte_range=command.byte_range)
        try:
            _response, timing = yield env.process(
                runtime.client.get(command.server, request, expect=(206,))
            )
        except (NetworkError, CDNError, HTTPError) as exc:
            iface = self.scenario.iface_for(command.path_id)
            # Keep the in-order body prefix that made it before the
            # failure (minus a conservative header allowance), so the
            # survivor refetches only the missing suffix.
            wire_delivered = int(getattr(exc, "flow_bytes_delivered", 0))
            delivered = max(0, min(wire_delivered - 512, command.byte_range.length))
            result = self.session.on_chunk_failed(
                command.path_id,
                bytes_delivered=delivered,
                now=env.now,
                reason=str(exc),
                interface_down=not iface.is_up,
            )
            self._execute(result.commands)
            return
        result = self.session.on_chunk_complete(
            command.path_id,
            num_bytes=command.byte_range.length,
            duration=timing.duration,
            now=env.now,
            first_byte_at=timing.first_byte_at,
        )
        self._execute(result.commands)

    # -- background processes ------------------------------------------------------------

    def _ticker(self):
        env = self.scenario.env
        tick = self.config.tick_s
        while not self._finish.triggered:
            yield env.pooled_timeout(tick)
            result = self.session.on_tick(tick, env.now)
            self._execute(result.commands)

    def _watchdog(self):
        env = self.scenario.env
        yield env.pooled_timeout(self.max_sim_time)
        self._finish_once("timeout")

    def _on_iface_status(self, path_id: int, down: bool) -> None:
        if down:
            return  # in-flight flows abort; the fetch process reports it
        result = self.session.on_interface_up(path_id, self.scenario.env.now)
        self._execute(result.commands)

    # -- reporting -------------------------------------------------------------------------

    def _collect(self) -> SessionOutcome:
        metrics = self.session.metrics
        outcome = SessionOutcome(
            metrics=metrics,
            finished_at=self.scenario.env.now,
            stop_reason=self._stop_reason,
            peak_out_of_order=(
                self.session.ledger.peak_out_of_order if self.session.ledger else 0
            ),
            server_bytes=self.scenario.deployment.total_bytes_served(),
            requests_by_path=dict(metrics.requests_by_path),
        )
        for path_id, path in self.session.paths.items():
            json_delay = path.bootstrap_duration()
            first_video = path.first_packet_delay()
            if json_delay is not None:
                outcome.path_json_delay[path_id] = json_delay
            if first_video is not None:
                outcome.path_first_video_delay[path_id] = first_video
        return outcome
