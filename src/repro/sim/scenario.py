"""Scenario construction: profile → a runnable simulated world.

A :class:`Scenario` owns everything one trial needs: the environment,
the two access links and interfaces, the CDN deployment (proxies +
video servers in each network), the DNS resolver, and the video under
test.  Scenarios are cheap to build, and every trial builds a fresh one
so no state leaks between repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cdn.catalog import Catalog
from ..cdn.deployment import CDNConfig, CDNDeployment
from ..cdn.videos import VideoMeta
from ..errors import ConfigError
from ..net.dns import StubResolver
from ..net.env import Environment
from ..net.iface import NetworkInterface
from ..net.link import Link
from ..net.topology import Network
from ..rng import RngFactory
from .profiles import NetworkProfile

#: Network ids used throughout scenarios: index 0 = WiFi, 1 = LTE.
WIFI_NET = "wifi-net"
LTE_NET = "lte-net"


@dataclass(frozen=True)
class ScenarioConfig:
    """Per-trial knobs that are not part of the network profile."""

    video_duration_s: float = 300.0
    video_id: str = "qjT4T2gU9sM"  # the paper's own example URL (§3.1)
    copyrighted: bool = False
    itags: tuple[int, ...] = (18, 22, 37)
    selection_policy: str = "static"
    overload_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.video_duration_s <= 0:
            raise ConfigError("video_duration_s must be positive")


class Scenario:
    """One fully wired simulated world."""

    def __init__(
        self, profile: NetworkProfile, seed: int, config: ScenarioConfig | None = None
    ) -> None:
        self.profile = profile
        self.config = config or ScenarioConfig()
        self.rng_factory = RngFactory(seed)
        self.env = Environment()
        self.network = Network(self.env)
        self.resolver = StubResolver(self.env, lookup_delay=profile.dns_delay_s)

        # Access links and interfaces (index 0 = WiFi, 1 = LTE).
        self.wifi_link = Link(
            self.env,
            profile.wifi.bandwidth_process(self.rng_factory, "wifi"),
            name="wifi-link",
        )
        self.lte_link = Link(
            self.env,
            profile.lte.bandwidth_process(self.rng_factory, "lte"),
            name="lte-link",
        )
        self.wifi = NetworkInterface(
            self.env,
            name="wlan0",
            kind="wifi",
            link=self.wifi_link,
            latency=profile.wifi.latency_process(self.rng_factory, "wifi"),
            network_id=WIFI_NET,
            address="192.168.1.23",
        )
        self.lte = NetworkInterface(
            self.env,
            name="wwan0",
            kind="lte",
            link=self.lte_link,
            latency=profile.lte.latency_process(self.rng_factory, "lte"),
            network_id=LTE_NET,
            address="10.54.3.99",
        )

        # The video under test (the paper pre-downloads one HD clip, §5).
        self.catalog = Catalog()
        self.video = self.catalog.add(
            VideoMeta(
                video_id=self.config.video_id,
                title="Testbed HD clip",
                author="umass",
                duration_s=self.config.video_duration_s,
                itags=self.config.itags,
                copyrighted=self.config.copyrighted,
            )
        )

        self.deployment = CDNDeployment(
            self.env,
            self.network,
            self.catalog,
            CDNConfig(
                networks=(WIFI_NET, LTE_NET),
                video_servers_per_network=profile.video_servers_per_network,
                selection_policy=self.config.selection_policy,
                tls=profile.tls,
                proxy_distance=profile.proxy_distance_s,
                video_distance=profile.video_distance_s,
                overload_threshold=self.config.overload_threshold,
            ),
            rng=self.rng_factory.generator("cdn"),
            resolver=self.resolver,
        )

        self._schedule_outages()

    # -- helpers ----------------------------------------------------------------

    def iface_for(self, index: int) -> NetworkInterface:
        """Path index → interface (0 = WiFi, the designated fast path)."""
        return (self.wifi, self.lte)[index]

    def path_specs(self, paths: int = 2) -> list[tuple[str, str]]:
        """``(iface_name, network_id)`` pairs for PlayerSession."""
        specs = [(self.wifi.name, WIFI_NET), (self.lte.name, LTE_NET)]
        return specs[:paths]

    def _schedule_outages(self) -> None:
        for outage in self.profile.outages:
            iface = self.wifi if outage.iface == "wifi" else self.lte

            def toggler(iface=iface, outage=outage):
                yield self.env.pooled_timeout(outage.down_at)
                iface.set_up(False)
                yield self.env.pooled_timeout(outage.up_at - outage.down_at)
                iface.set_up(True)

            self.env.process(toggler())
