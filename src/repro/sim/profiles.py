"""Calibrated network profiles.

Calibration targets, from the paper:

* §5 testbed: client = laptop on home WiFi + LTE dongle on a major US
  carrier; servers in two UMass subnets.  WiFi is the faster, stabler
  path; with 40 s of 720p pre-buffering, WiFi alone takes ~11 s median
  and MSPlayer ~7 s (Fig. 2), implying WiFi ≈ 2× LTE in goodput.
* §6 YouTube: LTE RTTs measured at 2–3× WiFi (θ ∈ [2, 3]); WiFi
  carries >60 % of MSPlayer traffic (Table 1); start-up reductions of
  12/21/28 % versus the best single path for 20/40/60 s pre-buffers
  (Fig. 4) — consistent with an LTE/WiFi capacity ratio around 0.5–0.6
  minus bootstrap overheads.

The numbers below reproduce those *relationships*: WiFi ≈ 22 Mb/s mean
at 25–35 ms RTT, LTE ≈ 12 Mb/s at 65–90 ms RTT.  Absolute seconds in
our figures differ from the paper's (their links, their RTTs), the
orderings and ratios are the reproduction target (see EXPERIMENTS.md).

Each profile is a declarative :class:`NetworkProfile`; the scenario
builder turns it into links/interfaces with independent random
substreams per component.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..net.bandwidth import (
    ARLogNormalBandwidth,
    BandwidthProcess,
    CompositeBandwidth,
    ConstantBandwidth,
    MarkovBandwidth,
)
from ..net.latency import ConstantLatency, JitteredLatency, LatencyProcess
from ..net.tls import TLSParams
from ..rng import RngFactory
from ..units import MS, mbit


@dataclass(frozen=True)
class OutageEvent:
    """A scheduled interface outage (mobility)."""

    iface: str  # "wifi" | "lte"
    down_at: float
    up_at: float

    def __post_init__(self) -> None:
        if not 0 <= self.down_at < self.up_at:
            raise ConfigError(f"invalid outage window [{self.down_at}, {self.up_at}]")


@dataclass(frozen=True)
class InterfaceProfile:
    """Stochastic description of one interface's path."""

    kind: str  # "wifi" | "lte"
    mean_mbps: float
    #: Lognormal sigma of the AR(1) drift component.
    sigma: float
    #: AR(1) correlation.
    rho: float
    #: One-way propagation delay (RTT/2) in seconds.
    one_way_delay_s: float
    #: Half-normal jitter std (seconds, one-way); 0 = deterministic.
    jitter_std_s: float = 0.0
    #: Optional Markov modulation: (relative_rate, mean_holding_s) states.
    markov_states: tuple[tuple[float, float], ...] = ()
    #: Update interval of the AR(1) component.
    interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_mbps <= 0:
            raise ConfigError("mean_mbps must be positive")
        if self.one_way_delay_s <= 0:
            raise ConfigError("one_way_delay_s must be positive")

    @property
    def base_rtt(self) -> float:
        return 2.0 * self.one_way_delay_s

    # -- process construction ---------------------------------------------------

    def bandwidth_process(self, rng_factory: RngFactory, label: str) -> BandwidthProcess:
        mean = mbit(self.mean_mbps)
        if self.sigma <= 0 and not self.markov_states:
            return ConstantBandwidth(mean)
        base: BandwidthProcess
        if self.sigma > 0:
            base = ARLogNormalBandwidth(
                mean,
                sigma=self.sigma,
                rho=self.rho,
                interval=self.interval_s,
                rng=rng_factory.generator(f"{label}.ar"),
            )
        else:
            base = ConstantBandwidth(mean)
        if self.markov_states:
            modulation = MarkovBandwidth(
                [(rate, hold) for rate, hold in self.markov_states],
                rng=rng_factory.generator(f"{label}.markov"),
            )
            return CompositeBandwidth(base, modulation)
        return base

    def latency_process(self, rng_factory: RngFactory, label: str) -> LatencyProcess:
        if self.jitter_std_s <= 0:
            return ConstantLatency(self.one_way_delay_s)
        return JitteredLatency(
            self.one_way_delay_s,
            jitter_std=self.jitter_std_s,
            rng=rng_factory.generator(f"{label}.jitter"),
        )


@dataclass(frozen=True)
class NetworkProfile:
    """A complete two-interface world description."""

    name: str
    wifi: InterfaceProfile
    lte: InterfaceProfile
    tls: TLSParams = field(default_factory=TLSParams)
    #: Extra one-way distance to proxy / video servers (seconds).
    proxy_distance_s: float = 0.002
    video_distance_s: float = 0.002
    video_servers_per_network: int = 2
    dns_delay_s: float = 0.030
    outages: tuple[OutageEvent, ...] = ()

    @property
    def theta(self) -> float:
        """RTT ratio θ = R_lte / R_wifi (§3.2)."""
        return self.lte.base_rtt / self.wifi.base_rtt

    def with_(self, **changes: object) -> "NetworkProfile":
        return replace(self, **changes)  # type: ignore[arg-type]


def testbed_profile() -> NetworkProfile:
    """§5: campus testbed — short stable paths, servers one hop away.

    Mild AR(1) variability only; this is the regime where the Ratio
    baseline is closest to the dynamic schedulers (Fig. 3) yet still
    loses on responsiveness.
    """
    return NetworkProfile(
        name="testbed",
        wifi=InterfaceProfile(
            kind="wifi",
            mean_mbps=10.5,
            sigma=0.15,
            rho=0.7,
            one_way_delay_s=12.5 * MS,
            jitter_std_s=1.5 * MS,
        ),
        lte=InterfaceProfile(
            kind="lte",
            mean_mbps=7.0,
            sigma=0.30,
            rho=0.8,
            one_way_delay_s=32.5 * MS,
            jitter_std_s=4.0 * MS,
        ),
        tls=TLSParams(delta1=0.008, delta2=0.008),
        proxy_distance_s=0.001,
        video_distance_s=0.001,
    )


def youtube_profile() -> NetworkProfile:
    """§6: the real service — longer paths, burstier capacity.

    Markov load-shift modulation on both links (deeper on LTE) produces
    the outlier bursts that motivate the harmonic-mean estimator; RTTs
    put θ ≈ 2.6, inside the paper's measured 2–3 band.
    """
    return NetworkProfile(
        name="youtube",
        wifi=InterfaceProfile(
            kind="wifi",
            mean_mbps=10.0,
            sigma=0.25,
            rho=0.8,
            one_way_delay_s=17.5 * MS,
            jitter_std_s=3.0 * MS,
            markov_states=((1.15, 8.0), (0.7, 3.0)),
        ),
        lte=InterfaceProfile(
            kind="lte",
            mean_mbps=6.0,
            sigma=0.40,
            rho=0.85,
            one_way_delay_s=45.0 * MS,
            jitter_std_s=8.0 * MS,
            markov_states=((1.25, 6.0), (0.55, 3.0)),
        ),
        tls=TLSParams(delta1=0.010, delta2=0.010),
        proxy_distance_s=0.006,
        video_distance_s=0.004,
        video_servers_per_network=3,
    )


def mobility_profile(
    wifi_down_at: float = 20.0, wifi_up_at: float = 45.0
) -> NetworkProfile:
    """EXP-X1: the WiFi-walkout scenario §2 motivates.

    The WiFi interface drops mid-stream and returns later; MSPlayer
    should ride LTE through the outage and re-adopt WiFi afterwards.
    """
    base = youtube_profile()
    return base.with_(
        name="mobility",
        outages=(OutageEvent("wifi", wifi_down_at, wifi_up_at),),
    )


def mobile_profile() -> NetworkProfile:
    """A commuter's access: weak jittery WiFi, LTE doing the real work.

    The scenarios package assigns this to the mobile share of a city
    mix.  The profile carries a short WiFi walk-out window (the §2
    scenario, scaled down); the scenario experiment schedules it
    relative to each client's *arrival*, so a population sees walk-outs
    spread across its whole timeline rather than synchronized at t=0.
    """
    base = youtube_profile()
    return base.with_(
        name="mobile",
        wifi=InterfaceProfile(
            kind="wifi",
            mean_mbps=5.0,
            sigma=0.35,
            rho=0.75,
            one_way_delay_s=25.0 * MS,
            jitter_std_s=6.0 * MS,
            markov_states=((1.2, 5.0), (0.5, 2.5)),
        ),
        lte=InterfaceProfile(
            kind="lte",
            mean_mbps=6.5,
            sigma=0.40,
            rho=0.85,
            one_way_delay_s=50.0 * MS,
            jitter_std_s=10.0 * MS,
            markov_states=((1.25, 6.0), (0.55, 3.0)),
        ),
        outages=(OutageEvent("wifi", 15.0, 30.0),),
    )


#: Most test modules import ``testbed_profile`` under its own name, and
#: pytest's default ``python_functions = test*`` pattern matches it —
#: so without this marker every importing module "grows" a bogus test
#: that returns a NetworkProfile (``PytestReturnNotNoneWarning``, an
#: error under the suite's ``filterwarnings = error``).
testbed_profile.__test__ = False  # type: ignore[attr-defined]


#: Registry used by benches, examples, and scenario client mixes.
#: ``campus`` aliases the §5 testbed — the name the mix classes use for
#: a well-provisioned access network.
PROFILES = {
    "testbed": testbed_profile,
    "campus": testbed_profile,
    "youtube": youtube_profile,
    "mobility": mobility_profile,
    "mobile": mobile_profile,
}
