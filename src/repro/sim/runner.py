"""Repeated-trial experiment execution.

The paper repeats each configuration 20 times with randomized ordering
over 12 hours (§5.2).  Ordering randomization exists to decorrelate
configurations from diurnal network drift; in simulation the analogue
is giving every (configuration, trial) pair an *independent* random
substream, which :class:`TrialRunner` does via
:class:`~repro.rng.RngFactory` seed derivation.  Each trial builds a
fresh :class:`~repro.sim.scenario.Scenario`, so trials are i.i.d. and
embarrassingly reproducible: ``(root_seed, config_label, trial_index)``
fully determines a result.

That independence is also what makes trials embarrassingly *parallel*:
the runner hands declarative :class:`~repro.sim.execution.TrialSpec`
batches to a pluggable :class:`~repro.sim.execution.ExecutionEngine`
(``jobs=1`` serial, ``jobs=N``/``"auto"`` a process pool), and the
engine guarantees outcomes come back in trial order — parallel results
are byte-identical to serial ones for the same root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..core.config import PlayerConfig
from ..rng import RngFactory
from .driver import SessionOutcome
from .execution import (
    DriverFactory,
    ExecutionEngine,
    MPTCPLikeSpec,
    MSPlayerSpec,
    ScenarioHook,
    SessionDriver,
    SinglePathSpec,
    TrialSpec,
    resolve_engine,
)
from .profiles import NetworkProfile
from .scenario import ScenarioConfig

__all__ = [
    "DriverFactory",
    "SessionDriver",
    "TrialResult",
    "TrialRunner",
]


@dataclass
class TrialResult:
    """One configuration's results across trials."""

    label: str
    outcomes: list[SessionOutcome] = field(default_factory=list)

    def startup_delays(self) -> list[float]:
        return [
            o.startup_delay for o in self.outcomes if o.startup_delay is not None
        ]

    def cycle_durations(self) -> list[float]:
        durations: list[float] = []
        for outcome in self.outcomes:
            durations.extend(outcome.metrics.completed_cycle_durations())
        return durations

    def traffic_fractions(self, path_id: int, phase: str) -> list[float]:
        return [o.metrics.traffic_fraction(path_id, phase) for o in self.outcomes]


class TrialRunner:
    """Runs driver factories over fresh scenarios with derived seeds."""

    def __init__(
        self,
        profile_factory: Callable[[], NetworkProfile],
        scenario_config: ScenarioConfig | None = None,
        root_seed: int = 20141202,  # CoNEXT'14 started Dec 2, 2014
        trials: int = 20,  # the paper's repetition count (§5.2)
        jobs: Union[int, str, None] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.profile_factory = profile_factory
        self.scenario_config = scenario_config or ScenarioConfig()
        self.root = RngFactory(root_seed)
        self.trials = trials
        self.engine = engine if engine is not None else resolve_engine(jobs)

    def seed_for(self, label: str, trial: int) -> int:
        return self.root.child(label).integer(f"trial-{trial}")

    def specs_for(
        self,
        label: str,
        make_driver: DriverFactory,
        scenario_hook: Optional[ScenarioHook] = None,
    ) -> list[TrialSpec]:
        """The trial batch ``run`` hands to the execution engine."""
        return [
            TrialSpec(
                label=label,
                trial=trial,
                seed=self.seed_for(label, trial),
                profile_factory=self.profile_factory,
                driver=make_driver,
                scenario_config=self.scenario_config,
                scenario_hook=scenario_hook,
            )
            for trial in range(self.trials)
        ]

    def run(
        self,
        label: str,
        make_driver: DriverFactory,
        scenario_hook: Optional[ScenarioHook] = None,
    ) -> TrialResult:
        """Execute ``trials`` independent runs of one configuration."""
        specs = self.specs_for(label, make_driver, scenario_hook)
        return TrialResult(label, self.engine.map(specs))

    # -- canned factories ---------------------------------------------------------

    def msplayer(
        self,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> MSPlayerSpec:
        return MSPlayerSpec(config=config, stop=stop, target_cycles=target_cycles)

    def singlepath(
        self,
        iface_index: int,
        chunk_bytes: int,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> SinglePathSpec:
        return SinglePathSpec(
            iface_index=iface_index,
            chunk_bytes=chunk_bytes,
            config=config,
            stop=stop,
            target_cycles=target_cycles,
        )

    def mptcp(
        self,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> MPTCPLikeSpec:
        return MPTCPLikeSpec(config=config, stop=stop, target_cycles=target_cycles)
