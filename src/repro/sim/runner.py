"""Repeated-trial experiment execution.

The paper repeats each configuration 20 times with randomized ordering
over 12 hours (§5.2).  Ordering randomization exists to decorrelate
configurations from diurnal network drift; in simulation the analogue
is giving every (configuration, trial) pair an *independent* random
substream, which :class:`TrialRunner` does via
:class:`~repro.rng.RngFactory` seed derivation.  Each trial builds a
fresh :class:`~repro.sim.scenario.Scenario`, so trials are i.i.d. and
embarrassingly reproducible: ``(root_seed, config_label, trial_index)``
fully determines a result.

That independence is also what makes trials embarrassingly *parallel*:
the runner hands declarative :class:`~repro.sim.execution.TrialSpec`
batches to a pluggable :class:`~repro.sim.execution.ExecutionEngine`
(``jobs=1`` serial, ``jobs=N``/``"auto"`` a process pool), and the
engine guarantees outcomes come back in trial order — parallel results
are byte-identical to serial ones for the same root seed.

``TrialRunner.run`` executes *one* configuration and blocks until its
trials finish.  Figure sweeps with several configurations should
register each configuration's ``specs_for`` batch with a
:class:`~repro.sim.campaign.Campaign` instead, which submits all of
them to the pool at once (no per-configuration barrier) and returns
the same per-label :class:`TrialResult` objects.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.config import PlayerConfig
from ..rng import RngFactory
from .campaign import OutcomeBatch, TrialResult
from .shm import collect_trials
from .execution import (
    DriverFactory,
    ExecutionEngine,
    MPTCPLikeSpec,
    MSPlayerSpec,
    ScenarioHook,
    SessionDriver,
    SinglePathSpec,
    TrialSpec,
    resolve_engine,
)
from .profiles import NetworkProfile
from .scenario import ScenarioConfig

__all__ = [
    "DriverFactory",
    "OutcomeBatch",
    "SessionDriver",
    "TrialResult",
    "TrialRunner",
]


class TrialRunner:
    """Runs driver factories over fresh scenarios with derived seeds."""

    def __init__(
        self,
        profile_factory: Callable[[], NetworkProfile],
        scenario_config: ScenarioConfig | None = None,
        root_seed: int = 20141202,  # CoNEXT'14 started Dec 2, 2014
        trials: int = 20,  # the paper's repetition count (§5.2)
        jobs: int | str | None = None,
        engine: ExecutionEngine | None = None,
    ) -> None:
        self.profile_factory = profile_factory
        self.scenario_config = scenario_config or ScenarioConfig()
        self.root = RngFactory(root_seed)
        self.trials = trials
        self._jobs = jobs
        self._engine = engine

    @property
    def engine(self) -> ExecutionEngine:
        """The execution backend, resolved on first use (``run`` needs
        it; plan builders that only call ``specs_for`` never do, so a
        stale ``REPRO_JOBS`` cannot break explicitly-backed runs)."""
        if self._engine is None:
            self._engine = resolve_engine(self._jobs)
        return self._engine

    @engine.setter
    def engine(self, engine: ExecutionEngine) -> None:
        self._engine = engine

    def seed_for(self, label: str, trial: int) -> int:
        return self.root.child(label).integer(f"trial-{trial}")

    def specs_for(
        self,
        label: str,
        make_driver: DriverFactory,
        scenario_hook: ScenarioHook | None = None,
    ) -> list[TrialSpec]:
        """The trial batch ``run`` hands to the execution engine."""
        return [
            TrialSpec(
                label=label,
                trial=trial,
                seed=self.seed_for(label, trial),
                profile_factory=self.profile_factory,
                driver=make_driver,
                scenario_config=self.scenario_config,
                scenario_hook=scenario_hook,
            )
            for trial in range(self.trials)
        ]

    def run(
        self,
        label: str,
        make_driver: DriverFactory,
        scenario_hook: ScenarioHook | None = None,
    ) -> TrialResult:
        """Execute ``trials`` independent runs of one configuration.

        Collected the same way a campaign is: when the engine's shm
        path returns columnar data, the batch is assembled straight
        from the arena columns and outcome objects stay lazy.
        """
        specs = self.specs_for(label, make_driver, scenario_hook)
        collection = collect_trials(self.engine, specs)
        if collection.columnar:
            return TrialResult(
                label,
                batch=OutcomeBatch.from_dense_and_sides(
                    collection.dense, collection.sides
                ),
                outcome_thunk=lambda: collection.outcomes,
            )
        return TrialResult(label, collection.outcomes)

    # -- canned factories ---------------------------------------------------------

    def msplayer(
        self,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> MSPlayerSpec:
        return MSPlayerSpec(config=config, stop=stop, target_cycles=target_cycles)

    def singlepath(
        self,
        iface_index: int,
        chunk_bytes: int,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> SinglePathSpec:
        return SinglePathSpec(
            iface_index=iface_index,
            chunk_bytes=chunk_bytes,
            config=config,
            stop=stop,
            target_cycles=target_cycles,
        )

    def mptcp(
        self,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> MPTCPLikeSpec:
        return MPTCPLikeSpec(config=config, stop=stop, target_cycles=target_cycles)
