"""Repeated-trial experiment execution.

The paper repeats each configuration 20 times with randomized ordering
over 12 hours (§5.2).  Ordering randomization exists to decorrelate
configurations from diurnal network drift; in simulation the analogue
is giving every (configuration, trial) pair an *independent* random
substream, which :class:`TrialRunner` does via
:class:`~repro.rng.RngFactory` seed derivation.  Each trial builds a
fresh :class:`~repro.sim.scenario.Scenario`, so trials are i.i.d. and
embarrassingly reproducible: ``(root_seed, config_label, trial_index)``
fully determines a result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.config import PlayerConfig
from ..rng import RngFactory
from .driver import MSPlayerDriver, SessionOutcome
from .profiles import NetworkProfile
from .scenario import Scenario, ScenarioConfig
from .singlepath import SinglePathDriver


@dataclass
class TrialResult:
    """One configuration's results across trials."""

    label: str
    outcomes: list[SessionOutcome] = field(default_factory=list)

    def startup_delays(self) -> list[float]:
        return [
            o.startup_delay for o in self.outcomes if o.startup_delay is not None
        ]

    def cycle_durations(self) -> list[float]:
        durations: list[float] = []
        for outcome in self.outcomes:
            durations.extend(outcome.metrics.completed_cycle_durations())
        return durations

    def traffic_fractions(self, path_id: int, phase: str) -> list[float]:
        return [o.metrics.traffic_fraction(path_id, phase) for o in self.outcomes]


#: A driver factory: scenario -> something with .run() -> SessionOutcome.
DriverFactory = Callable[[Scenario], object]


class TrialRunner:
    """Runs driver factories over fresh scenarios with derived seeds."""

    def __init__(
        self,
        profile_factory: Callable[[], NetworkProfile],
        scenario_config: ScenarioConfig | None = None,
        root_seed: int = 20141202,  # CoNEXT'14 started Dec 2, 2014
        trials: int = 20,  # the paper's repetition count (§5.2)
    ) -> None:
        self.profile_factory = profile_factory
        self.scenario_config = scenario_config or ScenarioConfig()
        self.root = RngFactory(root_seed)
        self.trials = trials

    def seed_for(self, label: str, trial: int) -> int:
        return self.root.child(label).integer(f"trial-{trial}")

    def run(self, label: str, make_driver: DriverFactory) -> TrialResult:
        """Execute ``trials`` independent runs of one configuration."""
        result = TrialResult(label)
        for trial in range(self.trials):
            scenario = Scenario(
                self.profile_factory(),
                seed=self.seed_for(label, trial),
                config=self.scenario_config,
            )
            driver = make_driver(scenario)
            result.outcomes.append(driver.run())  # type: ignore[attr-defined]
        return result

    # -- canned factories ---------------------------------------------------------

    def msplayer(
        self,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> DriverFactory:
        def factory(scenario: Scenario) -> MSPlayerDriver:
            return MSPlayerDriver(
                scenario, config=config, stop=stop, target_cycles=target_cycles
            )

        return factory

    def singlepath(
        self,
        iface_index: int,
        chunk_bytes: int,
        config: PlayerConfig,
        stop: str = "prebuffer",
        target_cycles: int = 3,
    ) -> DriverFactory:
        def factory(scenario: Scenario) -> SinglePathDriver:
            return SinglePathDriver(
                scenario,
                iface_index=iface_index,
                chunk_bytes=chunk_bytes,
                config=config,
                stop=stop,
                target_cycles=target_cycles,
            )

        return factory
