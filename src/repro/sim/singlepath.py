"""Single-path baseline player (the Figs. 2/4/5 comparators).

Emulates how the commercial YouTube players of 2014 behaved over one
interface, per the paper's description (§6) and [23]:

* **pre-buffering**: the specified amount of video is requested as
  *one large chunk* ("commercial players accumulate video data of a
  specified amount as one large chunk");
* **re-buffering**: periodic ON/OFF cycles issuing HTTP range requests
  of a *fixed* chunk size — 64 KB (Adobe Flash) or 256 KB (HTML5);
* a single path, a single video server, the same buffer thresholds as
  MSPlayer (the comparison isolates multi-source/multi-path + dynamic
  chunking).

The driver reuses the sans-IO :class:`~repro.core.buffer.PlayoutBuffer`
and :class:`~repro.core.metrics.QoEMetrics`, so the measured quantities
are identical in definition to MSPlayer's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cdn.deployment import PROXY_DNS_NAME
from ..cdn.jsonapi import VideoInfo, parse_video_info
from ..cdn.signature import decipher
from ..cdn.webproxy import parse_decoder_page
from ..core.buffer import BufferPhase, PlayoutBuffer
from ..core.config import PlayerConfig
from ..core.metrics import QoEMetrics
from ..errors import CDNError, HTTPError, NetworkError
from ..http.client import SimHTTPClient
from ..http.messages import Request
from ..http.ranges import ByteRange
from ..units import KB
from .driver import SessionOutcome
from .scenario import Scenario

#: Chunk sizes of the commercial comparators [23].
FLASH_CHUNK = 64 * KB
HTML5_CHUNK = 256 * KB


class SinglePathDriver:
    """One-interface, one-server, fixed-chunk player."""

    def __init__(
        self,
        scenario: Scenario,
        iface_index: int,
        chunk_bytes: int = HTML5_CHUNK,
        config: PlayerConfig | None = None,
        stop: str = "full",
        target_cycles: int = 3,
        max_sim_time: float = 1800.0,
    ) -> None:
        if stop not in ("prebuffer", "cycles", "full"):
            raise ValueError(f"unknown stop condition {stop!r}")
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.scenario = scenario
        self.iface = scenario.iface_for(iface_index)
        self.iface_index = iface_index
        self.chunk_bytes = chunk_bytes
        self.config = config or PlayerConfig()
        self.stop = stop
        self.target_cycles = target_cycles
        self.max_sim_time = max_sim_time
        self.metrics = QoEMetrics()
        self.buffer: PlayoutBuffer | None = None
        self._client = SimHTTPClient(scenario.env, scenario.network, self.iface)
        self._finish = scenario.env.event()
        self._stop_reason = "unknown"
        self._info: VideoInfo | None = None
        self._signature = ""
        self._server = ""
        self._total_bytes = 0
        self._bitrate = 0.0
        self._frontier = 0
        self._playback_announced = False

    # -- public -----------------------------------------------------------------

    def run(self) -> SessionOutcome:
        env = self.scenario.env
        self.metrics.session_started_at = env.now
        env.process(self._main())
        env.process(self._ticker())
        env.process(self._watchdog())
        env.run(until=self._finish)
        return SessionOutcome(
            metrics=self.metrics,
            finished_at=env.now,
            stop_reason=self._stop_reason,
            peak_out_of_order=0,
            server_bytes=self.scenario.deployment.total_bytes_served(),
            requests_by_path=dict(self.metrics.requests_by_path),
        )

    # -- the player loop ------------------------------------------------------------

    def _main(self):
        env = self.scenario.env
        try:
            yield from self._bootstrap()
            yield from self._prebuffer()
            while not self._finish.triggered and self._frontier < self._total_bytes:
                # OFF period: wait until the buffer opens an ON cycle.
                while not self._buffer().fetch_on:
                    if self._finish.triggered or self._buffer().playback_finished:
                        return
                    yield env.pooled_timeout(self.config.tick_s)
                yield from self._fetch_cycle()
                self._check_cycles_stop()
            if self.buffer is not None and self._frontier >= self._total_bytes:
                self.buffer.mark_download_complete(env.now)
        except (NetworkError, CDNError, HTTPError) as exc:
            # Single path, no failover: the baseline simply dies —
            # exactly the §2 robustness gap MSPlayer exists to close.
            self._finish_once(f"failed: {exc}")

    def _bootstrap(self):
        env = self.scenario.env
        addresses = yield env.process(
            self.scenario.resolver.resolve(PROXY_DNS_NAME, self.iface.network_id)
        )
        proxy = addresses[0]
        response, _ = yield env.process(
            self._client.get(
                proxy,
                Request.get(f"/videoinfo?v={self.scenario.video.video_id}", host=proxy),
                expect=(200,),
            )
        )
        info = parse_video_info(response.parsed_json())
        self._info = info
        stream = info.stream(self.config.itag)
        if stream.needs_decipher:
            page, _ = yield env.process(
                self._client.get(proxy, Request.get(info.decoder_path, host=proxy), expect=(200,))
            )
            self._signature = decipher(
                stream.enciphered_signature, parse_decoder_page(page.body)
            )
        else:
            self._signature = stream.signature
        self._server = stream.hosts[0]
        self._total_bytes = stream.size_bytes
        self._bitrate = stream.size_bytes / info.duration_s
        self.buffer = PlayoutBuffer(self.config, info.duration_s)
        self.buffer.phase_entered_at = env.now
        yield env.process(self._client.connect(self._server))

    def _prebuffer(self):
        """One large range covering the pre-buffer amount (§6)."""
        amount = min(
            int(self.config.prebuffer_s * self._bitrate), self._total_bytes
        )
        yield from self._fetch_range(ByteRange(0, amount), prebuffering=True)

    def _fetch_cycle(self):
        """One ON cycle of fixed-size chunks (re-buffering phase)."""
        buffer = self._buffer()
        while buffer.fetch_on and self._frontier < self._total_bytes:
            stop = min(self._frontier + self.chunk_bytes, self._total_bytes)
            yield from self._fetch_range(ByteRange(self._frontier, stop), prebuffering=False)
        if self._frontier >= self._total_bytes:
            buffer.mark_download_complete(self.scenario.env.now)

    def _fetch_range(self, byte_range: ByteRange, prebuffering: bool):
        env = self.scenario.env
        assert self._info is not None
        target = self._info.playback_target(self.config.itag, self._signature)
        request = Request.get(target, host=self._server, byte_range=byte_range)
        _response, timing = yield env.process(
            self._client.get(self._server, request, expect=(206,))
        )
        self._frontier = byte_range.stop
        self.metrics.record_chunk(
            self.iface_index, byte_range.length, prebuffering, duration=timing.duration
        )
        buffer = self._buffer()
        previous = buffer.phase
        before_level = buffer.level_s
        before_cycle = buffer.cycle_fetched_s
        advanced_s = byte_range.length / self._bitrate
        buffer.on_data(advanced_s, env.now)
        # Credit threshold crossings at the in-transfer instant the
        # crossing bytes arrived (same interpolation as PlayerSession).
        credit = env.now
        if previous is BufferPhase.PREBUFFERING:
            needed = self.config.prebuffer_s - before_level
        elif previous in (BufferPhase.REBUFFERING, BufferPhase.STALLED):
            needed = self.config.rebuffer_fetch_s - before_cycle
        else:
            needed = -1.0
        if 0 < needed < advanced_s and timing.first_byte_at < env.now:
            fraction = needed / advanced_s
            credit = timing.first_byte_at + fraction * (env.now - timing.first_byte_at)
        self._note_transitions(previous, credit)

    # -- buffer bookkeeping -------------------------------------------------------------

    def _ticker(self):
        env = self.scenario.env
        tick = self.config.tick_s
        while not self._finish.triggered:
            yield env.pooled_timeout(tick)
            if self.buffer is None:
                continue
            previous = self.buffer.phase
            self.buffer.on_tick(tick, env.now)
            self._note_transitions(previous, env.now)
            if self.buffer.playback_finished:
                if self.metrics.playback_finished_at is None:
                    self.metrics.playback_finished_at = env.now
                self._finish_once("playback-finished")

    def _note_transitions(self, previous: BufferPhase, now: float) -> None:
        buffer = self._buffer()
        current = buffer.phase
        if current is previous:
            return
        if previous is BufferPhase.PREBUFFERING and not self._playback_announced:
            self._playback_announced = True
            self.metrics.prebuffer_completed_at = now
            self.metrics.playback_started_at = now
            if self.stop == "prebuffer":
                self._finish_once("prebuffer-complete")
        if current is BufferPhase.REBUFFERING and previous is BufferPhase.STEADY:
            self.metrics.begin_rebuffer_cycle(now, buffer.level_s)
        if previous in (BufferPhase.REBUFFERING, BufferPhase.STALLED) and current in (
            BufferPhase.STEADY,
            BufferPhase.FINISHED,
        ):
            self.metrics.end_rebuffer_cycle(now)
        if current is BufferPhase.STALLED:
            self.metrics.begin_stall(now)
        if previous is BufferPhase.STALLED:
            self.metrics.end_stall(now)
        self._check_cycles_stop()

    def _check_cycles_stop(self) -> None:
        if (
            self.stop == "cycles"
            and len(self.metrics.completed_cycle_durations()) >= self.target_cycles
        ):
            self._finish_once("cycles-complete")

    def _watchdog(self):
        yield self.scenario.env.pooled_timeout(self.max_sim_time)
        self._finish_once("timeout")

    def _finish_once(self, reason: str) -> None:
        if not self._finish.triggered:
            self._stop_reason = reason
            self._finish.succeed(reason)

    def _buffer(self) -> PlayoutBuffer:
        if self.buffer is None:
            raise CDNError("buffer not initialised (bootstrap incomplete)")
        return self.buffer


if TYPE_CHECKING:  # pragma: no cover - static conformance declaration

    def _declares_session_driver(driver: SinglePathDriver) -> "SessionDriver":
        return driver

    from .execution import SessionDriver
