"""Campaign-level trial scheduling and columnar outcome aggregation.

PR-1 parallelized *within* one configuration: ``TrialRunner.run`` hands
its 20 specs to the engine and blocks until all of them return before
the sweep moves to the next configuration.  That barrier is artificial
— the paper's seed derivation (``root_seed, label, trial``) makes every
trial of every configuration independent — so a figure sweep can feed
the pool *all* of its specs at once and let the scheduler keep every
worker busy across configuration boundaries.  :class:`Campaign` does
exactly that:

* configurations register their spec batches with :meth:`Campaign.add`
  (order of registration is the configuration order of the figure);
* :meth:`Campaign.run` interleaves the batches round-robin into one
  ``engine.map`` submission — trial *i* of every configuration before
  trial *i+1* of any, so heterogeneous trial durations spread evenly
  over the pool's chunks — and demultiplexes the outcomes back into one
  :class:`TrialResult` per label, in per-label trial order.

Determinism: every trial builds its whole world from its own derived
seed, so execution order is irrelevant to the outcomes and the
campaign's per-label results are byte-identical to the per-configuration
``TrialRunner.run`` path for the same root seed (asserted in
``tests/test_sim_campaign.py`` for fig3 and table1, serial and auto).

Aggregation: outcomes land in a columnar :class:`OutcomeBatch` — numpy
arrays for start-up delays, completed cycle durations (CSR layout), and
per-path/per-phase traffic bytes — so the analysis layer computes
statistics with O(1) vectorized passes per campaign instead of Python
loops per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import partial
from collections.abc import Callable, Collection, Sequence

import numpy as np

from ..errors import ConfigError
from .driver import SessionOutcome
from .execution import ExecutionEngine, TrialSpec, resolve_engine
from .shm import SideRecord, collect_trials, rebuild_outcomes

__all__ = [
    "Campaign",
    "OutcomeBatch",
    "TrialResult",
    "dense_field_mismatches",
    "interleave",
    "run_together",
]


def dense_field_mismatches(a, b) -> list[str]:
    """Names of ndarray dataclass fields not bit-identical between two
    batches of the same kind.

    The determinism predicate every collection-path test asserts on: a
    column counts as mismatched if its dtype differs or any element's
    bits do (NaN == NaN — never-started sessions must not read as
    nondeterminism).  Enumerated from the dataclass fields so a future
    column cannot silently escape; shared by ``OutcomeBatch`` and
    ``repro.ext.population.PopulationBatch``.
    """
    mismatched = []
    for batch_field in fields(a):
        mine, theirs = getattr(a, batch_field.name), getattr(b, batch_field.name)
        if mine.dtype != theirs.dtype or not np.array_equal(
            mine, theirs, equal_nan=mine.dtype.kind == "f"
        ):
            mismatched.append(batch_field.name)
    return mismatched


# ---------------------------------------------------------------------------
# Columnar outcome storage
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class OutcomeBatch:
    """One configuration's outcomes, transposed into columns.

    ``eq=False``: the dataclass-generated ``__eq__`` would compare
    ndarray fields elementwise and raise on ``bool()``; identity
    comparison is the useful semantic for a derived cache anyway.

    Scalar-per-trial metrics are dense ``(n,)`` arrays; the ragged
    per-trial cycle lists are stored flat with CSR-style offsets
    (trial ``i`` owns ``cycle_durations[cycle_offsets[i]:cycle_offsets[i+1]]``);
    per-path byte counters are dense ``(n, P)`` matrices with ``P`` the
    highest path id seen plus one.
    """

    #: (n,) start-up delay in seconds; NaN where playback never started.
    startup: np.ndarray
    #: (n,) simulated finish time of each trial.
    finished_at: np.ndarray
    #: (n,) summed completed-stall seconds.
    total_stall: np.ndarray
    #: (n,) failover count.
    failovers: np.ndarray
    #: flat completed re-buffering cycle durations, trial-major.
    cycle_durations: np.ndarray
    #: (n+1,) CSR offsets into ``cycle_durations``.
    cycle_offsets: np.ndarray
    #: (n, P) video bytes per path, pre-buffering phase.
    prebuffer_bytes: np.ndarray
    #: (n, P) video bytes per path, after pre-buffering.
    rebuffer_bytes: np.ndarray
    #: (n,) stop reason strings (numpy unicode array).
    stop_reasons: np.ndarray

    @staticmethod
    def _byte_matrices(
        n: int, byte_dicts: Sequence[tuple[dict, dict]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sparse per-trial ``(pre, re)`` byte dicts → dense ``(n, P)``
        matrices, via COO triples and one fancy-index assignment each.

        Shared by both constructors so batches assembled from side
        records are built by the very code that builds them from
        outcome objects.
        """
        pre_rows: list[int] = []
        pre_cols: list[int] = []
        pre_vals: list[int] = []
        re_rows: list[int] = []
        re_cols: list[int] = []
        re_vals: list[int] = []
        for i, (pre, re) in enumerate(byte_dicts):
            for path_id, count in pre.items():
                pre_rows.append(i)
                pre_cols.append(path_id)
                pre_vals.append(count)
            for path_id, count in re.items():
                re_rows.append(i)
                re_cols.append(path_id)
                re_vals.append(count)
        paths = max(max(pre_cols, default=-1), max(re_cols, default=-1)) + 1
        prebuffer_bytes = np.zeros((n, paths), dtype=np.int64)
        rebuffer_bytes = np.zeros((n, paths), dtype=np.int64)
        if pre_rows:
            prebuffer_bytes[pre_rows, pre_cols] = pre_vals
        if re_rows:
            rebuffer_bytes[re_rows, re_cols] = re_vals
        return prebuffer_bytes, rebuffer_bytes

    @classmethod
    def from_outcomes(cls, outcomes: Sequence[SessionOutcome]) -> "OutcomeBatch":
        """One pass over the outcome objects; everything after is columnar.

        The pass appends to plain Python lists (amortized-O(1), much
        cheaper than per-element numpy stores) and converts to arrays
        once at the end; the sparse per-path byte dicts land in the
        dense matrices via a single fancy-index assignment each.
        """
        n = len(outcomes)
        startup: list[float] = []
        finished_at: list[float] = []
        total_stall: list[float] = []
        failovers: list[int] = []
        cycles: list[float] = []
        cycle_offsets: list[int] = [0]
        stop_reasons: list[str] = []
        byte_dicts: list[tuple[dict, dict]] = []
        for outcome in outcomes:
            metrics = outcome.metrics
            delay = outcome.startup_delay
            startup.append(np.nan if delay is None else delay)
            finished_at.append(outcome.finished_at)
            total_stall.append(metrics.total_stall_time)
            failovers.append(metrics.failovers)
            cycles.extend(metrics.completed_cycle_durations())
            cycle_offsets.append(len(cycles))
            stop_reasons.append(outcome.stop_reason)
            byte_dicts.append(
                (metrics.prebuffer_bytes_by_path, metrics.rebuffer_bytes_by_path)
            )
        prebuffer_bytes, rebuffer_bytes = cls._byte_matrices(n, byte_dicts)
        return cls(
            startup=np.asarray(startup, dtype=float),
            finished_at=np.asarray(finished_at, dtype=float),
            total_stall=np.asarray(total_stall, dtype=float),
            failovers=np.asarray(failovers, dtype=np.int64),
            cycle_durations=np.asarray(cycles, dtype=float),
            cycle_offsets=np.asarray(cycle_offsets, dtype=np.int64),
            prebuffer_bytes=prebuffer_bytes,
            rebuffer_bytes=rebuffer_bytes,
            stop_reasons=np.asarray(stop_reasons, dtype=str),
        )

    @classmethod
    def from_dense_and_sides(
        cls, dense: dict[str, np.ndarray], sides: Sequence[SideRecord]
    ) -> "OutcomeBatch":
        """Assemble a batch from arena columns plus side records.

        The shm collection path: ``dense`` holds the scalar columns the
        workers wrote in place (already float64/int64 arrays — adopted
        as-is, zero deserialization and zero copies), ``sides`` the
        ragged/string remainder.  Byte-identical to ``from_outcomes``
        over the rebuilt outcome objects: the CSR cycle layout performs
        the same ``ended - started`` subtractions, and the byte
        matrices come from the shared ``_byte_matrices`` assembly.
        """
        n = len(sides)
        cycles: list[float] = []
        cycle_offsets: list[int] = [0]
        stop_reasons: list[str] = []
        byte_dicts: list[tuple[dict, dict]] = []
        for side in sides:
            cycles.extend(side.completed_cycle_durations())
            cycle_offsets.append(len(cycles))
            stop_reasons.append(side.stop_reason)
            byte_dicts.append(
                (side.prebuffer_bytes_by_path, side.rebuffer_bytes_by_path)
            )
        prebuffer_bytes, rebuffer_bytes = cls._byte_matrices(n, byte_dicts)
        return cls(
            startup=np.asarray(dense["startup"], dtype=float),
            finished_at=np.asarray(dense["finished_at"], dtype=float),
            total_stall=np.asarray(dense["total_stall"], dtype=float),
            failovers=np.asarray(dense["failovers"], dtype=np.int64),
            cycle_durations=np.asarray(cycles, dtype=float),
            cycle_offsets=np.asarray(cycle_offsets, dtype=np.int64),
            prebuffer_bytes=prebuffer_bytes,
            rebuffer_bytes=rebuffer_bytes,
            stop_reasons=np.asarray(stop_reasons, dtype=str),
        )

    def __len__(self) -> int:
        return len(self.startup)

    def column_mismatches(self, other: "OutcomeBatch") -> list[str]:
        """Names of columns that are not bit-identical to ``other``'s.

        The determinism predicate the test wall and ``bench_perf_core``
        assert on; see :func:`dense_field_mismatches` for the
        comparison semantics.
        """
        return dense_field_mismatches(self, other)

    # -- vectorized views ---------------------------------------------------

    def startup_delays(self) -> np.ndarray:
        """Defined start-up delays, trial order (Figs. 2–4)."""
        return self.startup[~np.isnan(self.startup)]

    def phase_bytes(self, phase: str) -> np.ndarray:
        """The ``(n, P)`` byte matrix for one phase, or their sum."""
        if phase == "prebuffer":
            return self.prebuffer_bytes
        if phase == "rebuffer":
            return self.rebuffer_bytes
        if phase == "all":
            return self.prebuffer_bytes + self.rebuffer_bytes
        raise ConfigError(f"unknown phase {phase!r}")

    def traffic_fractions(self, path_id: int, phase: str) -> np.ndarray:
        """Per-trial share of video bytes carried by ``path_id`` (Table 1).

        Matches ``QoEMetrics.traffic_fraction`` per row: trials that
        moved no bytes in the phase report 0.0, and a path id beyond
        anything observed reports 0.0 everywhere.
        """
        counts = self.phase_bytes(phase)
        totals = counts.sum(axis=1)
        # Bounds-checked on both sides: a negative path_id must report
        # 0.0 like the dict accessor, not numpy-wrap to the last column.
        share = (
            counts[:, path_id]
            if 0 <= path_id < counts.shape[1]
            else np.zeros(len(self))
        )
        return np.divide(
            share, totals, out=np.zeros(len(self)), where=totals > 0
        )


# ---------------------------------------------------------------------------
# Per-configuration results (accessors ride on the columnar batch)
# ---------------------------------------------------------------------------


class TrialResult:
    """One configuration's results across trials.

    Holds either materialized ``SessionOutcome`` objects (the serial
    and pickle collection paths) or — on the shm path — a pre-assembled
    columnar batch plus a thunk that rebuilds the outcome objects only
    if something actually walks them (EXP-X2's per-server accounting
    does; the figure pipelines never do).
    """

    def __init__(
        self,
        label: str,
        outcomes: list[SessionOutcome] | None = None,
        batch: OutcomeBatch | None = None,
        outcome_thunk: Callable[[], list[SessionOutcome]] | None = None,
    ) -> None:
        if batch is not None and outcomes is None and outcome_thunk is None:
            # A batch-only result would serve .outcomes == [] next to a
            # non-empty batch — silently inconsistent.  Fail loudly.
            raise ConfigError(
                "a TrialResult built from a batch needs an outcome source "
                "(outcomes or outcome_thunk)"
            )
        self.label = label
        self._outcomes = outcomes if outcomes is not None else (
            None if outcome_thunk is not None else []
        )
        self._batch = batch
        self._thunk = outcome_thunk

    @property
    def outcomes(self) -> list[SessionOutcome]:
        """The outcome objects, materialized on first access."""
        if self._outcomes is None:
            self._outcomes = self._thunk()
        return self._outcomes

    def __eq__(self, other: object) -> bool:
        # Value equality over (label, outcomes), matching the dataclass
        # this class replaced (_batch was compare=False there too).
        # Comparing a lazy result materializes its outcomes.
        if not isinstance(other, TrialResult):
            return NotImplemented
        return self.label == other.label and self.outcomes == other.outcomes

    @property
    def batch(self) -> OutcomeBatch:
        """The columnar view, built once per result on first use.

        A pre-assembled batch (shm path) is served as-is unless the
        materialized outcome list was mutated afterwards, in which case
        it is rebuilt to match — same invalidation the transposed path
        has always had.
        """
        if self._batch is not None and (
            self._outcomes is None or len(self._batch) == len(self._outcomes)
        ):
            return self._batch
        self._batch = OutcomeBatch.from_outcomes(self.outcomes)
        return self._batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._outcomes is not None:
            n = str(len(self._outcomes))
        elif self._batch is not None:
            n = str(len(self._batch))
        else:
            n = "lazy"  # thunk-only: don't materialize just for repr
        return f"TrialResult(label={self.label!r}, trials={n})"

    def startup_delays(self) -> list[float]:
        return self.batch.startup_delays().tolist()

    def cycle_durations(self) -> list[float]:
        return self.batch.cycle_durations.tolist()

    def traffic_fractions(self, path_id: int, phase: str) -> list[float]:
        return self.batch.traffic_fractions(path_id, phase).tolist()


# ---------------------------------------------------------------------------
# The campaign scheduler
# ---------------------------------------------------------------------------


def interleave(batches: Sequence[Sequence[TrialSpec]]) -> list[TrialSpec]:
    """Round-robin merge: trial i of every batch before trial i+1 of any.

    Keeps per-batch order (so demultiplexed results stay in trial
    order) while spreading each configuration's trials across the
    submission — chunked pool dispatch then hands every worker a mix of
    configurations instead of a run of identical ones.
    """
    merged: list[TrialSpec] = []
    for rank in range(max((len(b) for b in batches), default=0)):
        for batch in batches:
            if rank < len(batch):
                merged.append(batch[rank])
    return merged


class Campaign:
    """All configurations of a figure sweep, one pool submission.

    Usage::

        campaign = Campaign(jobs="auto")
        for label, driver in configurations:
            campaign.add(runner.specs_for(label, driver))
        results = campaign.run()      # {label: TrialResult}

    ``add`` accepts any spec batch (different runners, scenario
    configs, or profiles per configuration are fine); labels must be
    unique because they key the demultiplexed results.
    """

    def __init__(
        self,
        jobs: int | str | ExecutionEngine | None = None,
        engine: ExecutionEngine | None = None,
    ) -> None:
        self._jobs = jobs
        self._engine = engine
        self._batches: list[list[TrialSpec]] = []
        self._labels: list[str] = []

    @property
    def engine(self) -> ExecutionEngine:
        """The execution backend, resolved on first use.

        Lazy on purpose: experiment plan builders construct unrun
        campaigns (``Study`` supplies the engine at run time), and an
        eagerly resolved engine would consult ``REPRO_JOBS`` — letting
        a broken environment value poison runs whose backend was
        chosen explicitly.
        """
        if self._engine is None:
            self._engine = resolve_engine(self._jobs)
        return self._engine

    @engine.setter
    def engine(self, engine: ExecutionEngine) -> None:
        self._engine = engine

    def add(self, specs: Sequence[TrialSpec]) -> str:
        """Register one configuration's trial batch; returns its label."""
        specs = list(specs)
        if not specs:
            raise ConfigError("cannot add an empty trial batch to a campaign")
        labels = {spec.label for spec in specs}
        if len(labels) != 1:
            raise ConfigError(
                f"a campaign batch must share one label, got {sorted(labels)}"
            )
        label = specs[0].label
        if label in self._labels:
            raise ConfigError(f"duplicate campaign label {label!r}")
        self._labels.append(label)
        self._batches.append(specs)
        return label

    def add_run(self, runner, label: str, make_driver, scenario_hook=None) -> str:
        """Convenience: ``add(runner.specs_for(label, make_driver, hook))``."""
        return self.add(runner.specs_for(label, make_driver, scenario_hook))

    @property
    def labels(self) -> list[str]:
        return list(self._labels)

    def __len__(self) -> int:
        return sum(len(batch) for batch in self._batches)

    def run(self, engine: ExecutionEngine | None = None) -> dict[str, TrialResult]:
        """Execute every registered trial as one submission and demux.

        The engine returns results in submission order, so slicing them
        back out by each spec's position reconstructs per-label results
        in trial order — identical to running the configurations one at
        a time.  When the engine collected columnar (the shm path),
        each label's ``OutcomeBatch`` is assembled directly from the
        arena's dense columns — no outcome objects, no deserialization
        of the dense data — and the objects themselves stay lazy.

        ``engine`` overrides the campaign's own backend for this call
        without resolving or mutating it — the service worker runs
        leased cells through here with its local engine, and the
        campaign must stay oblivious to ``REPRO_JOBS`` when told what
        to use.
        """
        return run_together([self], engine if engine is not None else self.engine)[0]

    # -- demux hooks (overridden by other campaign kinds) -------------------

    def _result_from_outcomes(self, label: str, outcomes: list) -> TrialResult:
        """Wrap one label's materialized results (serial/pickle paths)."""
        return TrialResult(label, outcomes)

    def _result_from_columnar(
        self, label: str, dense: dict[str, np.ndarray], sides: list
    ) -> TrialResult:
        """Wrap one label's columnar slice (shm path): batch assembled
        from the dense arena columns, result objects lazy."""
        return TrialResult(
            label,
            batch=OutcomeBatch.from_dense_and_sides(dense, sides),
            outcome_thunk=partial(rebuild_outcomes, dense, sides),
        )


def run_together(
    campaigns: Sequence[Campaign], engine=None, *, skip: Collection[int] = ()
) -> list[dict[str, TrialResult] | None]:
    """Run several same-kind campaigns as ONE engine submission.

    The merged-submission primitive under both :meth:`Campaign.run`
    (one campaign) and ``Study.grid`` (one campaign per grid cell): all
    campaigns' batches are round-robin interleaved — trial *i* of every
    batch before trial *i+1* of any — submitted once, and demultiplexed
    back per (campaign, label) by submission position.  Every spec
    carries its own derived seed, so each campaign's results are
    byte-identical to running it alone; what merging buys is pool
    utilization — no barrier between cells, every worker busy across
    cell boundaries.

    ``skip`` is the cache-aware partial-submission path: indices of
    campaigns whose results are already known (e.g. grid cells rebuilt
    from a :class:`~repro.study.cache.StudyCache`).  Skipped campaigns
    contribute nothing to the pool submission — a fully-skipped call
    never touches the engine at all — and their slots in the returned
    list are ``None``; the others are demultiplexed back per
    (campaign, label) in label order exactly as before, at their
    original positions.

    All campaigns must be the same class (their demux hooks decide the
    result kind) and their specs must share one dense column layout,
    which same-kind campaigns do by construction.  ``engine`` defaults
    to the first campaign's.
    """
    if not campaigns:
        return []
    kinds = {type(campaign) for campaign in campaigns}
    if len(kinds) != 1:
        names = sorted(kind.__name__ for kind in kinds)
        raise ConfigError(
            f"run_together needs same-kind campaigns, got {', '.join(names)}"
        )
    skipped = set(skip)
    unknown = skipped - set(range(len(campaigns)))
    if unknown:
        raise ConfigError(
            f"run_together skip indices {sorted(unknown)} out of range for "
            f"{len(campaigns)} campaign(s)"
        )
    batches: list[list] = []
    owners: list[int] = []
    for index, campaign in enumerate(campaigns):
        if index in skipped:
            continue
        for batch in campaign._batches:
            batches.append(batch)
            owners.append(index)
    merged: list = []
    merged_owner: list[int] = []
    for rank in range(max((len(batch) for batch in batches), default=0)):
        for batch, owner in zip(batches, owners, strict=True):
            if rank < len(batch):
                merged.append(batch[rank])
                merged_owner.append(owner)
    if merged:
        if engine is None:
            engine = campaigns[0].engine
        collection = collect_trials(engine, merged)
    else:
        # Everything was skipped (or the campaigns were empty): no
        # submission, no engine resolution — a fully-cached rerun must
        # cost zero work units and must not even consult REPRO_JOBS.
        collection = None
    rows_by_key: dict[tuple[int, str], list[int]] = {}
    for position, (spec, owner) in enumerate(zip(merged, merged_owner, strict=True)):
        rows_by_key.setdefault((owner, spec.label), []).append(position)
    results: list[dict[str, TrialResult] | None] = []
    for index, campaign in enumerate(campaigns):
        if index in skipped:
            results.append(None)
            continue
        per_label: dict[str, TrialResult] = {}
        # ``collection`` exists whenever any label does: labels imply
        # non-empty batches, which imply a non-empty submission.
        for label in campaign._labels:
            rows = rows_by_key[(index, label)]
            if collection.columnar:
                dense = {
                    name: column[rows] for name, column in collection.dense.items()
                }
                sides = [collection.sides[i] for i in rows]
                per_label[label] = campaign._result_from_columnar(label, dense, sides)
            else:
                per_label[label] = campaign._result_from_outcomes(
                    label, [collection.outcomes[i] for i in rows]
                )
        results.append(per_label)
    return results
