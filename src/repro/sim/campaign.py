"""Campaign-level trial scheduling and columnar outcome aggregation.

PR-1 parallelized *within* one configuration: ``TrialRunner.run`` hands
its 20 specs to the engine and blocks until all of them return before
the sweep moves to the next configuration.  That barrier is artificial
— the paper's seed derivation (``root_seed, label, trial``) makes every
trial of every configuration independent — so a figure sweep can feed
the pool *all* of its specs at once and let the scheduler keep every
worker busy across configuration boundaries.  :class:`Campaign` does
exactly that:

* configurations register their spec batches with :meth:`Campaign.add`
  (order of registration is the configuration order of the figure);
* :meth:`Campaign.run` interleaves the batches round-robin into one
  ``engine.map`` submission — trial *i* of every configuration before
  trial *i+1* of any, so heterogeneous trial durations spread evenly
  over the pool's chunks — and demultiplexes the outcomes back into one
  :class:`TrialResult` per label, in per-label trial order.

Determinism: every trial builds its whole world from its own derived
seed, so execution order is irrelevant to the outcomes and the
campaign's per-label results are byte-identical to the per-configuration
``TrialRunner.run`` path for the same root seed (asserted in
``tests/test_sim_campaign.py`` for fig3 and table1, serial and auto).

Aggregation: outcomes land in a columnar :class:`OutcomeBatch` — numpy
arrays for start-up delays, completed cycle durations (CSR layout), and
per-path/per-phase traffic bytes — so the analysis layer computes
statistics with O(1) vectorized passes per campaign instead of Python
loops per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import ConfigError
from .driver import SessionOutcome
from .execution import ExecutionEngine, TrialSpec, resolve_engine

__all__ = ["Campaign", "OutcomeBatch", "TrialResult", "interleave"]


# ---------------------------------------------------------------------------
# Columnar outcome storage
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class OutcomeBatch:
    """One configuration's outcomes, transposed into columns.

    ``eq=False``: the dataclass-generated ``__eq__`` would compare
    ndarray fields elementwise and raise on ``bool()``; identity
    comparison is the useful semantic for a derived cache anyway.

    Scalar-per-trial metrics are dense ``(n,)`` arrays; the ragged
    per-trial cycle lists are stored flat with CSR-style offsets
    (trial ``i`` owns ``cycle_durations[cycle_offsets[i]:cycle_offsets[i+1]]``);
    per-path byte counters are dense ``(n, P)`` matrices with ``P`` the
    highest path id seen plus one.
    """

    #: (n,) start-up delay in seconds; NaN where playback never started.
    startup: np.ndarray
    #: (n,) simulated finish time of each trial.
    finished_at: np.ndarray
    #: (n,) summed completed-stall seconds.
    total_stall: np.ndarray
    #: (n,) failover count.
    failovers: np.ndarray
    #: flat completed re-buffering cycle durations, trial-major.
    cycle_durations: np.ndarray
    #: (n+1,) CSR offsets into ``cycle_durations``.
    cycle_offsets: np.ndarray
    #: (n, P) video bytes per path, pre-buffering phase.
    prebuffer_bytes: np.ndarray
    #: (n, P) video bytes per path, after pre-buffering.
    rebuffer_bytes: np.ndarray
    #: (n,) stop reason strings (numpy unicode array).
    stop_reasons: np.ndarray

    @classmethod
    def from_outcomes(cls, outcomes: Sequence[SessionOutcome]) -> "OutcomeBatch":
        """One pass over the outcome objects; everything after is columnar.

        The pass appends to plain Python lists (amortized-O(1), much
        cheaper than per-element numpy stores) and converts to arrays
        once at the end; the sparse per-path byte dicts land in the
        dense matrices via a single fancy-index assignment each.
        """
        n = len(outcomes)
        startup: list[float] = []
        finished_at: list[float] = []
        total_stall: list[float] = []
        failovers: list[int] = []
        cycles: list[float] = []
        cycle_offsets: list[int] = [0]
        stop_reasons: list[str] = []
        # COO triples for the (trial, path) -> bytes matrices.
        pre_rows: list[int] = []
        pre_cols: list[int] = []
        pre_vals: list[int] = []
        re_rows: list[int] = []
        re_cols: list[int] = []
        re_vals: list[int] = []
        for i, outcome in enumerate(outcomes):
            metrics = outcome.metrics
            delay = outcome.startup_delay
            startup.append(np.nan if delay is None else delay)
            finished_at.append(outcome.finished_at)
            total_stall.append(metrics.total_stall_time)
            failovers.append(metrics.failovers)
            cycles.extend(metrics.completed_cycle_durations())
            cycle_offsets.append(len(cycles))
            stop_reasons.append(outcome.stop_reason)
            for path_id, count in metrics.prebuffer_bytes_by_path.items():
                pre_rows.append(i)
                pre_cols.append(path_id)
                pre_vals.append(count)
            for path_id, count in metrics.rebuffer_bytes_by_path.items():
                re_rows.append(i)
                re_cols.append(path_id)
                re_vals.append(count)
        paths = max(max(pre_cols, default=-1), max(re_cols, default=-1)) + 1
        prebuffer_bytes = np.zeros((n, paths), dtype=np.int64)
        rebuffer_bytes = np.zeros((n, paths), dtype=np.int64)
        if pre_rows:
            prebuffer_bytes[pre_rows, pre_cols] = pre_vals
        if re_rows:
            rebuffer_bytes[re_rows, re_cols] = re_vals
        return cls(
            startup=np.asarray(startup, dtype=float),
            finished_at=np.asarray(finished_at, dtype=float),
            total_stall=np.asarray(total_stall, dtype=float),
            failovers=np.asarray(failovers, dtype=np.int64),
            cycle_durations=np.asarray(cycles, dtype=float),
            cycle_offsets=np.asarray(cycle_offsets, dtype=np.int64),
            prebuffer_bytes=prebuffer_bytes,
            rebuffer_bytes=rebuffer_bytes,
            stop_reasons=np.asarray(stop_reasons, dtype=str),
        )

    def __len__(self) -> int:
        return len(self.startup)

    # -- vectorized views ---------------------------------------------------

    def startup_delays(self) -> np.ndarray:
        """Defined start-up delays, trial order (Figs. 2–4)."""
        return self.startup[~np.isnan(self.startup)]

    def phase_bytes(self, phase: str) -> np.ndarray:
        """The ``(n, P)`` byte matrix for one phase, or their sum."""
        if phase == "prebuffer":
            return self.prebuffer_bytes
        if phase == "rebuffer":
            return self.rebuffer_bytes
        if phase == "all":
            return self.prebuffer_bytes + self.rebuffer_bytes
        raise ConfigError(f"unknown phase {phase!r}")

    def traffic_fractions(self, path_id: int, phase: str) -> np.ndarray:
        """Per-trial share of video bytes carried by ``path_id`` (Table 1).

        Matches ``QoEMetrics.traffic_fraction`` per row: trials that
        moved no bytes in the phase report 0.0, and a path id beyond
        anything observed reports 0.0 everywhere.
        """
        counts = self.phase_bytes(phase)
        totals = counts.sum(axis=1)
        # Bounds-checked on both sides: a negative path_id must report
        # 0.0 like the dict accessor, not numpy-wrap to the last column.
        share = (
            counts[:, path_id]
            if 0 <= path_id < counts.shape[1]
            else np.zeros(len(self))
        )
        return np.divide(
            share, totals, out=np.zeros(len(self)), where=totals > 0
        )


# ---------------------------------------------------------------------------
# Per-configuration results (accessors ride on the columnar batch)
# ---------------------------------------------------------------------------


@dataclass
class TrialResult:
    """One configuration's results across trials."""

    label: str
    outcomes: list[SessionOutcome] = field(default_factory=list)
    _batch: Optional[OutcomeBatch] = field(
        default=None, repr=False, compare=False
    )

    @property
    def batch(self) -> OutcomeBatch:
        """The columnar view, built once per result on first use."""
        if self._batch is None or len(self._batch) != len(self.outcomes):
            self._batch = OutcomeBatch.from_outcomes(self.outcomes)
        return self._batch

    def startup_delays(self) -> list[float]:
        return self.batch.startup_delays().tolist()

    def cycle_durations(self) -> list[float]:
        return self.batch.cycle_durations.tolist()

    def traffic_fractions(self, path_id: int, phase: str) -> list[float]:
        return self.batch.traffic_fractions(path_id, phase).tolist()


# ---------------------------------------------------------------------------
# The campaign scheduler
# ---------------------------------------------------------------------------


def interleave(batches: Sequence[Sequence[TrialSpec]]) -> list[TrialSpec]:
    """Round-robin merge: trial i of every batch before trial i+1 of any.

    Keeps per-batch order (so demultiplexed results stay in trial
    order) while spreading each configuration's trials across the
    submission — chunked pool dispatch then hands every worker a mix of
    configurations instead of a run of identical ones.
    """
    merged: list[TrialSpec] = []
    for rank in range(max((len(b) for b in batches), default=0)):
        for batch in batches:
            if rank < len(batch):
                merged.append(batch[rank])
    return merged


class Campaign:
    """All configurations of a figure sweep, one pool submission.

    Usage::

        campaign = Campaign(jobs="auto")
        for label, driver in configurations:
            campaign.add(runner.specs_for(label, driver))
        results = campaign.run()      # {label: TrialResult}

    ``add`` accepts any spec batch (different runners, scenario
    configs, or profiles per configuration are fine); labels must be
    unique because they key the demultiplexed results.
    """

    def __init__(
        self,
        jobs: Union[int, str, ExecutionEngine, None] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.engine = engine if engine is not None else resolve_engine(jobs)
        self._batches: list[list[TrialSpec]] = []
        self._labels: list[str] = []

    def add(self, specs: Sequence[TrialSpec]) -> str:
        """Register one configuration's trial batch; returns its label."""
        specs = list(specs)
        if not specs:
            raise ConfigError("cannot add an empty trial batch to a campaign")
        labels = {spec.label for spec in specs}
        if len(labels) != 1:
            raise ConfigError(
                f"a campaign batch must share one label, got {sorted(labels)}"
            )
        label = specs[0].label
        if label in self._labels:
            raise ConfigError(f"duplicate campaign label {label!r}")
        self._labels.append(label)
        self._batches.append(specs)
        return label

    def add_run(self, runner, label: str, make_driver, scenario_hook=None) -> str:
        """Convenience: ``add(runner.specs_for(label, make_driver, hook))``."""
        return self.add(runner.specs_for(label, make_driver, scenario_hook))

    @property
    def labels(self) -> list[str]:
        return list(self._labels)

    def __len__(self) -> int:
        return sum(len(batch) for batch in self._batches)

    def run(self) -> dict[str, TrialResult]:
        """Execute every registered trial as one submission and demux.

        The engine returns outcomes in submission order, so slicing
        them back out by each spec's position reconstructs per-label
        results in trial order — identical to running the
        configurations one at a time.
        """
        merged = interleave(self._batches)
        outcomes = self.engine.map(merged)
        by_label: dict[str, list[SessionOutcome]] = {
            label: [] for label in self._labels
        }
        for spec, outcome in zip(merged, outcomes):
            by_label[spec.label].append(outcome)
        return {
            label: TrialResult(label, by_label[label]) for label in self._labels
        }
