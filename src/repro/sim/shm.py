"""Shared-memory outcome collection for campaign trials.

The process execution backend used to return every trial's full
:class:`~repro.sim.driver.SessionOutcome` through the pool's result
pipe: a deep pickle of the outcome, its :class:`~repro.core.metrics.
QoEMetrics`, and every ``StallEvent`` / ``RebufferCycle`` inside — per
trial — which the parent then unpickled back into an object graph only
to transpose it into the columnar
:class:`~repro.sim.campaign.OutcomeBatch`.  This module splits that
round trip along the batch's own layout:

* the **dense scalar columns** (start-up delay, finish time, total
  stall, failover count — :data:`DENSE_COLUMNS`) are written by the
  workers *in place*, each at its trial's row index, into one
  ``multiprocessing.shared_memory`` arena the parent sizes from the
  campaign's spec count (:class:`OutcomeArena`).  The parent assembles
  the batch's dense columns straight from the arena with **zero
  deserialization** — the float64/int64 bits the worker stored are the
  bits the analysis layer reads;
* the **ragged and string/dict fields** — re-buffering cycles (CSR
  source data), stalls, ``stop_reason``, the per-path byte/bootstrap
  dicts, ``server_bytes`` — ride a per-worker side channel: a flat
  :class:`SideRecord` of primitives returned through the existing pool
  pipe, far cheaper to pickle than the nested dataclass graph it
  replaces.

A full ``SessionOutcome`` can always be rebuilt exactly from one dense
row plus its side record (:func:`rebuild_outcome`); consumers that walk
outcome objects (EXP-X2's ``server_bytes`` accounting) get them lazily,
while the analytics path never materializes them at all.

The arena itself is layout-agnostic: ``create``/``attach`` take an
ordered :data:`ColumnLayout` (``DENSE_COLUMNS`` by default), so other
campaign kinds reuse the same transport with their own dense scalars —
population campaigns (:mod:`repro.ext.population`) store per-population
aggregates per row and ship per-client remainders as their own side
records.

Cleanup protocol: the parent owns the arena — ``create`` → workers
``attach`` (and immediately deregister the segment from their resource
tracker; the parent's registration is the tracked one) → parent copies
the columns out and calls ``destroy`` (close + unlink) in a
``finally``, so a worker crash / ``BrokenProcessPool`` — even one that
breaks the fresh-pool retry too — cannot leak ``/dev/shm`` segments or
provoke ``resource_tracker`` leak warnings.

Backend selection: the shm path is the default for the process engine;
``REPRO_IPC=pickle`` (or ``ProcessEngine(ipc="pickle")``, or
``repro experiment --ipc pickle``) restores the classic full-pickle
collection.  Both paths are byte-identical for the same root seed — the
test wall in ``tests/test_sim_shm.py`` /
``tests/test_sim_campaign_properties.py`` holds them to it.
"""

from __future__ import annotations

import contextlib
import os
from multiprocessing import resource_tracker, shared_memory
from collections.abc import Callable, Sequence
from typing import NamedTuple

import numpy as np

from ..core.metrics import QoEMetrics, RebufferCycle, StallEvent
from ..errors import ConfigError
from .driver import SessionOutcome

__all__ = [
    "ARENA_PREFIX",
    "ColumnLayout",
    "DENSE_COLUMNS",
    "OutcomeArena",
    "SideRecord",
    "TrialCollection",
    "collect_trials",
    "encode_side",
    "rebuild_outcome",
    "rebuild_outcomes",
    "resolve_ipc",
]

#: Shared-memory segment name prefix — recognizable so leak checks (and
#: an operator staring at /dev/shm) can attribute segments to us.
ARENA_PREFIX = "repro-arena-"

#: A dense arena layout: ordered (column name, dtype) pairs.  The layout
#: is a *parameter* of :class:`OutcomeArena` — per-trial campaigns use
#: :data:`DENSE_COLUMNS`, population campaigns bring their own
#: per-population layout (``repro.ext.population.POPULATION_COLUMNS``).
ColumnLayout = tuple[tuple[str, type], ...]

#: The per-trial layout: exactly the scalar-per-trial columns of
#: ``OutcomeBatch``; everything else is side-channel data.
DENSE_COLUMNS: ColumnLayout = (
    ("startup", np.float64),
    ("finished_at", np.float64),
    ("total_stall", np.float64),
    ("failovers", np.int64),
)


def _row_bytes(columns: ColumnLayout) -> int:
    return sum(np.dtype(dtype).itemsize for _name, dtype in columns)


def resolve_ipc(ipc: str | None = None) -> str:
    """Turn an ``--ipc`` / ``REPRO_IPC``-style value into a backend name.

    ``None`` consults ``REPRO_IPC``; unset means ``"shm"`` (the
    default).  Only ``"pickle"`` and ``"shm"`` are valid.
    """
    if ipc is None:
        ipc = os.environ.get("REPRO_IPC") or "shm"
    token = str(ipc).strip().lower()
    if token not in ("pickle", "shm"):
        raise ConfigError(
            f"unknown ipc mode {token!r}; expected 'pickle' or 'shm'"
        )
    return token


# ---------------------------------------------------------------------------
# The dense-column arena
# ---------------------------------------------------------------------------


class OutcomeArena:
    """Dense per-work-unit scalar columns in one shared-memory block.

    Column-major layout (``columns`` order, :data:`DENSE_COLUMNS` by
    default): column ``c`` of a ``rows``-unit arena occupies bytes
    ``[c * rows * 8, (c+1) * rows * 8)``.  The parent creates it sized
    from the campaign's spec count; each worker attaches once per
    campaign and writes its units' rows in place.  Rows are disjoint
    per unit, so concurrent writers never touch the same bytes.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        rows: int,
        owner: bool,
        columns: ColumnLayout = DENSE_COLUMNS,
    ) -> None:
        self._shm = shm
        self.rows = rows
        self.columns = columns
        self._owner = owner
        self._views: dict[str, np.ndarray] = {}
        offset = 0
        for name, dtype in columns:
            self._views[name] = np.ndarray(
                (rows,), dtype=dtype, buffer=shm.buf, offset=offset
            )
            offset += np.dtype(dtype).itemsize * rows

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    @classmethod
    def create(cls, rows: int, columns: ColumnLayout = DENSE_COLUMNS) -> "OutcomeArena":
        """Parent side: allocate a fresh arena for ``rows`` work units."""
        size = max(1, rows * _row_bytes(columns))  # zero-byte segments are invalid
        while True:
            # OS entropy is deliberate here: the segment *name* must be
            # unique across unrelated processes sharing /dev/shm and
            # never feeds simulation state — results are a function of
            # the arena's contents, not its label.
            name = ARENA_PREFIX + os.urandom(8).hex()  # replint: disable=DET001
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - 64-bit collision
                continue
            return cls(shm, rows, owner=True, columns=columns)

    @classmethod
    def attach(
        cls, name: str, rows: int, columns: ColumnLayout = DENSE_COLUMNS
    ) -> "OutcomeArena":
        """Worker side: map an existing arena by name, untracked.

        CPython (< 3.13) registers a segment with the resource tracker
        on every ``SharedMemory()`` call, attach included.  The parent
        owns this segment's lifecycle, so worker-side registration is
        wrong in both start-method regimes: under ``fork`` the workers
        share the parent's tracker and the registry entry must outlive
        them untouched for the parent's unlink to deregister cleanly;
        under ``spawn``/``forkserver`` a worker's own tracker would
        "clean up" (unlink!) the live arena and warn about it when that
        worker exits.  3.13+ exposes ``track=False`` for exactly this;
        on older interpreters the registration call is shimmed out for
        the duration of the attach (workers are single-threaded).
        """
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        return cls(shm, rows, owner=False, columns=columns)

    def write(self, row: int, outcome: SessionOutcome) -> None:
        """Store one trial's dense scalars at its row index.

        The :data:`DENSE_COLUMNS` convenience; arenas with other
        layouts store through :meth:`write_row`.
        """
        metrics = outcome.metrics
        delay = outcome.startup_delay
        self._views["startup"][row] = np.nan if delay is None else delay
        self._views["finished_at"][row] = outcome.finished_at
        self._views["total_stall"][row] = metrics.total_stall_time
        self._views["failovers"][row] = metrics.failovers

    def write_row(self, row: int, values: dict[str, float]) -> None:
        """Store one work unit's dense scalars, one value per column."""
        for name, _dtype in self.columns:
            self._views[name][row] = values[name]

    def read_columns(self) -> dict[str, np.ndarray]:
        """Copy the columns out of the segment (the arena can then die)."""
        return {name: np.array(view) for name, view in self._views.items()}

    def close(self) -> None:
        """Unmap this process's view (drops the buffer exports first —
        ``mmap`` refuses to close under live ``ndarray`` views)."""
        self._views = {}
        self._shm.close()

    def destroy(self) -> None:
        """Close and, if this side created the segment, unlink it.

        Idempotent and safe under exceptions — this is the ``finally``
        arm of the collection path, so it must succeed whether the map
        completed, the pool broke once (retry rewrote the rows), or the
        retry broke too.
        """
        with contextlib.suppress(Exception):  # pragma: no cover - already closed
            self.close()
        if self._owner:
            with contextlib.suppress(FileNotFoundError):  # pragma: no cover
                self._shm.unlink()


# ---------------------------------------------------------------------------
# The side channel: everything that is not a dense scalar
# ---------------------------------------------------------------------------


class SideRecord(NamedTuple):
    """One trial's non-dense remainder, flattened to primitives.

    Carries every ``SessionOutcome`` / ``QoEMetrics`` field that is not
    in the arena, with the nested ``StallEvent`` / ``RebufferCycle``
    objects flattened to tuples — a pickle of this is a flat tuple of
    strings, floats, and small dicts instead of a dataclass graph.
    ``rebuild_outcome`` inverts it exactly.
    """

    stop_reason: str
    peak_out_of_order: int
    path_json_delay: dict
    path_first_video_delay: dict
    server_bytes: dict
    requests_by_path: dict
    # -- QoEMetrics remainder ------------------------------------------------
    session_started_at: float
    playback_started_at: float | None
    prebuffer_completed_at: float | None
    playback_finished_at: float | None
    download_completed_at: float | None
    prebuffer_bytes_by_path: dict
    rebuffer_bytes_by_path: dict
    metrics_requests_by_path: dict
    active_time_by_path: dict
    path_bootstrap: dict
    #: ((started_at, ended_at-or-None), ...)
    stalls: tuple
    #: ((started_at, ended_at-or-None, level_at_start_s), ...)
    rebuffer_cycles: tuple
    metrics_peak_out_of_order: int

    def completed_cycle_durations(self) -> list[float]:
        """Fig. 5's refill times — the same ``ended - started``
        subtraction ``RebufferCycle.duration`` performs, so batches
        assembled from side records are bit-identical to ones built
        from outcome objects."""
        return [
            ended - started
            for started, ended, _level in self.rebuffer_cycles
            if ended is not None
        ]


def encode_side(outcome: SessionOutcome) -> SideRecord:
    """Flatten one outcome's non-dense remainder (worker side).

    Dict fields are carried by reference — the worker discards the
    outcome right after, and pickling copies them anyway.
    """
    metrics = outcome.metrics
    return SideRecord(
        stop_reason=outcome.stop_reason,
        peak_out_of_order=outcome.peak_out_of_order,
        path_json_delay=outcome.path_json_delay,
        path_first_video_delay=outcome.path_first_video_delay,
        server_bytes=outcome.server_bytes,
        requests_by_path=outcome.requests_by_path,
        session_started_at=metrics.session_started_at,
        playback_started_at=metrics.playback_started_at,
        prebuffer_completed_at=metrics.prebuffer_completed_at,
        playback_finished_at=metrics.playback_finished_at,
        download_completed_at=metrics.download_completed_at,
        prebuffer_bytes_by_path=metrics.prebuffer_bytes_by_path,
        rebuffer_bytes_by_path=metrics.rebuffer_bytes_by_path,
        metrics_requests_by_path=metrics.requests_by_path,
        active_time_by_path=metrics.active_time_by_path,
        path_bootstrap=metrics.path_bootstrap,
        stalls=tuple((s.started_at, s.ended_at) for s in metrics.stalls),
        rebuffer_cycles=tuple(
            (c.started_at, c.ended_at, c.level_at_start_s)
            for c in metrics.rebuffer_cycles
        ),
        metrics_peak_out_of_order=metrics.peak_out_of_order,
    )


def rebuild_outcome(
    side: SideRecord, finished_at: float, failovers: int
) -> SessionOutcome:
    """Invert :func:`encode_side`: one dense row + side record →
    a ``SessionOutcome`` equal (``==``) to the worker's original."""
    metrics = QoEMetrics(
        session_started_at=side.session_started_at,
        playback_started_at=side.playback_started_at,
        prebuffer_completed_at=side.prebuffer_completed_at,
        playback_finished_at=side.playback_finished_at,
        download_completed_at=side.download_completed_at,
        prebuffer_bytes_by_path=dict(side.prebuffer_bytes_by_path),
        rebuffer_bytes_by_path=dict(side.rebuffer_bytes_by_path),
        requests_by_path=dict(side.metrics_requests_by_path),
        active_time_by_path=dict(side.active_time_by_path),
        path_bootstrap=dict(side.path_bootstrap),
        stalls=[StallEvent(started, ended) for started, ended in side.stalls],
        rebuffer_cycles=[
            RebufferCycle(started, ended, level)
            for started, ended, level in side.rebuffer_cycles
        ],
        failovers=int(failovers),
        peak_out_of_order=side.metrics_peak_out_of_order,
    )
    return SessionOutcome(
        metrics=metrics,
        finished_at=float(finished_at),
        stop_reason=side.stop_reason,
        peak_out_of_order=side.peak_out_of_order,
        path_json_delay=dict(side.path_json_delay),
        path_first_video_delay=dict(side.path_first_video_delay),
        server_bytes=dict(side.server_bytes),
        requests_by_path=dict(side.requests_by_path),
    )


def rebuild_outcomes(
    dense: dict[str, np.ndarray], sides: Sequence[SideRecord]
) -> list[SessionOutcome]:
    """Materialize full outcome objects for object-graph consumers."""
    finished = dense["finished_at"]
    failovers = dense["failovers"]
    return [
        rebuild_outcome(side, finished[i], failovers[i])
        for i, side in enumerate(sides)
    ]


# ---------------------------------------------------------------------------
# What a collection hands back to the campaign layer
# ---------------------------------------------------------------------------


class TrialCollection:
    """An engine's collected work units: result objects, maybe columnar.

    The pickle/serial paths carry ``outcomes`` only.  The shm path
    carries ``dense`` (arena column copies, spec order) and ``sides``
    (side records, spec order) and materializes result objects lazily
    — the campaign's analytics path assembles its batch straight from
    the columns and never pays for the object graph.  ``rebuild`` is
    the spec kind's ``(dense, sides) -> results`` inverse; the default
    rebuilds per-trial ``SessionOutcome``s.
    """

    def __init__(
        self,
        outcomes: list | None = None,
        dense: dict[str, np.ndarray] | None = None,
        sides: Sequence | None = None,
        rebuild: Callable[[dict, Sequence], list] | None = None,
    ) -> None:
        if outcomes is None and (dense is None or sides is None):
            raise ConfigError(
                "a TrialCollection needs outcomes or dense columns + side records"
            )
        self._outcomes = outcomes
        self.dense = dense
        self.sides = list(sides) if sides is not None else None
        self._rebuild = rebuild if rebuild is not None else rebuild_outcomes

    @property
    def columnar(self) -> bool:
        return self.dense is not None

    def __len__(self) -> int:
        if self._outcomes is not None:
            return len(self._outcomes)
        return len(self.sides)

    @property
    def outcomes(self) -> list:
        if self._outcomes is None:
            self._outcomes = self._rebuild(self.dense, self.sides)
        return self._outcomes


def collect_trials(engine, specs) -> TrialCollection:
    """Run specs through an engine, columnar when the engine can.

    Engines that grew a ``collect`` method (the process engine) return
    a columnar collection on their shm path; everything else — serial,
    third-party ``ExecutionEngine`` implementations — is wrapped via
    plain ``map``.
    """
    collect = getattr(engine, "collect", None)
    if collect is not None:
        return collect(specs)
    return TrialCollection(outcomes=engine.map(specs))
