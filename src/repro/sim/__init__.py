"""Discrete-event simulation driver for MSPlayer and the baselines.

This package is the "testbed" (§5) and the "YouTube service" (§6) of
the paper, as code:

* :mod:`repro.sim.profiles` — calibrated network profiles: the campus
  testbed (stable links), the wide-area YouTube scenario (burstier,
  longer RTTs), and mobility variants with interface outages;
* :mod:`repro.sim.scenario` — builds a complete world from a profile:
  environment, links, interfaces, CDN deployment, DNS, one video;
* :mod:`repro.sim.driver` — runs a :class:`repro.core.PlayerSession`
  against that world, translating its commands into simulated IO;
* :mod:`repro.sim.singlepath` — drives the single-path baseline player
  (Adobe-Flash/HTML5-style) for Figs. 2, 4 and 5;
* :mod:`repro.sim.runner` — repeated-trial experiment execution with
  derived seeds (the paper randomizes configuration order over 20
  repetitions; we give each (configuration, trial) an independent
  random substream);
* :mod:`repro.sim.execution` — the trial execution engine: declarative
  picklable trial/driver specs and pluggable serial/process backends,
  so independent trials fan out over a process pool with results
  byte-identical to a serial run;
* :mod:`repro.sim.campaign` — campaign-level scheduling (all of a
  figure's configurations interleaved into one pool submission, no
  per-configuration barrier) and columnar outcome aggregation
  (:class:`~repro.sim.campaign.OutcomeBatch`);
* :mod:`repro.sim.shm` — shared-memory result collection for the
  process backends: workers write dense outcome columns into an arena
  in place, only the ragged/string remainder rides the pool pipe
  (``REPRO_IPC=pickle|shm`` selects; byte-identical either way).
"""

from .profiles import (
    InterfaceProfile,
    NetworkProfile,
    mobility_profile,
    testbed_profile,
    youtube_profile,
)
from .scenario import Scenario, ScenarioConfig
from .driver import MSPlayerDriver, SessionOutcome
from .singlepath import SinglePathDriver
from .execution import (
    DriverFactory,
    MPTCPLikeSpec,
    MSPlayerSpec,
    ProcessEngine,
    SerialEngine,
    SessionDriver,
    SinglePathSpec,
    TrialSpec,
    WorkSpec,
    resolve_engine,
    run_trial,
    run_unit,
)
from .shm import OutcomeArena, SideRecord, TrialCollection, collect_trials, resolve_ipc
from .campaign import Campaign, OutcomeBatch
from .runner import TrialRunner, TrialResult

__all__ = [
    "OutcomeArena",
    "SideRecord",
    "TrialCollection",
    "collect_trials",
    "resolve_ipc",
    "DriverFactory",
    "MPTCPLikeSpec",
    "MSPlayerSpec",
    "ProcessEngine",
    "SerialEngine",
    "SessionDriver",
    "SinglePathSpec",
    "TrialSpec",
    "WorkSpec",
    "resolve_engine",
    "run_trial",
    "run_unit",
    "InterfaceProfile",
    "NetworkProfile",
    "testbed_profile",
    "youtube_profile",
    "mobility_profile",
    "Scenario",
    "ScenarioConfig",
    "MSPlayerDriver",
    "SessionOutcome",
    "SinglePathDriver",
    "TrialRunner",
    "TrialResult",
    "Campaign",
    "OutcomeBatch",
]
