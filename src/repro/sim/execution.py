"""Trial execution engine: pluggable backends for i.i.d. trials.

The paper repeats every configuration 20 times (§5.2), and the
``(root_seed, config_label, trial_index)`` seed derivation makes those
repetitions *embarrassingly parallel*: a :class:`TrialSpec` carries
everything one trial needs — profile factory, scenario config, seed,
and a declarative driver spec — so it can be shipped to a worker
process and executed there bit-identically to a local run.

Backends:

* :class:`SerialEngine` — in-process, one trial after another;
* :class:`ProcessEngine` — ``concurrent.futures.ProcessPoolExecutor``
  with chunked dispatch; worker pools are shared across campaigns so a
  figure sweep pays the fork cost once;
* ``auto`` (via :func:`resolve_engine`) — a process engine sized to the
  machine that silently falls back to serial when a spec cannot be
  pickled (e.g. a hand-written closure factory).

Result collection (process backends) is pluggable too: the default
``shm`` path has workers write each trial's dense scalar columns
directly into a ``multiprocessing.shared_memory`` arena at their trial
row index, with only the ragged/string remainder pickled back through
the pool pipe (see :mod:`repro.sim.shm`); ``REPRO_IPC=pickle`` (or
``ProcessEngine(ipc="pickle")``) restores full-outcome pickling.

Determinism is the acceptance bar: ``engine.map(specs)`` returns
outcomes in spec order, and every trial derives its randomness from its
own seed, so parallel results are byte-identical to serial ones for the
same root seed — whatever the IPC mode.  Select a backend with
``TrialRunner(jobs=...)``, ``repro experiment --jobs N``, or the
``REPRO_JOBS`` environment variable (``N``, ``auto``, or ``serial``).

The engines are generic over the :class:`WorkSpec` protocol, not tied
to per-trial specs: a spec kind supplies its own execution, dense arena
layout, side-channel encoding, and rebuild inverse.  ``TrialSpec`` (one
player session per unit) and ``repro.ext.population.PopulationSpec``
(one whole multi-client population per unit) are the two kinds.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from collections.abc import Callable, Sequence
from typing import ClassVar, Protocol, runtime_checkable

from ..core.config import PlayerConfig
from ..errors import ConfigError
from ..net.calendar import resolve_kernel, set_default_kernel
from .driver import MSPlayerDriver, SessionOutcome
from .profiles import NetworkProfile
from .scenario import Scenario, ScenarioConfig
from .shm import (
    DENSE_COLUMNS,
    ColumnLayout,
    OutcomeArena,
    SideRecord,
    TrialCollection,
    encode_side,
    rebuild_outcomes,
    resolve_ipc,
)
from .singlepath import HTML5_CHUNK, SinglePathDriver


@runtime_checkable
class SessionDriver(Protocol):
    """What a trial executes: anything that runs to a SessionOutcome."""

    def run(self) -> SessionOutcome: ...


#: A driver factory: scenario -> a driver whose run() yields the outcome.
DriverFactory = Callable[[Scenario], SessionDriver]

#: Optional scenario mutation applied before the driver is built
#: (failure injection and the like).  Must be picklable — i.e. a
#: module-level function — to run on a process backend.
ScenarioHook = Callable[[Scenario], None]


# ---------------------------------------------------------------------------
# Declarative driver specs (picklable DriverFactory implementations)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MSPlayerSpec:
    """Declarative stand-in for an ``MSPlayerDriver`` factory closure."""

    config: PlayerConfig = field(default_factory=PlayerConfig)
    stop: str = "prebuffer"
    target_cycles: int = 3

    def __call__(self, scenario: Scenario) -> MSPlayerDriver:
        return MSPlayerDriver(
            scenario, config=self.config, stop=self.stop, target_cycles=self.target_cycles
        )


@dataclass(frozen=True)
class SinglePathSpec:
    """Factory spec for the fixed-chunk single-path baseline player."""

    iface_index: int = 0
    chunk_bytes: int = HTML5_CHUNK
    config: PlayerConfig = field(default_factory=PlayerConfig)
    stop: str = "prebuffer"
    target_cycles: int = 3

    def __call__(self, scenario: Scenario) -> SinglePathDriver:
        return SinglePathDriver(
            scenario,
            iface_index=self.iface_index,
            chunk_bytes=self.chunk_bytes,
            config=self.config,
            stop=self.stop,
            target_cycles=self.target_cycles,
        )


@dataclass(frozen=True)
class MPTCPLikeSpec:
    """Factory spec for the single-server MPTCP-like baseline (EXP-X2)."""

    config: PlayerConfig = field(default_factory=PlayerConfig)
    stop: str = "prebuffer"
    target_cycles: int = 3

    def __call__(self, scenario: Scenario) -> SessionDriver:
        # Imported lazily: repro.baselines.mptcp itself imports from
        # repro.sim, and a module-level import would close that cycle.
        from ..baselines.mptcp import MPTCPLikeDriver

        return MPTCPLikeDriver(
            scenario, config=self.config, stop=self.stop, target_cycles=self.target_cycles
        )


# ---------------------------------------------------------------------------
# Trial specs and the worker entry point
# ---------------------------------------------------------------------------


class WorkSpec(Protocol):
    """What any engine executes: a self-contained, picklable work unit.

    Per-trial campaigns use :class:`TrialSpec` (one player session per
    unit); population campaigns use
    :class:`~repro.ext.population.PopulationSpec` (one whole
    multi-client population per unit).  The engine itself is agnostic —
    a spec kind brings its own execution (:meth:`run`), its own dense
    arena layout (``dense_columns`` / :meth:`write_dense`), its own
    side-channel encoding (:meth:`encode_side`), and the inverse that
    materializes result objects from a columnar collection
    (:meth:`rebuild`).
    """

    label: str
    #: Class-level arena layout shared by every spec of this kind.
    dense_columns: ColumnLayout

    def run(self) -> object: ...

    def write_dense(self, arena: OutcomeArena, row: int, result: object) -> None: ...

    def encode_side(self, result: object) -> object: ...

    @staticmethod
    def rebuild(dense: dict, sides: Sequence) -> list: ...


@dataclass(frozen=True)
class TrialSpec:
    """Everything one (configuration, trial) pair needs, self-contained."""

    label: str
    trial: int
    seed: int
    profile_factory: Callable[[], NetworkProfile]
    driver: DriverFactory
    scenario_config: ScenarioConfig = field(default_factory=ScenarioConfig)
    scenario_hook: ScenarioHook | None = None

    #: Arena layout for the shm collection path (class-level; see
    #: :class:`WorkSpec`).
    dense_columns: ClassVar[ColumnLayout] = DENSE_COLUMNS

    def run(self) -> SessionOutcome:
        """Execute this trial start to finish (the pool work unit)."""
        scenario = Scenario(
            self.profile_factory(), seed=self.seed, config=self.scenario_config
        )
        if self.scenario_hook is not None:
            self.scenario_hook(scenario)
        return self.driver(scenario).run()

    def write_dense(
        self, arena: OutcomeArena, row: int, result: SessionOutcome
    ) -> None:
        arena.write(row, result)

    def encode_side(self, result: SessionOutcome) -> SideRecord:
        return encode_side(result)

    @staticmethod
    def rebuild(dense: dict, sides: Sequence[SideRecord]) -> list[SessionOutcome]:
        return rebuild_outcomes(dense, sides)


def run_trial(spec: TrialSpec) -> SessionOutcome:
    """Execute one trial start to finish (kept for direct callers)."""
    return spec.run()


#: Worker-side arena attachment cache, keyed by segment name.  A worker
#: serves one campaign at a time, so a task naming a new arena means the
#: cached ones belong to finished (already unlinked) campaigns — close
#: them before attaching, keeping exactly one live mapping per worker.
_WORKER_ARENAS: dict[str, OutcomeArena] = {}


def _attached_arena(name: str, rows: int, columns: ColumnLayout) -> OutcomeArena:
    arena = _WORKER_ARENAS.get(name)
    if arena is None:
        for stale in _WORKER_ARENAS.values():
            stale.close()
        _WORKER_ARENAS.clear()
        arena = OutcomeArena.attach(name, rows, columns)
        _WORKER_ARENAS[name] = arena
    return arena


def run_unit(spec: WorkSpec) -> object:
    """Execute one work unit (the pickle-path pool entry point)."""
    return spec.run()


def _run_scoped(kernel: str, fn: Callable[[object], object], item: object) -> object:
    """Worker-side wrapper pinning the parent's event-kernel choice.

    Worker pools are cached across campaigns and fork with whatever
    environment the *first* campaign saw, so ``REPRO_KERNEL`` cannot be
    trusted inside a worker — the parent resolves the kernel and ships
    it with every task instead.
    """
    set_default_kernel(kernel)
    return fn(item)


def run_unit_into_arena(
    arena_name: str, rows: int, item: tuple[int, WorkSpec]
) -> object:
    """The shm-path work unit: run the spec, store its dense scalars
    at its row of the shared arena (whose layout the spec kind
    declares), return only the ragged/string remainder through the
    pool pipe."""
    index, spec = item
    result = spec.run()
    arena = _attached_arena(arena_name, rows, spec.dense_columns)
    spec.write_dense(arena, index, result)
    return spec.encode_side(result)


def run_trial_into_arena(
    arena_name: str, rows: int, item: tuple[int, TrialSpec]
) -> SideRecord:
    """Kept for direct callers; :func:`run_unit_into_arena` is the
    engine's generic entry point."""
    return run_unit_into_arena(arena_name, rows, item)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ExecutionEngine(Protocol):
    """Maps work specs to their results, preserving spec order."""

    name: str
    jobs: int

    def map(self, specs: Sequence[WorkSpec]) -> list: ...


class SerialEngine:
    """Run every work unit in-process, one after another."""

    name = "serial"
    jobs = 1

    def map(self, specs: Sequence[WorkSpec]) -> list:
        return [spec.run() for spec in specs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialEngine()"


#: Shared worker pools, keyed by worker count.  A figure sweep calls
#: ``TrialRunner.run`` once per configuration; reusing the pool means
#: the campaign pays the fork cost once, not once per configuration.
_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def _evict_pool(workers: int) -> None:
    """Drop a dead executor from the cache so later campaigns re-fork.

    A ``BrokenProcessPool`` is permanent for the executor that raised
    it: every subsequent submit fails.  Leaving it cached would poison
    every later campaign at this worker count.
    """
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


class ProcessEngine:
    """Fan trials out over a process pool with chunked dispatch.

    ``fallback_to_serial`` is the ``auto`` behaviour: specs that cannot
    be pickled (hand-written closure factories) run serially instead of
    erroring.  An explicitly requested process engine raises, with a
    pointer at the declarative specs, so the misconfiguration is loud.
    """

    def __init__(
        self,
        jobs: int | None = None,
        fallback_to_serial: bool = False,
        ipc: str | None = None,
    ) -> None:
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.fallback_to_serial = fallback_to_serial
        self.name = "auto" if fallback_to_serial else "process"
        #: Result collection mode: "shm" (default — dense columns via a
        #: shared-memory arena) or "pickle" (full outcomes through the
        #: pool pipe).  ``None`` consults ``REPRO_IPC``.
        self.ipc = resolve_ipc(ipc)

    def map(self, specs: Sequence[WorkSpec]) -> list:
        return self.collect(specs).outcomes

    def collect(self, specs: Sequence[WorkSpec]) -> TrialCollection:
        """Run the batch; on the shm path, return it columnar.

        The campaign layer assembles each label's batch straight from
        a columnar collection's dense arrays; result objects
        materialize lazily if something walks them.
        """
        specs = list(specs)
        if len(specs) <= 1 or self.jobs == 1:
            return TrialCollection(outcomes=[spec.run() for spec in specs])
        # A configuration is homogeneous (one driver spec, one hook, one
        # profile factory), but a *campaign* batch interleaves several
        # configurations — so probe one representative per label, which
        # still decides for all at ~configs/len(specs) of the full
        # serialization cost.
        probes: dict[str, WorkSpec] = {}
        for spec in specs:
            probes.setdefault(spec.label, spec)
        for probe in probes.values():
            try:
                pickle.dumps(probe)
            except Exception as exc:
                if self.fallback_to_serial:
                    return TrialCollection(
                        outcomes=[spec.run() for spec in specs]
                    )
                raise ConfigError(
                    f"trial specs for {probe.label!r} are not picklable ({exc}); "
                    "use declarative driver specs (MSPlayerSpec / SinglePathSpec / "
                    "MPTCPLikeSpec) and module-level scenario hooks, or run serially"
                ) from None
        # Chunked dispatch: ~4 chunks per active worker balances IPC
        # overhead against tail latency from uneven trial durations.
        active = min(self.jobs, len(specs))
        chunksize = max(1, -(-len(specs) // (active * 4)))
        if self.ipc == "pickle":
            return TrialCollection(
                outcomes=self._pool_map(run_unit, specs, chunksize)
            )
        # shm path: the parent sizes the arena from the spec count (and
        # the spec kind's column layout), the workers write dense rows
        # in place, and only the side records come back through the
        # pipe.  The arena is destroyed (closed + unlinked) in the
        # ``finally`` whatever happens — including a BrokenProcessPool
        # that survives _pool_map's fresh-pool retry — so worker
        # crashes cannot leak /dev/shm segments.  The retry itself
        # reuses the arena: every row is rewritten.
        # Instance access on purpose: the WorkSpec protocol only
        # promises the attribute is readable on instances (the built-in
        # kinds declare it as a ClassVar, but a conforming third-party
        # spec may carry it per instance).
        columns = specs[0].dense_columns
        if any(spec.dense_columns != columns for spec in specs):
            raise ConfigError(
                "a collected batch must share one dense column layout; "
                "run heterogeneous spec kinds as separate campaigns"
            )
        arena = OutcomeArena.create(len(specs), columns)
        try:
            work = partial(run_unit_into_arena, arena.name, len(specs))
            sides = self._pool_map(work, list(enumerate(specs)), chunksize)
            dense = arena.read_columns()
        finally:
            arena.destroy()
        return TrialCollection(dense=dense, sides=sides, rebuild=specs[0].rebuild)

    def _pool_map(self, fn, items: list, chunksize: int) -> list:
        # The pool is sized (and keyed) by self.jobs, not the batch:
        # idle workers are harmless, and campaigns with varying trial
        # counts then reuse one pool instead of forking per count.
        fn = partial(_run_scoped, resolve_kernel(), fn)
        try:
            pool = _shared_pool(self.jobs)
            return list(pool.map(fn, items, chunksize=chunksize))
        except BrokenProcessPool:
            # The cached pool died (a worker was killed, or a previous
            # campaign broke it).  Evict it and retry once on a fresh
            # fork — trials are pure functions of their spec, so a
            # rerun is safe.  A second break means the specs themselves
            # kill workers; evict again and let it propagate.
            _evict_pool(self.jobs)
            try:
                pool = _shared_pool(self.jobs)
                return list(pool.map(fn, items, chunksize=chunksize))
            except BrokenProcessPool:
                _evict_pool(self.jobs)
                raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessEngine(jobs={self.jobs}, name={self.name!r}, ipc={self.ipc!r})"


def resolve_engine(jobs: int | str | ExecutionEngine | None = None) -> ExecutionEngine:
    """Turn a ``--jobs`` / ``REPRO_JOBS``-style value into an engine.

    * ``None`` — consult ``REPRO_JOBS``; unset means serial;
    * ``"serial"`` / ``1`` — in-process execution;
    * ``"auto"`` / ``0`` — one worker per CPU, serial fallback for
      unpicklable specs;
    * ``N`` / ``"N"`` — a process pool of N workers;
    * ``"service"`` — the distributed study backend
      (:class:`repro.serve.engine.ServiceEngine`; broker URL from
      ``REPRO_BROKER``) — ``Study.run`` ships whole studies to it
      instead of mapping specs;
    * an engine instance — passed through unchanged.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS") or "serial"
    if not isinstance(jobs, (int, str)) and hasattr(jobs, "map"):
        # Any ExecutionEngine implementation, not just the built-ins.
        return jobs
    if isinstance(jobs, str):
        token = jobs.strip().lower()
        if token in ("", "serial", "1"):
            return SerialEngine()
        if token in ("auto", "0", "process"):
            return ProcessEngine(fallback_to_serial=True)
        if token == "service":
            # Imported lazily: repro.serve builds on the study layer,
            # which itself imports this module.
            from ..serve.engine import ServiceEngine

            return ServiceEngine()
        try:
            jobs = int(token)
        except ValueError:
            raise ConfigError(
                f"unknown jobs value {token!r}; expected an integer, 'auto', "
                "'serial', or 'service'"
            ) from None
    if jobs == 0:
        return ProcessEngine(fallback_to_serial=True)
    if jobs == 1:
        return SerialEngine()
    return ProcessEngine(jobs)
