"""Emulated YouTube-like video service.

The control and data planes MSPlayer talks to (§3.1, §4), rebuilt as
simulation applications:

* a **catalog** of videos with multiple bitrate/format profiles
  (:mod:`repro.cdn.videos`, :mod:`repro.cdn.catalog`);
* **web proxy servers** that authenticate a client, pick video servers
  in the client's network, mint hour-long access tokens, and return
  everything as a JSON blob (:mod:`repro.cdn.webproxy`,
  :mod:`repro.cdn.tokens`, :mod:`repro.cdn.jsonapi`);
* the **signature cipher** dance YouTube added for copyrighted videos
  in July 2014 — footnote 1 of the paper (:mod:`repro.cdn.signature`);
* **video servers** that validate tokens and serve HTTP range requests
  over the simulated network (:mod:`repro.cdn.videoserver`);
* **server selection** per client network plus failover pools
  (:mod:`repro.cdn.selection`) and a one-call deployment builder
  (:mod:`repro.cdn.deployment`).
"""

from .videos import FORMATS, VideoAsset, VideoFormat, VideoMeta
from .catalog import Catalog, make_video_id
from .tokens import TokenMint
from .signature import SignatureCipher, decipher
from .jsonapi import VideoInfo, build_video_info, parse_video_info
from .webproxy import WebProxyApp
from .videoserver import VideoServerApp
from .selection import ServerSelection
from .deployment import CDNConfig, CDNDeployment, NetworkPool

__all__ = [
    "VideoFormat",
    "VideoMeta",
    "VideoAsset",
    "FORMATS",
    "Catalog",
    "make_video_id",
    "TokenMint",
    "SignatureCipher",
    "decipher",
    "VideoInfo",
    "build_video_info",
    "parse_video_info",
    "WebProxyApp",
    "VideoServerApp",
    "ServerSelection",
    "CDNConfig",
    "CDNDeployment",
    "NetworkPool",
]
