"""One-call construction of a complete emulated YouTube deployment.

The testbed of §5 is two networks × (one web proxy + video servers);
the real service of §6 is the same shape with more replicas and longer
paths.  :class:`CDNDeployment` builds either from a :class:`CDNConfig`:
hosts, applications, DNS records, token mint, signature cipher, and the
server-selection pools, all wired onto a :class:`~repro.net.topology.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from ..errors import ConfigError
from ..http.server import SimHTTPServer
from ..net.dns import StubResolver
from ..net.env import Environment
from ..net.tls import TLSParams
from ..net.topology import Host, Network
from .catalog import Catalog
from .selection import ServerSelection
from .signature import SignatureCipher
from .tokens import TokenMint
from .videoserver import VideoServerApp
from .webproxy import WebProxyApp

#: The well-known name players resolve first (§3.1).
PROXY_DNS_NAME = "www.youtube.example"


@dataclass
class NetworkPool:
    """The servers reachable from one client network."""

    network_id: str
    proxy_hosts: list[Host] = field(default_factory=list)
    video_hosts: list[Host] = field(default_factory=list)
    video_apps: list[VideoServerApp] = field(default_factory=list)


@dataclass
class CDNConfig:
    """Shape of a deployment."""

    #: Client networks (one per interface): e.g. ["wifi-net", "lte-net"].
    networks: tuple[str, ...] = ("wifi-net", "lte-net")
    proxies_per_network: int = 1
    video_servers_per_network: int = 2
    selection_policy: str = "static"
    tls: TLSParams = field(default_factory=TLSParams)
    #: Extra one-way distance to proxy/video hosts, per network (seconds).
    proxy_distance: float = 0.002
    video_distance: float = 0.002
    #: Server service-time model (see SimHTTPServer).
    base_service_time: float = 0.002
    per_megabyte_service_time: float = 0.001
    #: Concurrent requests beyond which a video server degrades.
    overload_threshold: int | None = None
    token_ttl_s: float = 3600.0
    api_key: str | None = None

    def __post_init__(self) -> None:
        if len(self.networks) < 1:
            raise ConfigError("deployment needs at least one network")
        if self.proxies_per_network < 1 or self.video_servers_per_network < 1:
            raise ConfigError("each network needs at least one proxy and one video server")


class CDNDeployment:
    """A built deployment: hosts, apps, selection, DNS."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        catalog: Catalog,
        config: CDNConfig,
        rng: np.random.Generator,
        resolver: StubResolver | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self.catalog = catalog
        self.config = config
        self.resolver = resolver
        self.mint = TokenMint(secret=b"deployment-token-secret", ttl_s=config.token_ttl_s)
        self.cipher = SignatureCipher.random(rng)
        self.signature_secret = b"deployment-stream-secret"
        self.selection = ServerSelection(config.selection_policy)
        self.pools: dict[str, NetworkPool] = {}
        self._build()

    # -- construction ----------------------------------------------------------

    def _clock(self) -> Callable[[], float]:
        return lambda: self.env.now

    def _build(self) -> None:
        config = self.config
        for network_id in config.networks:
            pool = NetworkPool(network_id)
            for index in range(config.video_servers_per_network):
                address = f"v{index + 1}.{network_id}.example"
                host = self.network.add_host(
                    Host(
                        address,
                        tls=config.tls,
                        extra_one_way_delay=config.video_distance,
                        network_id=network_id,
                    )
                )
                app = VideoServerApp(
                    self.catalog,
                    self.mint,
                    self._clock(),
                    pool=network_id,
                    signature_secret=self.signature_secret,
                    name=address,
                )
                SimHTTPServer(
                    host,
                    app,
                    base_service_time=config.base_service_time,
                    per_megabyte_service_time=config.per_megabyte_service_time,
                    overload_threshold=config.overload_threshold,
                )
                pool.video_hosts.append(host)
                pool.video_apps.append(app)
            self.selection.add_pool(network_id, pool.video_hosts)

            for index in range(config.proxies_per_network):
                address = f"proxy{index + 1}.{network_id}.example"
                host = self.network.add_host(
                    Host(
                        address,
                        tls=config.tls,
                        extra_one_way_delay=config.proxy_distance,
                        network_id=network_id,
                    )
                )
                app = WebProxyApp(
                    self.catalog,
                    self.mint,
                    select_hosts=self.selection.select,
                    clock=self._clock(),
                    cipher=self.cipher,
                    signature_secret=self.signature_secret,
                    api_key=config.api_key,
                )
                SimHTTPServer(
                    host,
                    app,
                    base_service_time=config.base_service_time,
                    per_megabyte_service_time=config.per_megabyte_service_time,
                )
                pool.proxy_hosts.append(host)
            self.pools[network_id] = pool

            if self.resolver is not None:
                self.resolver.add_record(
                    PROXY_DNS_NAME,
                    [h.address for h in pool.proxy_hosts],
                    network_id=network_id,
                )

    # -- conveniences --------------------------------------------------------------

    def proxy_address(self, network_id: str) -> str:
        return self.pools[network_id].proxy_hosts[0].address

    def video_addresses(self, network_id: str) -> list[str]:
        return [h.address for h in self.pools[network_id].video_hosts]

    def total_bytes_served(self) -> dict[str, int]:
        """Per-video-server byte counts (load-concentration metric, EXP-X2)."""
        served: dict[str, int] = {}
        for pool in self.pools.values():
            for host in pool.video_hosts:
                served[host.address] = int(host.bytes_served)
        return served
