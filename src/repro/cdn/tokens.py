"""Access tokens for video playback.

Per §4: after OAuth verification the web proxy "generates an access
token (valid for an hour) that matches the video server's IP address as
well as the operations requested", and the player splices that token
into the video URL.  We mint HMAC-signed tokens carrying exactly those
claims — video id, client public address, authorized operations, the
server pool it is valid for, and an expiry one hour out in *simulated*
time — and the video servers verify them statelessly with the shared
key.  Expired or tampered tokens earn a 403, which exercises MSPlayer's
re-bootstrap path.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from ..errors import TokenError

#: Paper-stated validity window: one hour.
DEFAULT_TTL_S = 3600.0

_FIELD_SEPARATOR = "~"


@dataclass(frozen=True)
class TokenClaims:
    """What a token asserts."""

    video_id: str
    client_address: str
    operations: str  # e.g. "play", comma-joined if several
    pool: str  # which network's video-server pool may honor it
    expires_at: float  # simulated-clock seconds


class TokenMint:
    """Issues and verifies HMAC tokens against a simulated clock."""

    def __init__(self, secret: bytes, ttl_s: float = DEFAULT_TTL_S) -> None:
        if not secret:
            raise TokenError("mint secret must be non-empty")
        if ttl_s <= 0:
            raise TokenError("ttl must be positive")
        self._secret = secret
        self.ttl_s = ttl_s

    # -- issuing -----------------------------------------------------------

    def issue(
        self,
        now: float,
        video_id: str,
        client_address: str,
        pool: str,
        operations: str = "play",
    ) -> str:
        """Mint a token valid for :attr:`ttl_s` seconds from ``now``."""
        claims = TokenClaims(video_id, client_address, operations, pool, now + self.ttl_s)
        return self._encode(claims)

    def _encode(self, claims: TokenClaims) -> str:
        for field in (claims.video_id, claims.client_address, claims.operations, claims.pool):
            if _FIELD_SEPARATOR in field:
                raise TokenError(f"claim field may not contain {_FIELD_SEPARATOR!r}: {field!r}")
        payload = _FIELD_SEPARATOR.join(
            [
                claims.video_id,
                claims.client_address,
                claims.operations,
                claims.pool,
                f"{claims.expires_at:.3f}",
            ]
        )
        mac = hmac.new(self._secret, payload.encode("utf-8"), hashlib.sha256).hexdigest()[:24]
        return f"{payload}{_FIELD_SEPARATOR}{mac}"

    # -- verifying -----------------------------------------------------------

    def verify(
        self,
        token: str,
        now: float,
        video_id: str,
        pool: str,
        operation: str = "play",
    ) -> TokenClaims:
        """Validate ``token``; returns its claims or raises TokenError."""
        claims, mac = self._decode(token)
        expected = self._encode(claims).rsplit(_FIELD_SEPARATOR, 1)[1]
        if not hmac.compare_digest(mac, expected):
            raise TokenError("token signature mismatch")
        if now > claims.expires_at:
            raise TokenError(f"token expired {now - claims.expires_at:.0f}s ago")
        if claims.video_id != video_id:
            raise TokenError("token is for a different video")
        if claims.pool != pool:
            raise TokenError(
                f"token issued for pool {claims.pool!r}, presented to {pool!r}"
            )
        if operation not in claims.operations.split(","):
            raise TokenError(f"operation {operation!r} not authorized")
        return claims

    @staticmethod
    def _decode(token: str) -> tuple[TokenClaims, str]:
        parts = token.split(_FIELD_SEPARATOR)
        if len(parts) != 6:
            raise TokenError("malformed token")
        video_id, client_address, operations, pool, expires, mac = parts
        try:
            expires_at = float(expires)
        except ValueError:
            raise TokenError("malformed token expiry") from None
        return TokenClaims(video_id, client_address, operations, pool, expires_at), mac
