"""Server selection: which video servers a given client should use.

YouTube resolves the client's public address and picks video servers
accordingly [3]; because MSPlayer bootstraps through *both* interfaces,
it receives a different server list per network — that is the source
diversity the whole design leverages (§2).  :class:`ServerSelection`
owns the per-network pools and the ordering policy:

* ``static`` — fixed order (primary, backup, …), the testbed setup;
* ``rotate`` — round-robin the primary across requests, spreading load
  across replicas the way large CDNs do;
* ``least_loaded`` — order by bytes served so far, a stand-in for
  YouTube's capacity-aware selection.

Only *up* hosts are returned; an empty answer means the pool is dark
and the proxy responds 503.
"""

from __future__ import annotations

from ..errors import ConfigError, ServerUnavailableError
from ..net.topology import Host

POLICIES = ("static", "rotate", "least_loaded")


class ServerSelection:
    """Per-network video-server pools with an ordering policy."""

    def __init__(self, policy: str = "static") -> None:
        if policy not in POLICIES:
            raise ConfigError(f"unknown selection policy {policy!r}; expected {POLICIES}")
        self.policy = policy
        self._pools: dict[str, list[Host]] = {}
        self._rotation: dict[str, int] = {}

    def add_pool(self, network_id: str, hosts: list[Host]) -> None:
        if not hosts:
            raise ConfigError(f"empty pool for network {network_id!r}")
        self._pools[network_id] = list(hosts)
        self._rotation[network_id] = 0

    def pools(self) -> dict[str, list[Host]]:
        return {k: list(v) for k, v in self._pools.items()}

    def networks(self) -> list[str]:
        return list(self._pools)

    def select(self, network_id: str) -> list[str]:
        """Ordered candidate addresses for a client in ``network_id``.

        Raises :class:`~repro.errors.ServerUnavailableError` when the
        network has no pool or every host in it is down.
        """
        pool = self._pools.get(network_id)
        if pool is None:
            raise ServerUnavailableError(f"no video servers serve network {network_id!r}")
        alive = [host for host in pool if host.up]
        if not alive:
            raise ServerUnavailableError(f"all video servers down in {network_id!r}")
        if self.policy == "static":
            ordered = alive
        elif self.policy == "rotate":
            start = self._rotation[network_id] % len(alive)
            self._rotation[network_id] += 1
            ordered = alive[start:] + alive[:start]
        else:  # least_loaded
            ordered = sorted(alive, key=lambda host: host.bytes_served)
        return [host.address for host in ordered]
