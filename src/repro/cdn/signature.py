"""Signature cipher for copyrighted videos (paper footnote 1).

    "As of July 2014, YouTube has applied algorithms to encode
    copyrighted video signatures. Since these signatures are needed to
    contact the video servers, for copyrighted videos, an additional
    operation is required to fetch the video web page containing a
    decoder to decipher the video signature."

We reproduce the *mechanics* of that dance (the real one lives in
obfuscated player JavaScript): the web proxy returns an **enciphered**
signature ``s`` instead of a plain ``signature`` for copyrighted
videos, and the decoder — a small program of reverse/swap/slice steps —
must be fetched as a separate resource before the video URL can be
synthesized.  The extra fetch is exactly the "additional operation" the
footnote charges to the bootstrap critical path, and the per-path
bootstrap in :mod:`repro.core.paths` performs it.

The cipher is deliberately simple but non-trivial: an order-dependent
program of the three primitive operations real YouTube ciphers used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SignatureError

#: Operation names of the cipher's primitive steps.
OP_REVERSE = "reverse"
OP_SWAP = "swap"  # swap position 0 with position k
OP_SLICE = "slice"  # drop the first k characters

Program = list[tuple[str, int]]


def _apply_operation(chars: list[str], op: str, k: int) -> list[str]:
    if op == OP_REVERSE:
        return chars[::-1]
    if op == OP_SWAP:
        if not chars:
            raise SignatureError("swap on empty signature")
        k = k % len(chars)
        swapped = chars[:]
        swapped[0], swapped[k] = swapped[k], swapped[0]
        return swapped
    if op == OP_SLICE:
        if k >= len(chars):
            raise SignatureError(f"slice of {k} exceeds signature length {len(chars)}")
        return chars[k:]
    raise SignatureError(f"unknown cipher operation {op!r}")


def _invert_program(program: Program) -> Program:
    """The decipher program: inverse operations in reverse order.

    ``slice`` is not invertible (it destroys characters), so encipher
    programs prepend padding instead of slicing; see
    :meth:`SignatureCipher.encipher`.
    """
    inverted: Program = []
    for op, k in reversed(program):
        if op == OP_SLICE:
            raise SignatureError("slice cannot appear in an invertible program")
        inverted.append((op, k))  # reverse and swap are involutions
    return inverted


@dataclass(frozen=True)
class SignatureCipher:
    """A concrete cipher program, shipped (inverted) in the decoder page."""

    program: tuple[tuple[str, int], ...]
    #: Number of junk prefix characters added before enciphering (the
    #: decoder's final step slices them off).
    pad: int = 3

    @classmethod
    def random(cls, rng: np.random.Generator, steps: int = 4, pad: int = 3) -> "SignatureCipher":
        """Draw a random invertible program (what a player build ships)."""
        if steps <= 0:
            raise SignatureError("cipher needs at least one step")
        ops: Program = []
        for _ in range(steps):
            if rng.random() < 0.5:
                ops.append((OP_REVERSE, 0))
            else:
                ops.append((OP_SWAP, int(rng.integers(1, 12))))
        return cls(tuple(ops), pad=pad)

    # -- server side ----------------------------------------------------------

    def encipher(self, signature: str, junk: str = "xqz") -> str:
        """Encipher a plain signature for embedding in the JSON response."""
        if not signature:
            raise SignatureError("empty signature")
        junk = (junk * self.pad)[: self.pad]
        chars = list(junk + signature)
        for op, k in self.program:
            chars = _apply_operation(chars, op, k)
        return "".join(chars)

    # -- client side ------------------------------------------------------------

    def decoder_program(self) -> Program:
        """The program the decoder page ships: inverse steps + final slice."""
        return _invert_program(list(self.program)) + [(OP_SLICE, self.pad)]

    def decoder_page_size(self) -> int:
        """Wire size of the decoder resource (player page with JS).

        Real player pages run ~100 KB; the constant matters only in that
        fetching it costs a request round trip plus a short transfer.
        """
        return 96 * 1024


def decipher(enciphered: str, program: Program) -> str:
    """Run a decoder program over an enciphered signature.

    >>> cipher = SignatureCipher(((OP_REVERSE, 0), (OP_SWAP, 2)), pad=1)
    >>> decipher(cipher.encipher("abc123"), cipher.decoder_program())
    'abc123'
    """
    chars = list(enciphered)
    for op, k in program:
        chars = _apply_operation(chars, op, k)
    return "".join(chars)
