"""Video objects: formats, metadata, and byte/time arithmetic.

The paper streams YouTube MP4 at HD 720p with 44,100 Hz audio (§5) and
explicitly does *not* adapt bitrate (§2): MSPlayer picks one format and
streams it at constant bitrate.  Formats are modelled after YouTube's
classic progressive "itag" table so the JSON the web proxy returns looks
like the real thing and examples can exercise format selection.

Byte/time arithmetic is the bridge between the network world (bytes)
and the player world (seconds of playout): with constant bitrate the
map is linear, which is what makes "40 seconds of pre-buffer" a
well-defined byte goal the schedulers chase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import bytes_of_video, seconds_of_video


@dataclass(frozen=True)
class VideoFormat:
    """One encoding profile of a video (a YouTube "itag")."""

    itag: int
    container: str
    resolution: str
    video_bitrate_bps: float
    audio_bitrate_bps: float = 128_000.0

    def __post_init__(self) -> None:
        if self.video_bitrate_bps <= 0 or self.audio_bitrate_bps < 0:
            raise ConfigError(f"invalid bitrates for itag {self.itag}")

    @property
    def total_bitrate_bytes_per_s(self) -> float:
        """Muxed stream rate in bytes/s (video + audio)."""
        return (self.video_bitrate_bps + self.audio_bitrate_bps) / 8.0

    @property
    def label(self) -> str:
        return f"{self.container}/{self.resolution}"


#: Progressive formats in the spirit of YouTube's 2014 itag table.  The
#: paper's experiments use itag 22 (MP4 720p, ~2.5 Mb/s video).
FORMATS: dict[int, VideoFormat] = {
    fmt.itag: fmt
    for fmt in (
        VideoFormat(18, "mp4", "360p", video_bitrate_bps=600_000.0, audio_bitrate_bps=96_000.0),
        VideoFormat(22, "mp4", "720p", video_bitrate_bps=2_500_000.0, audio_bitrate_bps=192_000.0),
        VideoFormat(
            37, "mp4", "1080p", video_bitrate_bps=4_300_000.0, audio_bitrate_bps=192_000.0
        ),
        VideoFormat(43, "webm", "360p", video_bitrate_bps=500_000.0, audio_bitrate_bps=128_000.0),
        VideoFormat(
            45, "webm", "720p", video_bitrate_bps=2_000_000.0, audio_bitrate_bps=192_000.0
        ),
    )
}

#: The format the paper evaluates with.
DEFAULT_ITAG = 22


@dataclass(frozen=True)
class VideoMeta:
    """Catalog entry: identity plus available formats.

    ``copyrighted`` marks videos whose stream URLs carry an enciphered
    signature (footnote 1): players must fetch the decoder page first.
    """

    video_id: str
    title: str
    author: str
    duration_s: float
    itags: tuple[int, ...] = field(default=(18, 22, 37))
    copyrighted: bool = False

    def __post_init__(self) -> None:
        if len(self.video_id) != 11:
            raise ConfigError(
                f"YouTube video ids are 11 literals, got {self.video_id!r} (§3.1)"
            )
        if self.duration_s <= 0:
            raise ConfigError("duration must be positive")
        if not self.itags:
            raise ConfigError("a video needs at least one format")
        for itag in self.itags:
            if itag not in FORMATS:
                raise ConfigError(f"unknown itag {itag}")

    def format(self, itag: int) -> VideoFormat:
        if itag not in self.itags:
            raise ConfigError(f"video {self.video_id} has no itag {itag}")
        return FORMATS[itag]

    @property
    def watch_url(self) -> str:
        """The URL shape users click (§3.1)."""
        return f"http://www.youtube.com/watch?v={self.video_id}"


class VideoAsset:
    """A concrete (video, format) pair: the byte stream being fetched."""

    def __init__(self, meta: VideoMeta, itag: int) -> None:
        self.meta = meta
        self.format = meta.format(itag)
        self.bitrate = self.format.total_bitrate_bytes_per_s
        self.size_bytes = bytes_of_video(meta.duration_s, self.bitrate)

    @property
    def video_id(self) -> str:
        return self.meta.video_id

    @property
    def itag(self) -> int:
        return self.format.itag

    @property
    def duration_s(self) -> float:
        return self.meta.duration_s

    def bytes_for_playback(self, seconds: float) -> int:
        """Bytes covering ``seconds`` of playout (clamped to the file)."""
        if seconds < 0:
            raise ConfigError("seconds must be non-negative")
        return min(bytes_of_video(seconds, self.bitrate), self.size_bytes)

    def playback_time(self, num_bytes: int) -> float:
        """Seconds of playout contained in ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigError("bytes must be non-negative")
        return seconds_of_video(min(num_bytes, self.size_bytes), self.bitrate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VideoAsset {self.video_id} itag={self.itag} "
            f"{self.format.label} {self.size_bytes}B>"
        )
