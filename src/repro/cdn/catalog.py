"""Video catalog and synthetic population.

The catalog is shared by every web proxy and video server in a
deployment (in reality the CDN replicates content everywhere the paper
cares about — popular videos are "replicated at different sites", §1).
A synthetic population generator produces realistic catalogs for
workload studies: Zipf-ish popularity, duration mix skewed toward short
clips with a long-video tail.
"""

from __future__ import annotations

import string

import numpy as np

from ..errors import ConfigError, VideoNotFoundError
from .videos import DEFAULT_ITAG, VideoAsset, VideoMeta

#: The alphabet YouTube draws video ids from (base64-url).
_ID_ALPHABET = string.ascii_letters + string.digits + "-_"


def make_video_id(rng: np.random.Generator) -> str:
    """Draw an 11-literal video id like ``qjT4T2gU9sM`` (§3.1)."""
    indices = rng.integers(0, len(_ID_ALPHABET), size=11)
    return "".join(_ID_ALPHABET[i] for i in indices)


class Catalog:
    """All videos a deployment can serve."""

    def __init__(self) -> None:
        self._videos: dict[str, VideoMeta] = {}

    def add(self, meta: VideoMeta) -> VideoMeta:
        if meta.video_id in self._videos:
            raise ConfigError(f"duplicate video id {meta.video_id}")
        self._videos[meta.video_id] = meta
        return meta

    def get(self, video_id: str) -> VideoMeta:
        try:
            return self._videos[video_id]
        except KeyError:
            raise VideoNotFoundError(f"no such video: {video_id!r}") from None

    def asset(self, video_id: str, itag: int = DEFAULT_ITAG) -> VideoAsset:
        return VideoAsset(self.get(video_id), itag)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._videos

    def __len__(self) -> int:
        return len(self._videos)

    def ids(self) -> list[str]:
        return list(self._videos)

    # -- synthetic population -------------------------------------------------

    @classmethod
    def synthetic(
        cls,
        rng: np.random.Generator,
        count: int = 50,
        copyrighted_fraction: float = 0.2,
        mean_duration_s: float = 240.0,
    ) -> "Catalog":
        """Generate a catalog of ``count`` videos.

        Durations are lognormal around ``mean_duration_s`` (most clips a
        few minutes, a fat tail of long ones); a fraction are flagged
        copyrighted so bootstrap paths exercise the signature-decoder
        detour of footnote 1.
        """
        if count <= 0:
            raise ConfigError("count must be positive")
        if not 0.0 <= copyrighted_fraction <= 1.0:
            raise ConfigError("copyrighted_fraction must be within [0, 1]")
        catalog = cls()
        sigma = 0.6
        mu = np.log(mean_duration_s) - 0.5 * sigma**2
        for index in range(count):
            video_id = make_video_id(rng)
            while video_id in catalog:  # pragma: no cover - astronomically rare
                video_id = make_video_id(rng)
            duration = float(np.clip(rng.lognormal(mu, sigma), 30.0, 3600.0))
            catalog.add(
                VideoMeta(
                    video_id=video_id,
                    title=f"Synthetic clip #{index}",
                    author=f"channel-{index % 7}",
                    duration_s=duration,
                    copyrighted=bool(rng.random() < copyrighted_fraction),
                )
            )
        return catalog

    def popularity_weights(
        self, rng: np.random.Generator, zipf_s: float = 1.1
    ) -> dict[str, float]:
        """Zipf popularity over the catalog (heavier head for larger ``s``).

        Returned weights sum to 1 and are suitable for
        ``rng.choice(ids, p=weights)`` in workload generators.
        """
        if zipf_s <= 0:
            raise ConfigError("zipf_s must be positive")
        ids = self.ids()
        order = rng.permutation(len(ids))
        ranks = np.empty(len(ids))
        ranks[order] = np.arange(1, len(ids) + 1)
        weights = ranks ** (-zipf_s)
        weights /= weights.sum()
        return dict(zip(ids, weights.tolist(), strict=True))
