"""The web proxy server application (§3.1, §4).

Responsibilities, exactly as the paper sequences them:

1. authenticate the request (OAuth 2.0 stub: a bearer developer key,
   §4's "authenticates the user (player type and/or the user account)");
2. resolve which network the client is calling from (the simulator
   hands us ``client_network`` — the public-address lookup in real life);
3. choose suitable video servers in that network (server selection [3]);
4. mint an access token valid for an hour, bound to the client and pool;
5. return video info as JSON — formats, sizes, title, author, hosts,
   token, and either a plain or an *enciphered* signature (footnote 1);
6. serve ``/player.js``, the decoder page copyrighted playback needs.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable

from ..errors import ServerUnavailableError, VideoNotFoundError
from ..http.messages import Request, Response
from .catalog import Catalog
from .jsonapi import build_video_info
from .signature import SignatureCipher
from .tokens import TokenMint
from .videos import VideoAsset


def stream_signature(video_id: str, itag: int, secret: bytes) -> str:
    """The plain per-stream signature the video server will re-derive."""
    material = f"{video_id}:{itag}".encode("utf-8") + secret
    return hashlib.sha1(material).hexdigest()


class WebProxyApp:
    """Application attached to proxy hosts via SimHTTPServer."""

    def __init__(
        self,
        catalog: Catalog,
        mint: TokenMint,
        select_hosts: Callable[[str], list[str]],
        clock: Callable[[], float],
        cipher: SignatureCipher,
        signature_secret: bytes,
        api_key: str | None = None,
    ) -> None:
        self.catalog = catalog
        self.mint = mint
        self.select_hosts = select_hosts
        self.clock = clock
        self.cipher = cipher
        self.signature_secret = signature_secret
        #: When set, requests must carry ``Authorization: Bearer <key>``.
        self.api_key = api_key
        self.info_requests = 0
        self.decoder_requests = 0

    # -- entry point -------------------------------------------------------------

    def __call__(self, request: Request, client_network: str) -> Response:
        if request.method != "GET":
            return Response.error(405)
        if request.path in ("/videoinfo", "/watch"):
            return self._video_info(request, client_network)
        if request.path == "/player.js":
            return self._decoder_page()
        return Response.error(404, f"no handler for {request.path}")

    # -- handlers ------------------------------------------------------------------

    def _video_info(self, request: Request, client_network: str) -> Response:
        if not self._authorized(request):
            return Response.error(401, "missing or invalid developer key")
        video_id = request.query.get("v", "")
        if not video_id:
            return Response.error(400, "missing v= parameter")
        try:
            meta = self.catalog.get(video_id)
        except VideoNotFoundError:
            return Response.error(404, f"unknown video {video_id}")
        try:
            hosts = self.select_hosts(client_network)
        except ServerUnavailableError as exc:
            return Response.error(503, str(exc))

        self.info_requests += 1
        client_address = request.headers.get("X-Client-Address", f"client.{client_network}")
        token = self.mint.issue(self.clock(), video_id, client_address, pool=client_network)
        sizes = {itag: VideoAsset(meta, itag).size_bytes for itag in meta.itags}
        signatures = {}
        for itag in meta.itags:
            plain = stream_signature(video_id, itag, self.signature_secret)
            signatures[itag] = self.cipher.encipher(plain) if meta.copyrighted else plain
        payload = build_video_info(
            meta,
            sizes=sizes,
            client_address=client_address,
            token=token,
            ttl_s=self.mint.ttl_s,
            pool=client_network,
            hosts=hosts,
            signatures=signatures,
            enciphered=meta.copyrighted,
        )
        return Response.json(payload)

    def _decoder_page(self) -> Response:
        """The player page containing the signature decoder (footnote 1).

        The decoder program is embedded as JSON; the body is padded to a
        realistic player-page size so fetching it costs an honest
        transfer, not just a round trip.
        """
        self.decoder_requests += 1
        program = self.cipher.decoder_program()
        core = json.dumps({"decoder": [[op, k] for op, k in program]}).encode("utf-8")
        padding = b"\n// " + b"minified player code " * 4
        target = self.cipher.decoder_page_size()
        body = core + padding * max((target - len(core)) // len(padding), 0)
        return Response(
            200,
            {"Content-Type": "application/javascript"},
            body=body,
        )

    # -- helpers -------------------------------------------------------------------

    def _authorized(self, request: Request) -> bool:
        if self.api_key is None:
            return True
        header = request.headers.get("Authorization", "")
        return header == f"Bearer {self.api_key}"


def parse_decoder_page(body: bytes) -> list[tuple[str, int]]:
    """Client side: extract the decoder program from ``/player.js``."""
    text = body.decode("utf-8", errors="replace")
    brace_end = text.index("}") + 1
    payload = json.loads(text[:brace_end])
    return [(str(op), int(k)) for op, k in payload["decoder"]]
