"""The video server application: token-checked HTTP range service.

This is the server MSPlayer's data plane talks to (§3.1): it validates
the access token and stream signature the web proxy issued, slices the
requested byte range out of the (virtual) video file, and answers 206.
Bodies are *virtual* — :class:`~repro.http.messages.Response` carries
``body_size`` and the fluid link charges the bytes — so simulating an
HD stream costs no memory.

Behavioural details that matter to the experiments:

* range requests are the unit of scheduling, so correctness of the
  slicing/clamping logic (RFC 7233) is what keeps the chunk ledger
  gap-free;
* expired/forged tokens and wrong-pool tokens earn 403 — MSPlayer
  re-bootstraps the path through the web proxy when it sees one;
* a draining/failed server answers 503 before dying completely, which
  exercises the source-failover path (§2 robustness).
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import RangeError, TokenError, VideoNotFoundError
from ..http.messages import Request, Response
from ..http.ranges import parse_range_header
from .catalog import Catalog
from .tokens import TokenMint
from .videos import VideoAsset
from .webproxy import stream_signature


class VideoServerApp:
    """Application attached to video hosts via SimHTTPServer."""

    def __init__(
        self,
        catalog: Catalog,
        mint: TokenMint,
        clock: Callable[[], float],
        pool: str,
        signature_secret: bytes,
        name: str = "videoserver",
    ) -> None:
        self.catalog = catalog
        self.mint = mint
        self.clock = clock
        #: The network pool this server belongs to; tokens are pool-bound.
        self.pool = pool
        self.signature_secret = signature_secret
        self.name = name
        #: Draining: answer 503 to new requests without dropping connections.
        self.draining = False
        self.range_requests = 0
        self.bytes_requested = 0

    def __call__(self, request: Request, client_network: str) -> Response:
        if request.method != "GET":
            return Response.error(405)
        if request.path != "/videoplayback":
            return Response.error(404, f"no handler for {request.path}")
        if self.draining:
            return Response.error(503, f"{self.name} is draining")

        query = request.query
        video_id = query.get("v", "")
        try:
            itag = int(query.get("itag", ""))
        except ValueError:
            return Response.error(400, "missing or malformed itag")

        try:
            asset = self.catalog.asset(video_id, itag)
        except VideoNotFoundError:
            return Response.error(404, f"unknown video {video_id}")
        except Exception:  # unknown itag for this video
            return Response.error(400, f"video {video_id} has no itag {itag}")

        failure = self._authorize(query, video_id)
        if failure is not None:
            return failure
        return self._serve_range(request, asset)

    # -- internals -----------------------------------------------------------

    def _authorize(self, query: dict[str, str], video_id: str) -> Response | None:
        token = query.get("token", "")
        if not token:
            return Response.error(401, "missing token")
        try:
            self.mint.verify(token, self.clock(), video_id, pool=self.pool)
        except TokenError as exc:
            return Response.error(403, f"token rejected: {exc}")
        expected = stream_signature(video_id, int(query["itag"]), self.signature_secret)
        if query.get("sig", "") != expected:
            return Response.error(403, "signature rejected")
        return None

    def _serve_range(self, request: Request, asset: VideoAsset) -> Response:
        range_header = request.headers.get("Range")
        if range_header is None:
            # Whole-file GET: what commercial players do for the big
            # pre-buffering chunk (§6).
            self.range_requests += 1
            self.bytes_requested += asset.size_bytes
            return Response(
                200,
                {
                    "Content-Type": f"video/{asset.format.container}",
                    "Accept-Ranges": "bytes",
                },
                body_size=asset.size_bytes,
            )
        try:
            byte_range = parse_range_header(range_header, asset.size_bytes)
            byte_range = byte_range.clamp(asset.size_bytes)
        except RangeError as exc:
            return Response.error(416, str(exc))
        self.range_requests += 1
        self.bytes_requested += byte_range.length
        return Response.partial_content(
            byte_range,
            asset.size_bytes,
            content_type=f"video/{asset.format.container}",
        )
