"""The video-info JSON exchanged with the web proxy (§3.1, §4).

The web proxy "encodes the token, together with the user's public IP
address and the video's information (available video formats and
quality, title, author, file size, video server domain names, …) in
JavaScript Object Notation format".  This module owns both directions:
servers build the payload, clients parse it into :class:`VideoInfo` and
synthesize ``videoplayback`` URLs from a chosen stream.

Parsing is strict — unknown statuses, missing fields, and malformed
stream entries raise rather than limp along, because a wrong URL costs
a real round trip in every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CDNError
from .videos import FORMATS, VideoMeta

#: JSON schema version, bumped if fields change shape.
SCHEMA = 1


@dataclass(frozen=True)
class StreamEntry:
    """One downloadable format of the video."""

    itag: int
    quality: str
    mime: str
    size_bytes: int
    #: Primary video server for this client, plus ordered fallbacks —
    #: the per-network source list MSPlayer keeps for failover (§2).
    hosts: tuple[str, ...]
    #: Plain signature (non-copyrighted) …
    signature: str = ""
    #: … or enciphered signature (copyrighted; needs the decoder page).
    enciphered_signature: str = ""

    @property
    def needs_decipher(self) -> bool:
        return bool(self.enciphered_signature)


@dataclass(frozen=True)
class VideoInfo:
    """Everything the player learns from one web-proxy exchange."""

    video_id: str
    title: str
    author: str
    duration_s: float
    client_address: str
    token: str
    token_expires_in_s: float
    pool: str
    streams: tuple[StreamEntry, ...] = field(default_factory=tuple)
    #: Where to fetch the signature decoder, when any stream needs it.
    decoder_path: str = "/player.js"

    def stream(self, itag: int) -> StreamEntry:
        for entry in self.streams:
            if entry.itag == itag:
                return entry
        raise CDNError(f"video {self.video_id} offers no itag {itag}")

    def playback_target(self, itag: int, signature: str) -> str:
        """Build the ``videoplayback`` request target (§4's synthesized URL)."""
        return (
            f"/videoplayback?v={self.video_id}&itag={itag}"
            f"&token={self.token}&sig={signature}&pool={self.pool}"
        )


def build_video_info(
    meta: VideoMeta,
    sizes: dict[int, int],
    client_address: str,
    token: str,
    ttl_s: float,
    pool: str,
    hosts: list[str],
    signatures: dict[int, str],
    enciphered: bool,
) -> dict:
    """Server side: assemble the JSON payload dict."""
    streams = []
    for itag in meta.itags:
        fmt = FORMATS[itag]
        signature = signatures[itag]
        entry = {
            "itag": itag,
            "quality": fmt.resolution,
            "mime": f"video/{fmt.container}",
            "size": sizes[itag],
            "hosts": hosts,
        }
        if enciphered:
            entry["s"] = signature  # enciphered form uses the short key, like the real API
        else:
            entry["signature"] = signature
        streams.append(entry)
    # Real get_video_info responses run ~20 packets (§3.2: "delivered
    # within two round trips, slightly less than 20 packets"): caption
    # tracks, thumbnails, ad policy, per-format metadata.  Pad to that
    # size so the ψ = 6R + Δ1 + Δ2 bootstrap cost emerges from the
    # transfer itself rather than being hard-coded.
    filler = "m" * 24_000
    return {
        "schema": SCHEMA,
        "status": "ok",
        "meta_blob": filler,
        "video_id": meta.video_id,
        "title": meta.title,
        "author": meta.author,
        "duration": meta.duration_s,
        "client_ip": client_address,
        "token": token,
        "expires_in": ttl_s,
        "pool": pool,
        "streams": streams,
        "decoder": "/player.js" if enciphered else "",
    }


def parse_video_info(payload: object) -> VideoInfo:
    """Client side: validate and lift the JSON payload."""
    if not isinstance(payload, dict):
        raise CDNError(f"video info must be a JSON object, got {type(payload).__name__}")
    if payload.get("schema") != SCHEMA:
        raise CDNError(f"unsupported video-info schema {payload.get('schema')!r}")
    if payload.get("status") != "ok":
        raise CDNError(f"video info status {payload.get('status')!r}")
    try:
        streams = []
        for raw in payload["streams"]:
            streams.append(
                StreamEntry(
                    itag=int(raw["itag"]),
                    quality=str(raw["quality"]),
                    mime=str(raw["mime"]),
                    size_bytes=int(raw["size"]),
                    hosts=tuple(raw["hosts"]),
                    signature=str(raw.get("signature", "")),
                    enciphered_signature=str(raw.get("s", "")),
                )
            )
        info = VideoInfo(
            video_id=str(payload["video_id"]),
            title=str(payload["title"]),
            author=str(payload["author"]),
            duration_s=float(payload["duration"]),
            client_address=str(payload["client_ip"]),
            token=str(payload["token"]),
            token_expires_in_s=float(payload["expires_in"]),
            pool=str(payload["pool"]),
            streams=tuple(streams),
            decoder_path=str(payload.get("decoder") or "/player.js"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CDNError(f"malformed video info: {exc!r}") from exc
    if not info.streams:
        raise CDNError("video info carries no streams")
    for entry in info.streams:
        if not entry.hosts:
            raise CDNError(f"stream itag={entry.itag} lists no hosts")
        if not entry.signature and not entry.enciphered_signature:
            raise CDNError(f"stream itag={entry.itag} carries no signature")
    return info
