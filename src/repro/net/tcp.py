"""TCP connection model over a fluid link.

MSPlayer deliberately runs *legacy single-path TCP* on each interface
(§2: middleboxes strip MPTCP options, so plain TCP is the deployable
choice).  What the chunk scheduler feels from TCP is:

* connection setup latency (3-way handshake: one RTT);
* one idle RTT between sending a range request and the first response
  byte — the per-chunk overhead that makes small chunks slow (Fig. 3);
* slow-start: a fresh (or long-idle) connection ramps its window from
  ``IW`` segments, doubling per RTT, so short transfers never reach
  link rate — the reason 16 KB chunks are disproportionately bad;
* steady state: competing flows share the bottleneck (handled by
  :class:`~repro.net.link.Link`'s max-min allocation).

We model the congestion window as a *rate cap* ``cwnd / RTT`` on the
link flow, doubled every RTT until the flow is no longer cap-limited.
The doubling schedule is closed-form: the link computes the doubling
instants analytically and folds them into its next-completion wake-up
(see :meth:`repro.net.link.Link._state_changed`), so slow start costs
no pacer process and no per-doubling timeout events.  The window
persists across requests on a persistent connection and collapses back
to ``IW`` after an idle period
(RFC 2861 congestion-window validation), which matters for the ON/OFF
re-buffering phase: every OFF period costs a fresh ramp-up.

CUBIC vs Reno dynamics beyond slow start are intentionally not
distinguished: at the paper's bandwidth-delay products the experiments
are dominated by handshakes, request RTTs, and slow start; steady state
is capacity-share-limited either way.  (The testbed servers ran CUBIC —
§5; we note this substitution in DESIGN.md.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError, ConnectionClosedError, LinkDownError, NetworkError
from .env import Environment
from .latency import LatencyProcess
from .link import FlowHandle, Link
from .tls import TLSParams, tls_handshake_duration


@dataclass(frozen=True, slots=True)
class TCPParams:
    """Tunable constants of the connection model."""

    #: Maximum segment size in bytes (Ethernet-ish default).
    mss: int = 1448
    #: Initial congestion window in segments (RFC 6928).
    initial_window: int = 10
    #: Idle time after which cwnd collapses back to IW (RFC 2861-style).
    idle_reset_after: float = 1.0
    #: Upper bound on cwnd in bytes (receive-window stand-in).
    max_window: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.mss <= 0 or self.initial_window <= 0:
            raise ConfigError("mss and initial_window must be positive")
        if self.idle_reset_after < 0:
            raise ConfigError("idle_reset_after must be non-negative")
        if self.max_window < self.mss * self.initial_window:
            raise ConfigError("max_window smaller than the initial window")

    @property
    def initial_window_bytes(self) -> int:
        return self.mss * self.initial_window


class TransferResult:
    """Timing record for one request/response exchange."""

    __slots__ = ("requested_at", "first_byte_at", "completed_at", "num_bytes")

    def __init__(
        self, requested_at: float, first_byte_at: float, completed_at: float, num_bytes: int
    ) -> None:
        self.requested_at = requested_at
        self.first_byte_at = first_byte_at
        self.completed_at = completed_at
        self.num_bytes = num_bytes

    @property
    def duration(self) -> float:
        """Request-to-last-byte time — the ``T_i`` of the paper's §3.3."""
        return self.completed_at - self.requested_at

    @property
    def throughput(self) -> float:
        """``w_i = S_i / T_i`` exactly as the schedulers measure it."""
        return self.num_bytes / self.duration if self.duration > 0 else math.inf


class TCPConnection:
    """A client-side TCP connection bound to one interface's link.

    The connection is *persistent*: many request/response exchanges may
    run sequentially over it, as MSPlayer does with HTTP keep-alive
    range requests (§4).  Concurrent exchanges on one connection are a
    programming error and raise.
    """

    __slots__ = (
        "env",
        "link",
        "latency",
        "params",
        "name",
        "connected",
        "closed",
        "secure",
        "_cwnd",
        "_last_activity",
        "_busy",
        "_current_flow",
        "bytes_received",
        "request_count",
    )

    def __init__(
        self,
        env: Environment,
        link: Link,
        latency: LatencyProcess,
        params: TCPParams | None = None,
        name: str = "tcp",
    ) -> None:
        self.env = env
        self.link = link
        self.latency = latency
        self.params = params or TCPParams()
        self.name = name
        self.connected = False
        self.closed = False
        self.secure = False
        self._cwnd = float(self.params.initial_window_bytes)
        self._last_activity = env.now
        self._busy = False
        self._current_flow: FlowHandle | None = None
        #: Cumulative bytes received, for per-path traffic accounting.
        self.bytes_received = 0
        #: Exchange count, for request-overhead accounting.
        self.request_count = 0

    # -- lifecycle -----------------------------------------------------------

    def connect(self):
        """Process: TCP 3-way handshake (one RTT before data can flow)."""
        self._check_usable(allow_unconnected=True)
        yield self.env.pooled_timeout(2.0 * self.latency.sample())
        if self.link.is_down:
            raise LinkDownError(f"{self.name}: link went down during handshake")
        self.connected = True
        self._last_activity = self.env.now

    def secure_handshake(self, tls: TLSParams, resumed: bool = False):
        """Process: TLS handshake per the Fig. 1 message sequence."""
        self._check_usable()
        rtt = 2.0 * self.latency.sample()
        yield self.env.pooled_timeout(tls_handshake_duration(rtt, tls, resumed=resumed))
        if self.link.is_down:
            raise LinkDownError(f"{self.name}: link went down during TLS handshake")
        self.secure = True
        self._last_activity = self.env.now

    def close(self) -> None:
        """Close the connection; aborts any in-flight transfer."""
        if self.closed:
            return
        self.closed = True
        self.connected = False
        if self._current_flow is not None and self._current_flow.active:
            self._current_flow.abort(ConnectionClosedError(f"{self.name} closed"))

    def reset(self, error: NetworkError | None = None) -> None:
        """Model a RST / path break: the connection dies immediately."""
        if self.closed:
            return
        self.closed = True
        self.connected = False
        if self._current_flow is not None and self._current_flow.active:
            self._current_flow.abort(
                error or NetworkError(f"{self.name}: connection reset")
            )

    # -- data transfer ---------------------------------------------------------

    def exchange(self, response_bytes: int, server_delay: float = 0.0):
        """Process: one request/response; returns a :class:`TransferResult`.

        Timeline charged:

        1. request upstream + server processing + first byte downstream:
           one RTT plus ``server_delay`` (requests are header-sized, so
           their serialization time is negligible against the RTT);
        2. response body as a fluid flow on the link, rate-capped by the
           congestion window, which the link's closed-form slow-start
           schedule doubles every RTT until the cap stops binding.
        """
        self._check_usable()
        if response_bytes <= 0:
            raise ConfigError(f"response_bytes must be positive, got {response_bytes}")
        if self._busy:
            raise ConnectionClosedError(
                f"{self.name}: pipelined exchanges on one connection are not modelled"
            )
        self._busy = True
        try:
            requested_at = self.env.now
            self.request_count += 1
            self._maybe_idle_reset()
            rtt = 2.0 * self.latency.sample()
            yield self.env.pooled_timeout(rtt + max(server_delay, 0.0))
            if self.closed:
                raise ConnectionClosedError(f"{self.name} closed while waiting")
            if self.link.is_down:
                raise LinkDownError(f"{self.name}: link down at first byte")
            first_byte_at = self.env.now

            flow = self.link.start_flow(
                response_bytes,
                cap=self._cwnd / rtt,
                ramp_rtt=rtt,
                ramp_limit=float(self.params.max_window) / rtt,
            )
            self._current_flow = flow
            try:
                yield flow.done
            except BaseException:
                # Aborted mid-transfer: warm the next request with the
                # window the ramp had reached.  Catch the cap up first —
                # the link stops advancing a detached flow's schedule.
                flow._advance_ramp(self.env.now)
                self._cwnd = float(
                    min(
                        max(flow.cap * rtt, self.params.initial_window_bytes),
                        self.params.max_window,
                    )
                )
                raise
            finally:
                self._current_flow = None
            completed_at = self.env.now
            self.bytes_received += response_bytes
            self._last_activity = completed_at

            # Remember the achieved window so the next request on this
            # persistent connection starts warm.
            duration = max(completed_at - first_byte_at, 1e-9)
            achieved = response_bytes / duration * rtt
            self._cwnd = float(
                min(max(achieved, self.params.initial_window_bytes), self.params.max_window)
            )
            return TransferResult(requested_at, first_byte_at, completed_at, response_bytes)
        finally:
            self._busy = False

    # -- internals ---------------------------------------------------------------

    def _maybe_idle_reset(self) -> None:
        idle = self.env.now - self._last_activity
        if idle > self.params.idle_reset_after:
            self._cwnd = float(self.params.initial_window_bytes)

    def _check_usable(self, allow_unconnected: bool = False) -> None:
        if self.closed:
            raise ConnectionClosedError(f"{self.name} is closed")
        if self.link.is_down:
            raise LinkDownError(f"{self.name}: link is down")
        if not allow_unconnected and not self.connected:
            raise ConnectionClosedError(f"{self.name} is not connected")

    @property
    def cwnd(self) -> float:
        """Current congestion window estimate in bytes."""
        return self._cwnd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else ("open" if self.connected else "new")
        return f"<TCPConnection {self.name} {state} cwnd={self._cwnd:.0f}B>"
