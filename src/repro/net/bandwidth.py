"""Time-varying link capacity processes.

The paper's experiments run over real WiFi and LTE links whose capacity
fluctuates on sub-second to multi-second timescales; the chunk
schedulers exist precisely because of this variability (§3.3).  We model
capacity as a piecewise-constant random process: each process emits
``(duration, rate)`` segments, and :class:`repro.net.link.Link` applies
them to its fluid model.

Models provided:

* :class:`ConstantBandwidth` — calibration runs and unit tests;
* :class:`MarkovBandwidth` — two-or-more-state Markov modulation, the
  classic model for WiFi contention / LTE cell-load shifts; produces the
  "large bursts" the harmonic-mean estimator is designed to resist;
* :class:`ARLogNormalBandwidth` — AR(1) in log-rate, capturing smooth
  correlated drift around a mean;
* :class:`TraceBandwidth` — replay of a recorded trace;
* :class:`CompositeBandwidth` — multiplicative superposition (e.g. AR(1)
  drift × Markov outages), used by the "youtube" wide-area profile.

All randomness comes from a generator passed in explicitly, so trials
are reproducible (see :mod:`repro.rng`).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..errors import ConfigError

#: A capacity segment: hold ``rate`` bytes/s for ``duration`` seconds.
Segment = tuple[float, float]


class BandwidthProcess:
    """Interface: an endless iterator of piecewise-constant capacity segments."""

    __slots__ = ("mean_rate",)

    #: Long-run mean rate in bytes/s, used for calibration and reporting.
    mean_rate: float

    def segments(self) -> Iterator[Segment]:
        """Yield ``(duration_s, rate_bytes_per_s)`` forever."""
        raise NotImplementedError

    def expected_mean(self) -> float:
        """The analytic long-run mean, for sanity checks in tests."""
        return self.mean_rate


class ConstantBandwidth(BandwidthProcess):
    """Fixed capacity; segments of one second keep downstream logic uniform.

    >>> process = ConstantBandwidth(1_000_000.0)
    >>> next(process.segments())
    (1.0, 1000000.0)
    """

    __slots__ = ("segment_duration",)

    def __init__(self, rate: float, segment_duration: float = 1.0) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        if segment_duration <= 0:
            raise ConfigError("segment_duration must be positive")
        self.mean_rate = float(rate)
        self.segment_duration = float(segment_duration)

    def segments(self) -> Iterator[Segment]:
        while True:
            yield (self.segment_duration, self.mean_rate)


class MarkovBandwidth(BandwidthProcess):
    """Continuous-time Markov-modulated capacity.

    ``states`` is a sequence of ``(rate, mean_holding_time)`` pairs.  At
    each transition the next state is drawn from ``transitions`` (row-
    stochastic matrix) or uniformly among the *other* states if no
    matrix is given.  Holding times are exponential, the standard model
    for load shifts on shared wireless channels.
    """

    __slots__ = ("states", "_rng", "_initial_state", "_transitions")

    def __init__(
        self,
        states: Sequence[tuple[float, float]],
        rng: np.random.Generator,
        transitions: Sequence[Sequence[float]] | None = None,
        initial_state: int | None = None,
    ) -> None:
        if len(states) < 2:
            raise ConfigError("MarkovBandwidth needs at least two states")
        for rate, holding in states:
            if rate <= 0 or holding <= 0:
                raise ConfigError(f"invalid state (rate={rate}, holding={holding})")
        self.states = [(float(r), float(h)) for r, h in states]
        self._rng = rng
        self._initial_state = initial_state
        n = len(states)
        if transitions is None:
            # Uniform among other states.
            self._transitions = np.full((n, n), 1.0 / (n - 1))
            np.fill_diagonal(self._transitions, 0.0)
        else:
            matrix = np.asarray(transitions, dtype=float)
            if matrix.shape != (n, n):
                raise ConfigError(f"transition matrix must be {n}x{n}")
            if not np.allclose(matrix.sum(axis=1), 1.0):
                raise ConfigError("transition matrix rows must sum to 1")
            if np.any(np.diag(matrix) > 0):
                raise ConfigError("self-transitions are not allowed (merge holding times)")
            self._transitions = matrix
        self.mean_rate = self._stationary_mean()

    def _stationary_mean(self) -> float:
        """Time-weighted stationary mean rate of the chain."""
        n = len(self.states)
        holding = np.array([h for _, h in self.states])
        rates_out = 1.0 / holding
        # Generator matrix Q: off-diagonal q_ij = rate_out_i * P_ij.
        q = self._transitions * rates_out[:, None]
        np.fill_diagonal(q, -rates_out)
        # Solve pi Q = 0, sum(pi) = 1.
        a = np.vstack([q.T, np.ones(n)])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        rates = np.array([r for r, _ in self.states])
        return float(pi @ rates)

    def segments(self) -> Iterator[Segment]:
        n = len(self.states)
        if self._initial_state is not None:
            state = self._initial_state
        else:
            state = int(self._rng.integers(0, n))
        while True:
            rate, holding = self.states[state]
            duration = float(self._rng.exponential(holding))
            # Clamp pathological zero-length draws so the link process
            # always makes progress.
            yield (max(duration, 1e-6), rate)
            state = int(self._rng.choice(n, p=self._transitions[state]))


class ARLogNormalBandwidth(BandwidthProcess):
    """AR(1) process in log-rate, sampled on a fixed interval.

    ``log rate_t = (1-rho) * log mean + rho * log rate_{t-1} + eps`` with
    ``eps ~ Normal(0, sigma * sqrt(1 - rho^2))``, so the *stationary*
    std of log-rate is ``sigma`` regardless of ``rho``.  Rates are
    clamped to ``[floor, ceiling]`` to keep the fluid model sane.
    """

    __slots__ = ("sigma", "rho", "interval", "floor", "ceiling", "_rng", "_mu")

    def __init__(
        self,
        mean_rate: float,
        sigma: float,
        rng: np.random.Generator,
        rho: float = 0.8,
        interval: float = 0.5,
        floor_fraction: float = 0.1,
        ceiling_fraction: float = 4.0,
    ) -> None:
        if mean_rate <= 0:
            raise ConfigError("mean_rate must be positive")
        if not 0.0 <= rho < 1.0:
            raise ConfigError(f"rho must be in [0, 1), got {rho}")
        if sigma < 0:
            raise ConfigError("sigma must be non-negative")
        if interval <= 0:
            raise ConfigError("interval must be positive")
        self.mean_rate = float(mean_rate)
        self.sigma = float(sigma)
        self.rho = float(rho)
        self.interval = float(interval)
        self.floor = floor_fraction * mean_rate
        self.ceiling = ceiling_fraction * mean_rate
        self._rng = rng
        # The lognormal mean exceeds exp(mu); correct mu so that the
        # *linear* mean matches mean_rate: E[X] = exp(mu + sigma^2/2).
        self._mu = np.log(mean_rate) - 0.5 * sigma**2

    def segments(self) -> Iterator[Segment]:
        innovation_std = self.sigma * np.sqrt(1.0 - self.rho**2)
        log_rate = self._mu + self._rng.normal(0.0, self.sigma)
        while True:
            rate = float(np.clip(np.exp(log_rate), self.floor, self.ceiling))
            yield (self.interval, rate)
            log_rate = (
                (1.0 - self.rho) * self._mu
                + self.rho * log_rate
                + self._rng.normal(0.0, innovation_std)
            )


class TraceBandwidth(BandwidthProcess):
    """Replay a recorded ``(duration, rate)`` trace, optionally looping."""

    __slots__ = ("trace", "loop")

    def __init__(self, trace: Sequence[Segment], loop: bool = True) -> None:
        if not trace:
            raise ConfigError("trace must be non-empty")
        for duration, rate in trace:
            if duration <= 0 or rate <= 0:
                raise ConfigError(f"invalid trace segment ({duration}, {rate})")
        self.trace = [(float(d), float(r)) for d, r in trace]
        self.loop = loop
        total_time = sum(d for d, _ in self.trace)
        self.mean_rate = sum(d * r for d, r in self.trace) / total_time

    def segments(self) -> Iterator[Segment]:
        while True:
            yield from self.trace
            if not self.loop:
                # Hold the last rate forever once the trace is exhausted.
                last_rate = self.trace[-1][1]
                while True:
                    yield (3600.0, last_rate)


class CompositeBandwidth(BandwidthProcess):
    """Multiplicative superposition of two processes.

    The second process is interpreted as a dimensionless *modulation*
    whose rates are divided by its own mean, so the composite's mean is
    approximately the first process's mean.  Used by the wide-area
    "youtube" profile: smooth AR(1) drift × Markov load shifts.
    """

    __slots__ = ("base", "modulation")

    def __init__(self, base: BandwidthProcess, modulation: BandwidthProcess) -> None:
        self.base = base
        self.modulation = modulation
        self.mean_rate = base.mean_rate

    def segments(self) -> Iterator[Segment]:
        base_iter = self.base.segments()
        mod_iter = self.modulation.segments()
        base_left, base_rate = next(base_iter)
        mod_left, mod_rate = next(mod_iter)
        scale = self.modulation.mean_rate
        while True:
            duration = min(base_left, mod_left)
            yield (duration, base_rate * (mod_rate / scale))
            base_left -= duration
            mod_left -= duration
            if base_left <= 1e-12:
                base_left, base_rate = next(base_iter)
            if mod_left <= 1e-12:
                mod_left, mod_rate = next(mod_iter)
