"""Pluggable event schedulers: binary heap and calendar queue.

The environment's pending-event store is a *scheduler*: a total order
over ``(time, priority, FIFO-counter)`` entries with ``push``-family
operations, ``pop`` and ``peek``.  Two pure-python implementations live
here —

* :class:`HeapScheduler` — the classic global binary heap (``heapq``),
  the seed kernel and the default;
* :class:`CalendarScheduler` — a calendar queue [Brown 1988]: fixed-
  width time buckets covering a near-future window, an unsorted
  far-future overflow list, lazy per-bucket sorting, and automatic
  width resize at window turnover.  Dispatch order is bit-identical to
  the heap's (the same ``(time, priority, counter)`` total order), but
  the common operations are O(1) list appends/pops instead of O(log n)
  sift chains, which wins on both the small steady-state queues of the
  paper experiments and the thousands-deep queues of population runs;

plus the selection machinery (``REPRO_KERNEL`` / ``--kernel``, resolved
lazily like ``REPRO_IPC``) and the optional compiled core: when the
``repro.net._ckernel`` extension is built (``python setup.py
build_ext --inplace``; best-effort, see ``setup.py``),
``REPRO_KERNEL=compiled`` selects its C implementation of the calendar
queue; otherwise the name falls back to this module's pure-python
calendar, which remains the tested source of truth.

Entry layout (shared by every scheduler, ordered by tuple comparison —
the counter is unique, so payload slots are never compared):

* ``(time, priority, counter, event, None)`` — dispatch ``event``;
* ``(time, priority, counter, event, process)`` — direct resume of
  ``process`` with the already-processed ``event`` (dropped if stale);
* ``(time, priority, counter, callback)`` — fast lane: call the bare
  callable, no Event machinery at all (note: a 4-tuple — the fast lane
  does not pay for the ``None`` process slot).
"""

from __future__ import annotations

import math
import os
from heapq import heappop, heappush
from collections.abc import Callable
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # import cycle: env.py imports this module
    from .simclock import SimClock

__all__ = [
    "CalendarScheduler",
    "HeapScheduler",
    "KERNELS",
    "compiled_core",
    "make_scheduler",
    "resolve_kernel",
    "set_default_kernel",
]

#: Valid ``REPRO_KERNEL`` / ``--kernel`` values.
KERNELS = ("heapq", "calendar", "compiled")

#: Process-wide default set by :func:`set_default_kernel` (the worker-
#: side kernel pin shipped by the execution engine, and the CLI/Study
#: ``--kernel`` override).  Checked before the environment variable.
_DEFAULT_KERNEL: str | None = None


def set_default_kernel(kernel: str | None) -> str | None:
    """Pin (or with ``None`` unpin) the process-wide default kernel.

    Worker processes inherit their environment at fork time, so a
    ``REPRO_KERNEL`` set in the parent after the shared pools forked
    would silently not reach them; the engines instead resolve the
    kernel parent-side and ship the name with each work unit, pinning
    it here before the unit runs.  Returns the previous value so
    scoped overrides can restore it.
    """
    global _DEFAULT_KERNEL
    previous = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = kernel
    return previous


def resolve_kernel(kernel: str | None = None) -> str:
    """Turn a ``--kernel`` / ``REPRO_KERNEL``-style value into a name.

    ``None`` consults the process-wide default, then ``REPRO_KERNEL``;
    unset means ``"heapq"`` (the seed kernel stays the default until
    calendar parity is proven in production use).  ``"compiled"``
    degrades to ``"calendar"`` when the extension is not built — the
    selection is best-effort by contract, like the ipc backend.
    """
    if kernel is None:
        kernel = _DEFAULT_KERNEL or os.environ.get("REPRO_KERNEL") or "heapq"
    token = str(kernel).strip().lower()
    if token not in KERNELS:
        raise ConfigError(
            f"unknown kernel {token!r}; expected one of {', '.join(KERNELS)}"
        )
    if token == "compiled" and compiled_core() is None:
        return "calendar"
    return token


def compiled_core() -> type | None:
    """The compiled scheduler class, or ``None`` when not built."""
    try:
        from . import _ckernel  # type: ignore[attr-defined]
    except ImportError:
        return None
    return _ckernel.CalendarScheduler


def make_scheduler(kernel: str) -> HeapScheduler | CalendarScheduler:
    """Instantiate the scheduler for a resolved kernel name."""
    if kernel == "heapq":
        return HeapScheduler()
    if kernel == "calendar":
        return CalendarScheduler()
    if kernel == "compiled":
        compiled = compiled_core()
        if compiled is None:  # pragma: no cover - resolve_kernel degrades first
            return CalendarScheduler()
        return compiled()
    raise ConfigError(f"unknown kernel {kernel!r}")  # pragma: no cover


class HeapScheduler:
    """The seed kernel's global binary heap, behind the scheduler API."""

    __slots__ = ("_heap", "_counter", "_n")

    kernel = "heapq"

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._counter = 0  # FIFO tie-breaker for co-timed entries
        self._n = 0

    def schedule(self, when: float, priority: int, event) -> None:
        self._counter += 1
        self._n += 1
        heappush(self._heap, (when, priority, self._counter, event, None))

    def schedule_resume(self, when: float, priority: int, event, process) -> None:
        self._counter += 1
        self._n += 1
        heappush(self._heap, (when, priority, self._counter, event, process))

    def schedule_callback(self, when: float, priority: int, callback) -> None:
        self._counter += 1
        self._n += 1
        heappush(self._heap, (when, priority, self._counter, callback))

    def pop(self) -> tuple:
        self._n -= 1
        return heappop(self._heap)

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else math.inf

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0


#: Calendar geometry: bucket count is fixed; the *width* adapts.  512
#: buckets keeps the near-window array cache-friendly while giving the
#: width policy enough room to spread a full window at ~O(1) events per
#: bucket.
_NBUCKETS = 512

#: Width policy cap: at window turnover the overflow's observed span
#: spreads at ~1 entry per bucket (Brown's average-gap estimate), but
#: over at most half the buckets (the other half absorbs events
#: scheduled *during* the window), floored so a window always advances.
_SPREAD_FRACTION = _NBUCKETS // 2


class CalendarScheduler:
    """A calendar queue with lazy-sorted buckets and a far overflow.

    Geometry: ``_NBUCKETS`` fixed-width buckets cover the near window
    ``[base, base + nbuckets * width)``; entries beyond it accumulate
    unsorted in ``_far``.  Buckets are plain lists: a push is an
    ``append`` that marks the bucket dirty, and the first pop from a
    dirty bucket sorts it *descending* once so subsequent pops are
    O(1) ``list.pop()`` from the end.  Simulated time is monotonic, so
    a cursor walks the buckets left to right; when the window is
    exhausted the queue *rebases*: the far list is scanned once for its
    span, the width is resized to spread that span at ~2 entries per
    bucket (the "automatic resize"), and the far entries are dealt into
    the new window.

    Ordering is exactly the heap's: the bucket index is a monotonic
    function of time (equal times share a bucket), so cross-bucket
    order is strict time order and the in-bucket sort settles
    ``(priority, counter)`` ties.  Late entries that land *behind* the
    cursor (possible only after a rebase moved ``base`` past ``now``)
    are clamped into the cursor bucket, where the sort restores their
    place — every entry behind the cursor is, by construction, earlier
    than everything still queued.
    """

    __slots__ = (
        "_buckets",
        "_dirty",
        "_base",
        "_width",
        "_inv_width",
        "_cursor",
        "_far",
        "_far_min",
        "_counter",
        "_n",
    )

    kernel = "calendar"

    def __init__(self, width: float = 0.001) -> None:
        if width <= 0:
            raise ConfigError(f"bucket width must be positive, got {width}")
        self._buckets: list[list[tuple]] = [[] for _ in range(_NBUCKETS)]
        self._dirty = [False] * _NBUCKETS
        self._base = 0.0
        self._width = width
        self._inv_width = 1.0 / width
        self._cursor = 0
        self._far: list[tuple] = []
        self._far_min = math.inf
        self._counter = 0
        self._n = 0

    # -- scheduling -------------------------------------------------------
    #
    # The three entry points duplicate the insert arithmetic on purpose:
    # they are the kernel's hottest few lines, and a shared _insert would
    # cost one extra Python call per scheduled event.

    def schedule(self, when: float, priority: int, event) -> None:
        self._counter = counter = self._counter + 1
        self._n += 1
        offset = (when - self._base) * self._inv_width
        if offset < _NBUCKETS:
            # A (rare) entry behind the cursor — or behind the window
            # base entirely, possible after a run(until=...) boundary
            # left base past now — is earlier than everything still
            # queued: clamp into the cursor bucket, whose sort restores
            # its place (int() on a negative offset truncates toward
            # zero, so the clamp below catches every behind-base case).
            # The float comparison also routes +inf times to the far
            # list instead of overflowing int().
            index = int(offset)
            if index < self._cursor:
                index = self._cursor
            self._buckets[index].append((when, priority, counter, event, None))
            self._dirty[index] = True
        else:
            self._far.append((when, priority, counter, event, None))
            if when < self._far_min:
                self._far_min = when

    def schedule_resume(self, when: float, priority: int, event, process) -> None:
        self._counter = counter = self._counter + 1
        self._n += 1
        offset = (when - self._base) * self._inv_width
        if offset < _NBUCKETS:
            index = int(offset)
            if index < self._cursor:
                index = self._cursor
            self._buckets[index].append(
                (when, priority, counter, event, process)
            )
            self._dirty[index] = True
        else:
            self._far.append((when, priority, counter, event, process))
            if when < self._far_min:
                self._far_min = when

    def schedule_callback(self, when: float, priority: int, callback) -> None:
        self._counter = counter = self._counter + 1
        self._n += 1
        offset = (when - self._base) * self._inv_width
        if offset < _NBUCKETS:
            index = int(offset)
            if index < self._cursor:
                index = self._cursor
            self._buckets[index].append((when, priority, counter, callback))
            self._dirty[index] = True
        else:
            self._far.append((when, priority, counter, callback))
            if when < self._far_min:
                self._far_min = when

    def make_call_later(
        self,
        clock: SimClock,
        priority: int,
        clock_error: type[Exception],
    ) -> Callable[[float, Callable[[], None]], None]:
        """A bound ``call_later(delay, callback)`` for ``clock``.

        The environment installs this closure as its instance-level
        ``call_later`` when this scheduler is active: the fast lane's
        push then costs one call frame instead of two, with the insert
        arithmetic from :meth:`schedule_callback` inlined against
        captured state.  ``_buckets`` and ``_dirty`` are captured as
        list objects (never replaced, only mutated); ``_far`` is
        re-read each push because :meth:`_rebase` swaps it.
        """
        scheduler = self
        buckets = self._buckets
        dirty = self._dirty

        def call_later(delay: float, callback: Callable[[], None]) -> None:
            if delay < 0:
                raise clock_error(
                    f"cannot schedule a callback {delay} seconds in the past"
                )
            when = clock._now + delay
            scheduler._counter = counter = scheduler._counter + 1
            scheduler._n += 1
            offset = (when - scheduler._base) * scheduler._inv_width
            if offset < _NBUCKETS:
                index = int(offset)
                if index < scheduler._cursor:
                    index = scheduler._cursor
                buckets[index].append((when, priority, counter, callback))
                dirty[index] = True
            else:
                scheduler._far.append((when, priority, counter, callback))
                if when < scheduler._far_min:
                    scheduler._far_min = when

        return call_later

    # -- dequeue ----------------------------------------------------------

    def pop(self) -> tuple:
        # Common case inlined: the cursor bucket is non-empty and clean
        # (steady-state dispatch pops several entries per sort), so no
        # _advance call is paid.
        cursor = self._cursor
        bucket = self._buckets[cursor]
        if bucket:
            if self._dirty[cursor]:
                bucket.sort(reverse=True)
                self._dirty[cursor] = False
            self._n -= 1
            return bucket.pop()
        bucket = self._advance()
        self._n -= 1
        return bucket.pop()

    def peek(self) -> float:
        if self._n == 0:
            return math.inf
        if self._n == len(self._far):
            # Everything pending is beyond the window; its minimum is
            # maintained incrementally, so no rebase is needed to peek.
            return self._far_min
        return self._advance()[-1][0]

    def _advance(self) -> list[tuple]:
        """The list to pop from, sorted, guaranteed non-empty.

        Walks the cursor over empty buckets; when the window is
        exhausted, rebases onto the far list — except in the degenerate
        all-infinite case, where the far list itself is served.
        Callers guarantee the queue is non-empty.
        """
        buckets = self._buckets
        dirty = self._dirty
        index = self._cursor
        while True:
            bucket = buckets[index]
            if bucket:
                self._cursor = index
                if dirty[index]:
                    # Descending, so pops take from the end: the sort
                    # compares (time, priority, counter) and never
                    # reaches the payload (counters are unique).
                    bucket.sort(reverse=True)
                    dirty[index] = False
                return bucket
            index += 1
            if index >= _NBUCKETS:
                far = self._far
                if not far:
                    raise IndexError("pop from an empty scheduler")
                if self._far_min == math.inf:
                    # Degenerate but legal: every pending entry is at
                    # +inf (e.g. a timeout(inf) sentinel).  Dealing them
                    # into a bucket would be wrong: the window's base
                    # would have to sit past every finite float, sending
                    # later finite pushes to the far list *behind* the
                    # already-bucketed infs.  Instead the far list is
                    # served directly — the window (base, width, cursor)
                    # is left untouched, so a finite push still lands in
                    # a bucket and the next walk finds it first, and inf
                    # pushes append here where the sort keeps the exact
                    # (priority, counter) heap order.
                    far.sort(reverse=True)
                    return far
                self._rebase()
                index = self._cursor

    def _rebase(self) -> None:
        """Advance the window onto the far-future overflow.

        One pass over the far list finds its span; the width resizes so
        the span spreads over half the window (clamped so a window is
        never narrower than float resolution around its base), then the
        entries are dealt into buckets — still-too-far ones stay in the
        overflow for the next turnover.
        """
        far = self._far
        # _advance guarantees far is non-empty with a finite minimum
        # (the all-inf case is served in place, never rebased).
        base = self._far_min
        latest = max(entry[0] for entry in far)
        span = latest - base
        if math.isfinite(span) and span > 0.0:
            # Brown's width estimate: spread the span at ~1 entry per
            # bucket.  For sparse overflows (a periodic workload's idle
            # gaps) this makes the width the *average inter-event gap*,
            # so the cursor walk crosses O(1) empty buckets per event;
            # dense overflows cap at the spread fraction as before.
            # Width never affects order, only walk cost.
            spread = len(far)
            if spread > _SPREAD_FRACTION:
                spread = _SPREAD_FRACTION
            width = span / spread
        else:
            width = self._width
        # Floor: buckets narrower than the float spacing at `base` would
        # strand equal-index entries forever behind huge indices.
        minimum = math.ulp(base) * 4.0 if base > 0.0 else 1e-12
        if width < minimum:
            width = minimum
        self._base = base
        self._width = width
        self._inv_width = 1.0 / width
        self._cursor = 0
        self._far = []
        self._far_min = math.inf
        buckets = self._buckets
        dirty = self._dirty
        inv_width = self._inv_width
        for entry in far:
            offset = (entry[0] - base) * inv_width
            if offset < _NBUCKETS:  # float compare first: +inf stays far
                index = int(offset)
                buckets[index].append(entry)
                dirty[index] = True
            else:
                self._far.append(entry)
                if entry[0] < self._far_min:
                    self._far_min = entry[0]

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0
