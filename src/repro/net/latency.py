"""Round-trip-time processes.

RTT drives everything in the paper's analysis of the bootstrap phase
(Fig. 1): a secure connection costs ``4R + Δ1 + Δ2``, video info costs
``6R + Δ1 + Δ2``, and each HTTP range request idles one RTT before its
first byte arrives.  The paper's measurements put LTE RTT at 2–3× WiFi
(θ ∈ [2, 3], §6), which is what makes WiFi carry >60 % of the traffic
in Table 1.

Latency processes return *one-way* propagation delays; callers double
them for RTT.  Per-sample jitter models the queueing noise observed on
real last-mile links.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class LatencyProcess:
    """Interface for one-way delay sampling."""

    __slots__ = ("base_delay",)

    #: Nominal one-way delay in seconds (RTT / 2), used for reporting.
    base_delay: float

    def sample(self) -> float:
        """Draw one one-way delay in seconds."""
        raise NotImplementedError

    @property
    def base_rtt(self) -> float:
        """Nominal round-trip time in seconds."""
        return 2.0 * self.base_delay


class ConstantLatency(LatencyProcess):
    """Deterministic delay, for calibration and closed-form checks.

    >>> ConstantLatency(0.010).sample()
    0.01
    """

    __slots__ = ()

    def __init__(self, one_way_delay: float) -> None:
        if one_way_delay < 0:
            raise ConfigError(f"delay must be non-negative, got {one_way_delay}")
        self.base_delay = float(one_way_delay)

    def sample(self) -> float:
        return self.base_delay


class JitteredLatency(LatencyProcess):
    """Base delay plus half-normal queueing jitter, floored at a minimum.

    Jitter is one-sided (delays only get worse than propagation), which
    matches queueing reality and keeps the closed-form Fig. 1 bounds
    meaningful as *lower* bounds.
    """

    __slots__ = ("jitter_std", "min_delay", "_rng")

    def __init__(
        self,
        one_way_delay: float,
        jitter_std: float,
        rng: np.random.Generator,
        min_delay: float | None = None,
    ) -> None:
        if one_way_delay < 0:
            raise ConfigError(f"delay must be non-negative, got {one_way_delay}")
        if jitter_std < 0:
            raise ConfigError(f"jitter_std must be non-negative, got {jitter_std}")
        self.base_delay = float(one_way_delay)
        self.jitter_std = float(jitter_std)
        self.min_delay = float(min_delay) if min_delay is not None else 0.5 * one_way_delay
        self._rng = rng

    def sample(self) -> float:
        jitter = abs(float(self._rng.normal(0.0, self.jitter_std))) if self.jitter_std else 0.0
        return max(self.base_delay + jitter, self.min_delay)
