"""Simulated network substrate.

This package is the testbed the paper ran on, rebuilt in software:

* a discrete-event kernel (:mod:`repro.net.events`, :mod:`repro.net.env`)
  with generator-based processes, in the style popularized by SimPy;
* stochastic capacity and latency processes (:mod:`repro.net.bandwidth`,
  :mod:`repro.net.latency`) modelling WiFi and LTE dynamics;
* a fluid bottleneck link with processor sharing among active flows
  (:mod:`repro.net.link`) and a TCP connection model on top of it
  (:mod:`repro.net.tcp`) that charges 3-way-handshake, slow-start, and
  per-request round-trip costs — the effects the paper's chunk scheduler
  must navigate;
* a TLS handshake *timing* model (:mod:`repro.net.tls`) reproducing the
  Fig. 1 message sequence;
* host/interface/topology plumbing (:mod:`repro.net.iface`,
  :mod:`repro.net.topology`) including the per-interface routing-table
  binding that MSPlayer's implementation section (§4) describes, and a
  stub DNS resolver (:mod:`repro.net.dns`).
"""

from .env import Environment
from .events import AllOf, AnyOf, Event, Process, Timeout
from .bandwidth import (
    ARLogNormalBandwidth,
    BandwidthProcess,
    CompositeBandwidth,
    ConstantBandwidth,
    MarkovBandwidth,
    TraceBandwidth,
)
from .latency import ConstantLatency, JitteredLatency, LatencyProcess
from .link import Link
from .tcp import TCPConnection, TCPParams
from .tls import TLSParams, tls_handshake_duration
from .iface import NetworkInterface
from .dns import StubResolver
from .topology import Host, Network

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "BandwidthProcess",
    "ConstantBandwidth",
    "MarkovBandwidth",
    "ARLogNormalBandwidth",
    "TraceBandwidth",
    "CompositeBandwidth",
    "LatencyProcess",
    "ConstantLatency",
    "JitteredLatency",
    "Link",
    "TCPConnection",
    "TCPParams",
    "TLSParams",
    "tls_handshake_duration",
    "NetworkInterface",
    "StubResolver",
    "Host",
    "Network",
]
