"""TLS handshake *timing* model (Fig. 1 of the paper).

YouTube serves both its web proxy and video servers over HTTPS (§4), so
every path MSPlayer opens pays for a full TLS handshake before its first
HTTP request.  The paper's Fig. 1 breaks the cost down as::

    3WHS                     1 RTT
    ClientHello ->
      <- ServerHello, Certificate,
         ServerHelloDone      1 RTT + Δ1   (server verifies/signs)
    ClientKeyExchange ->
      <- NewSessionTicket,
         Finished             1 RTT + Δ2   (server key computation)

after which the first HTTP request goes out, its first response byte
arriving one RTT later.  Hence the paper's closed forms, which our
benchmarks verify against the simulated message sequence:

* secure connection usable after ``3R + Δ1 + Δ2``;
* first response byte of the first request at ``η = 4R + Δ1 + Δ2``;
* complete video-info JSON (two further round trips of packets) at
  ``ψ = 6R + Δ1 + Δ2``;
* first *video* packet, after repeating the handshake against the video
  server, at ``π ≈ ψ + η``.

No cryptography is performed: only the latency structure matters to the
experiments, and modelling it as explicit message exchanges (rather
than one lump constant) lets the same code path express session reuse
and abbreviated handshakes (see :class:`TLSParams.resumption`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class TLSParams:
    """Server-side handshake compute costs, in seconds.

    ``delta1`` is the certificate/key verification time charged between
    ClientHello and ServerHelloDone; ``delta2`` the key-exchange
    completion time charged before NewSessionTicket (Fig. 1's Δ1, Δ2).
    ``resumption`` enables an abbreviated 1-RTT handshake when a session
    ticket from a prior connection is presented (an extension the paper
    leaves implicit; disabled in paper-faithful profiles).
    """

    delta1: float = 0.008
    delta2: float = 0.008
    resumption: bool = False

    def __post_init__(self) -> None:
        if self.delta1 < 0 or self.delta2 < 0:
            raise ConfigError("TLS compute delays must be non-negative")


#: Message-sequence phases of a full handshake, for tracing/tests.
FULL_HANDSHAKE_PHASES = (
    "client_hello",
    "server_hello_certificate_done",
    "client_key_exchange",
    "new_session_ticket_finished",
)


def tls_handshake_duration(rtt: float, params: TLSParams, resumed: bool = False) -> float:
    """Total handshake time after TCP establishment (excludes the 3WHS).

    Full handshake: two round trips plus both server compute delays.
    Abbreviated (session resumption): one round trip plus ``delta2``.

    >>> tls_handshake_duration(0.050, TLSParams(delta1=0.008, delta2=0.008))
    0.116
    """
    if rtt < 0:
        raise ConfigError("rtt must be non-negative")
    if resumed and params.resumption:
        return rtt + params.delta2
    return 2.0 * rtt + params.delta1 + params.delta2


def secure_connection_setup_time(rtt: float, params: TLSParams) -> float:
    """3WHS + TLS: time until the first HTTP request can be *sent*.

    This is the ``3R + Δ1 + Δ2`` term; adding the request's first-byte
    round trip yields the paper's ``η = 4R + Δ1 + Δ2``.
    """
    return rtt + tls_handshake_duration(rtt, params)


def eta(rtt: float, params: TLSParams) -> float:
    """Paper's η: time to an established secure HTTP connection (first byte)."""
    return 4.0 * rtt + params.delta1 + params.delta2


def psi(rtt: float, params: TLSParams) -> float:
    """Paper's ψ: time to complete video-info JSON (two extra round trips)."""
    return 6.0 * rtt + params.delta1 + params.delta2


def pi_first_video_packet(rtt: float, params: TLSParams) -> float:
    """Paper's π ≈ ψ + η: first video packet via proxy-then-video-server."""
    return psi(rtt, params) + eta(rtt, params)


def head_start(rtt_fast: float, rtt_slow: float) -> float:
    """π₂ − π₁ ≈ 10·(θ−1)·R₁: the fast path's fetch head start (§3.2)."""
    if rtt_fast <= 0 or rtt_slow <= 0:
        raise ConfigError("RTTs must be positive")
    return 10.0 * (rtt_slow - rtt_fast)
