"""Network interfaces with per-interface routing binding.

The implementation section of the paper (§4) spells out the one OS-level
trick MSPlayer needs: *bind each socket to a specific interface's IP
address and give each interface its own routing table*, so packets for
the WiFi server leave via WiFi and packets for the LTE server leave via
LTE regardless of the default route.  :class:`NetworkInterface` is the
simulated analogue: it owns its bottleneck :class:`~repro.net.link.Link`
and latency process, and every connection opened "bound" to it rides
that link.

Interfaces also expose up/down state (driven by mobility scenarios) and
an address in their attached network, which the CDN layer uses for
server selection ("which network is this client calling from?").
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import ConfigError, LinkDownError
from .env import Environment
from .latency import LatencyProcess
from .link import Link
from .tcp import TCPConnection, TCPParams


class NetworkInterface:
    """A client NIC: WiFi or cellular, with its own link, latency, and routes."""

    __slots__ = (
        "env",
        "name",
        "kind",
        "link",
        "latency",
        "network_id",
        "address",
        "tcp_params",
        "_connection_counter",
        "status_listeners",
    )

    #: Recognised interface technologies (free-form but validated for typos).
    KNOWN_KINDS = ("wifi", "lte", "3g", "ethernet")

    def __init__(
        self,
        env: Environment,
        name: str,
        kind: str,
        link: Link,
        latency: LatencyProcess,
        network_id: str,
        address: str,
        tcp_params: TCPParams | None = None,
    ) -> None:
        if kind not in self.KNOWN_KINDS:
            raise ConfigError(
                f"unknown interface kind {kind!r}; expected one of {self.KNOWN_KINDS}"
            )
        self.env = env
        self.name = name
        self.kind = kind
        self.link = link
        self.latency = latency
        #: Which network (and hence which server pool) this NIC attaches to.
        self.network_id = network_id
        #: The client's source address in that network (informational).
        self.address = address
        self.tcp_params = tcp_params or TCPParams()
        self._connection_counter = 0
        #: Called with ``True`` on down, ``False`` on up (mobility hooks).
        self.status_listeners: list[Callable[[bool], None]] = []
        link.status_listeners.append(self._on_link_status)

    # -- state -------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return not self.link.is_down

    def set_up(self, up: bool) -> None:
        """Administratively raise/lower the interface (mobility events).

        Taking the interface down resets every connection bound to it —
        exactly the WiFi-walkout failure mode §2 motivates robustness
        against.
        """
        self.link.set_down(not up)
        if not up:
            self.link.reset_flows(LinkDownError(f"{self.name} went down"))

    def _on_link_status(self, down: bool) -> None:
        for listener in list(self.status_listeners):
            listener(down)

    # -- connections -------------------------------------------------------

    def open_connection(self, path_latency: LatencyProcess | None = None) -> TCPConnection:
        """Create a TCP connection bound to this interface.

        ``path_latency`` lets the topology add per-destination distance
        on top of the access-link latency; by default the access link
        dominates (the common case for last-mile wireless).
        The returned connection is *not* yet connected: drive its
        ``connect()`` process from a simulation process.
        """
        if not self.is_up:
            raise LinkDownError(f"{self.name} is down")
        self._connection_counter += 1
        return TCPConnection(
            self.env,
            self.link,
            path_latency or self.latency,
            params=self.tcp_params,
            name=f"{self.name}#{self._connection_counter}",
        )

    @property
    def bytes_received(self) -> float:
        """Total bytes this interface's link has carried (Table 1 input)."""
        return self.link.bytes_carried

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.is_up else "down"
        return f"<NetworkInterface {self.name} ({self.kind}) {state} net={self.network_id}>"
