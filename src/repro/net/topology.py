"""Hosts and the network that wires clients to them.

The testbed of §5 is tiny but real: two web-proxy hosts and two video
hosts, one pair reachable in the WiFi network's subnet and one in the
LTE carrier's, plus the client's two interfaces.  :class:`Network` is
the registry that makes that wiring explicit:

* a :class:`Host` is a server machine with an address, a TLS compute
  profile, a per-connection extra propagation delay (its "distance"),
  and an attached application (installed by the CDN layer);
* ``Network.connect(iface, address)`` opens a TCP connection *bound to
  the given interface* — the per-interface routing of §4 — whose
  latency is the interface's access latency plus the host's distance.

Host up/down state models server failures for the robustness scenarios;
connecting to a down host raises immediately (connection refused), and
existing connections to it are reset.
"""

from __future__ import annotations


from ..errors import ConfigError, RoutingError, ServerUnavailableError
from .env import Environment
from .iface import NetworkInterface
from .latency import LatencyProcess
from .tcp import TCPConnection
from .tls import TLSParams


class _PathLatency(LatencyProcess):
    """Access-link latency plus fixed host distance (one-way)."""

    __slots__ = ("access", "extra")

    def __init__(self, access: LatencyProcess, extra_one_way: float) -> None:
        self.access = access
        self.extra = float(extra_one_way)
        self.base_delay = access.base_delay + self.extra

    def sample(self) -> float:
        return self.access.sample() + self.extra


class Host:
    """A server machine addressable in one or more networks."""

    __slots__ = (
        "address",
        "tls",
        "extra_one_way_delay",
        "network_id",
        "app",
        "up",
        "_connections",
        "bytes_served",
    )

    def __init__(
        self,
        address: str,
        tls: TLSParams | None = None,
        extra_one_way_delay: float = 0.0,
        network_id: str | None = None,
    ) -> None:
        if extra_one_way_delay < 0:
            raise ConfigError("extra_one_way_delay must be non-negative")
        self.address = address
        self.tls = tls or TLSParams()
        self.extra_one_way_delay = extra_one_way_delay
        #: The network this host "lives" in (server pools per network, §2).
        self.network_id = network_id
        #: Application attached by the service layer (HTTP server glue).
        self.app = None
        self.up = True
        #: Connections currently open to this host (reset on failure).
        self._connections: list[TCPConnection] = []
        #: Total bytes served, for load-balance accounting (EXP-X2).
        self.bytes_served = 0

    def fail(self) -> None:
        """Crash the host: refuse new connections, reset existing ones."""
        self.up = False
        for connection in self._connections:
            connection.reset(ServerUnavailableError(f"{self.address} failed"))
        self._connections.clear()

    def recover(self) -> None:
        self.up = True

    def _track(self, connection: TCPConnection) -> None:
        self._connections.append(connection)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"<Host {self.address} {state} net={self.network_id}>"


class Network:
    """Registry of hosts plus the client-side connection factory."""

    __slots__ = ("env", "_hosts")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._hosts: dict[str, Host] = {}

    def add_host(self, host: Host) -> Host:
        if host.address in self._hosts:
            raise ConfigError(f"duplicate host address {host.address!r}")
        self._hosts[host.address] = host
        return host

    def host(self, address: str) -> Host:
        try:
            return self._hosts[address]
        except KeyError:
            raise RoutingError(f"no route to host {address!r}") from None

    def hosts_in_network(self, network_id: str) -> list[Host]:
        return [h for h in self._hosts.values() if h.network_id == network_id]

    def connect(self, iface: NetworkInterface, address: str) -> tuple[TCPConnection, Host]:
        """Open a TCP connection to ``address``, bound to ``iface``.

        Returns the (unconnected) connection and the host; the caller
        drives the handshake processes.  Refused immediately if the host
        is down — the trigger for MSPlayer's source failover.
        """
        host = self.host(address)
        if not host.up:
            raise ServerUnavailableError(f"connection refused by {address}")
        latency = _PathLatency(iface.latency, host.extra_one_way_delay)
        connection = iface.open_connection(path_latency=latency)
        host._track(connection)
        return connection, host
