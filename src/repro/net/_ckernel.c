/* Compiled calendar-queue scheduler for the repro event kernel.
 *
 * A C mirror of repro.net.calendar.CalendarScheduler with the same
 * scheduler API (schedule / schedule_resume / schedule_callback / pop /
 * peek / _counter / _n) and the same (time, priority, FIFO-counter)
 * total order, so dispatch is bit-identical to the pure-python kernels.
 * Entries live as C structs (no per-entry Python tuple until pop), and
 * bucket sorts compare raw doubles/integers instead of Python objects.
 *
 * Built best-effort by setup.py (the Extension is `optional`); the
 * pure-python calendar remains the tested source of truth and the
 * fallback whenever this module is absent.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <stdlib.h>
#include <string.h>

#define NBUCKETS 512
#define SPREAD_FRACTION (NBUCKETS / 2)

/* Entry payload kinds; the kind picks the tuple shape built at pop. */
#define KIND_EVENT 0    /* (t, prio, tie, event, None)    */
#define KIND_RESUME 1   /* (t, prio, tie, event, process) */
#define KIND_CALLBACK 2 /* (t, prio, tie, callback)       */

typedef struct {
    double when;
    long prio;
    unsigned long long tie;
    int kind;
    PyObject *a; /* event or callback (strong ref) */
    PyObject *b; /* process (strong ref) or NULL   */
} Entry;

typedef struct {
    Entry *items;
    Py_ssize_t len;
    Py_ssize_t cap;
} Vec;

typedef struct {
    PyObject_HEAD
    Vec buckets[NBUCKETS];
    char dirty[NBUCKETS];
    double base;
    double width;
    double inv_width;
    Py_ssize_t cursor;
    Vec far;
    double far_min;
    unsigned long long counter;
    Py_ssize_t n;
} Scheduler;

/* -- entry vectors ------------------------------------------------------- */

static int
vec_push(Vec *vec, Entry entry)
{
    if (vec->len == vec->cap) {
        Py_ssize_t cap = vec->cap ? vec->cap * 2 : 8;
        Entry *items = PyMem_Realloc(vec->items, (size_t)cap * sizeof(Entry));
        if (items == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        vec->items = items;
        vec->cap = cap;
    }
    vec->items[vec->len++] = entry;
    return 0;
}

static void
vec_clear_refs(Vec *vec)
{
    for (Py_ssize_t i = 0; i < vec->len; i++) {
        Py_CLEAR(vec->items[i].a);
        Py_XDECREF(vec->items[i].b);
        vec->items[i].b = NULL;
    }
    vec->len = 0;
}

static void
vec_free(Vec *vec)
{
    vec_clear_refs(vec);
    PyMem_Free(vec->items);
    vec->items = NULL;
    vec->cap = 0;
}

/* Descending (when, prio, tie) — pops take from the end.  Ties are
 * impossible (counters are unique), so the order is total. */
static int
entry_cmp_desc(const void *lhs, const void *rhs)
{
    const Entry *x = (const Entry *)lhs;
    const Entry *y = (const Entry *)rhs;
    if (x->when != y->when)
        return x->when < y->when ? 1 : -1;
    if (x->prio != y->prio)
        return x->prio < y->prio ? 1 : -1;
    return x->tie < y->tie ? 1 : -1;
}

/* -- scheduling ---------------------------------------------------------- */

static int
sched_insert(Scheduler *self, double when, long prio, int kind,
             PyObject *a, PyObject *b)
{
    Entry entry;
    double offset;

    self->counter += 1;
    entry.when = when;
    entry.prio = prio;
    entry.tie = self->counter;
    entry.kind = kind;
    entry.a = Py_NewRef(a);
    entry.b = b ? Py_NewRef(b) : NULL;

    offset = (when - self->base) * self->inv_width;
    if (offset < (double)NBUCKETS) {
        /* Behind-cursor (or behind-base) entries clamp into the cursor
         * bucket, same as the python kernels; the in-bucket sort
         * restores their place.  +inf fails the comparison above and
         * goes far instead of overflowing the cast. */
        Py_ssize_t index = (Py_ssize_t)offset;
        if (index < self->cursor)
            index = self->cursor;
        if (vec_push(&self->buckets[index], entry) < 0)
            goto fail;
        self->dirty[index] = 1;
    }
    else {
        if (vec_push(&self->far, entry) < 0)
            goto fail;
        if (when < self->far_min)
            self->far_min = when;
    }
    self->n += 1;
    return 0;

fail:
    Py_DECREF(entry.a);
    Py_XDECREF(entry.b);
    return -1;
}

static PyObject *
sched_schedule(Scheduler *self, PyObject *const *args, Py_ssize_t nargs)
{
    double when;
    long prio;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "schedule expects (when, priority, event)");
        return NULL;
    }
    when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred())
        return NULL;
    if (sched_insert(self, when, prio, KIND_EVENT, args[2], NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sched_schedule_resume(Scheduler *self, PyObject *const *args, Py_ssize_t nargs)
{
    double when;
    long prio;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_resume expects (when, priority, event, process)");
        return NULL;
    }
    when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred())
        return NULL;
    if (sched_insert(self, when, prio, KIND_RESUME, args[2], args[3]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sched_schedule_callback(Scheduler *self, PyObject *const *args, Py_ssize_t nargs)
{
    double when;
    long prio;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_callback expects (when, priority, callback)");
        return NULL;
    }
    when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred())
        return NULL;
    if (sched_insert(self, when, prio, KIND_CALLBACK, args[2], NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* -- dequeue ------------------------------------------------------------- */

/* Advance the window onto the far-future overflow (python _rebase). */
static int
sched_rebase(Scheduler *self)
{
    Vec far = self->far;
    double base, latest, span, width, minimum;

    /* sched_advance guarantees far is non-empty with a finite minimum
     * (the all-inf case is served in place, never rebased). */
    base = self->far_min;
    latest = base;
    for (Py_ssize_t i = 0; i < far.len; i++) {
        if (far.items[i].when > latest)
            latest = far.items[i].when;
    }
    span = latest - base;
    if (isfinite(span) && span > 0.0) {
        /* Brown's width estimate: ~1 entry per bucket for sparse
         * overflows (width = average inter-event gap), capped at the
         * spread fraction for dense ones (mirror of calendar.py). */
        Py_ssize_t spread =
            far.len > SPREAD_FRACTION ? SPREAD_FRACTION : far.len;
        width = span / (double)spread;
    }
    else
        width = self->width;
    minimum = base > 0.0 ? nextafter(base, Py_HUGE_VAL) - base : 0.0;
    minimum = minimum > 0.0 ? minimum * 4.0 : 1e-12;
    if (width < minimum)
        width = minimum;
    self->base = base;
    self->width = width;
    self->inv_width = 1.0 / width;
    self->cursor = 0;
    self->far.items = NULL;
    self->far.len = 0;
    self->far.cap = 0;
    self->far_min = Py_HUGE_VAL;
    for (Py_ssize_t i = 0; i < far.len; i++) {
        Entry entry = far.items[i];
        double offset = (entry.when - base) * self->inv_width;
        Vec *target;
        if (offset < (double)NBUCKETS) {
            Py_ssize_t index = (Py_ssize_t)offset;
            target = &self->buckets[index];
            self->dirty[index] = 1;
        }
        else {
            target = &self->far;
            if (entry.when < self->far_min)
                self->far_min = entry.when;
        }
        if (vec_push(target, entry) < 0) {
            /* Out of memory mid-deal: keep the undealt tail alive in
             * the far list so no entry's refs are lost. */
            PyErr_Clear();
            for (Py_ssize_t j = i; j < far.len; j++) {
                if (vec_push(&self->far, far.items[j]) < 0) {
                    Py_DECREF(far.items[j].a);
                    Py_XDECREF(far.items[j].b);
                }
                else if (far.items[j].when < self->far_min) {
                    self->far_min = far.items[j].when;
                }
            }
            PyMem_Free(far.items);
            PyErr_NoMemory();
            return -1;
        }
    }
    PyMem_Free(far.items);
    return 0;
}

/* The list to pop from, sorted, guaranteed non-empty (python _advance). */
static Vec *
sched_advance(Scheduler *self)
{
    Py_ssize_t index = self->cursor;
    for (;;) {
        if (index >= NBUCKETS) {
            if (self->far.len == 0) {
                PyErr_SetString(PyExc_IndexError,
                                "pop from an empty scheduler");
                return NULL;
            }
            if (self->far_min == Py_HUGE_VAL) {
                /* Every pending entry is at +inf: serve the far list
                 * directly, leaving the window untouched so a later
                 * finite push lands in a bucket and dispatches first
                 * (mirror of the python _advance; see calendar.py). */
                qsort(self->far.items, (size_t)self->far.len, sizeof(Entry),
                      entry_cmp_desc);
                return &self->far;
            }
            if (sched_rebase(self) < 0)
                return NULL;
            index = self->cursor;
        }
        if (self->buckets[index].len) {
            Vec *bucket = &self->buckets[index];
            self->cursor = index;
            if (self->dirty[index]) {
                qsort(bucket->items, (size_t)bucket->len, sizeof(Entry),
                      entry_cmp_desc);
                self->dirty[index] = 0;
            }
            return bucket;
        }
        index += 1;
    }
}

static PyObject *
entry_to_tuple(Entry entry)
{
    /* Steals the entry's refs to a/b on success and failure alike. */
    PyObject *when = PyFloat_FromDouble(entry.when);
    PyObject *prio = when ? PyLong_FromLong(entry.prio) : NULL;
    PyObject *tie = prio ? PyLong_FromUnsignedLongLong(entry.tie) : NULL;
    PyObject *tuple = NULL;
    if (tie != NULL) {
        if (entry.kind == KIND_CALLBACK)
            tuple = PyTuple_Pack(4, when, prio, tie, entry.a);
        else
            tuple = PyTuple_Pack(5, when, prio, tie, entry.a,
                                 entry.b ? entry.b : Py_None);
    }
    Py_XDECREF(when);
    Py_XDECREF(prio);
    Py_XDECREF(tie);
    Py_DECREF(entry.a);
    Py_XDECREF(entry.b);
    return tuple;
}

static PyObject *
sched_pop(Scheduler *self, PyObject *Py_UNUSED(ignored))
{
    Vec *bucket;
    if (self->n == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from an empty scheduler");
        return NULL;
    }
    bucket = sched_advance(self);
    if (bucket == NULL)
        return NULL;
    self->n -= 1;
    return entry_to_tuple(bucket->items[--bucket->len]);
}

static PyObject *
sched_peek(Scheduler *self, PyObject *Py_UNUSED(ignored))
{
    Vec *bucket;
    if (self->n == 0)
        return PyFloat_FromDouble(Py_HUGE_VAL);
    if (self->n == self->far.len)
        return PyFloat_FromDouble(self->far_min);
    bucket = sched_advance(self);
    if (bucket == NULL)
        return NULL;
    return PyFloat_FromDouble(bucket->items[bucket->len - 1].when);
}

/* -- type plumbing ------------------------------------------------------- */

static PyObject *
sched_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    double width = 0.001;
    static char *kwlist[] = {"width", NULL};
    Scheduler *self;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d", kwlist, &width))
        return NULL;
    if (width <= 0.0) {
        PyErr_Format(PyExc_ValueError, "bucket width must be positive, got %g",
                     width);
        return NULL;
    }
    self = (Scheduler *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    memset(self->buckets, 0, sizeof(self->buckets));
    memset(self->dirty, 0, sizeof(self->dirty));
    self->base = 0.0;
    self->width = width;
    self->inv_width = 1.0 / width;
    self->cursor = 0;
    self->far.items = NULL;
    self->far.len = 0;
    self->far.cap = 0;
    self->far_min = Py_HUGE_VAL;
    self->counter = 0;
    self->n = 0;
    return (PyObject *)self;
}

static int
sched_traverse(Scheduler *self, visitproc visit, void *arg)
{
    for (int i = 0; i < NBUCKETS; i++) {
        Vec *bucket = &self->buckets[i];
        for (Py_ssize_t j = 0; j < bucket->len; j++) {
            Py_VISIT(bucket->items[j].a);
            Py_VISIT(bucket->items[j].b);
        }
    }
    for (Py_ssize_t j = 0; j < self->far.len; j++) {
        Py_VISIT(self->far.items[j].a);
        Py_VISIT(self->far.items[j].b);
    }
    return 0;
}

static int
sched_clear(Scheduler *self)
{
    for (int i = 0; i < NBUCKETS; i++)
        vec_clear_refs(&self->buckets[i]);
    vec_clear_refs(&self->far);
    self->n = 0;
    return 0;
}

static void
sched_dealloc(Scheduler *self)
{
    PyObject_GC_UnTrack(self);
    for (int i = 0; i < NBUCKETS; i++)
        vec_free(&self->buckets[i]);
    vec_free(&self->far);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
sched_length(Scheduler *self)
{
    return self->n;
}

static PyObject *
sched_get_counter(Scheduler *self, void *Py_UNUSED(closure))
{
    return PyLong_FromUnsignedLongLong(self->counter);
}

static PyObject *
sched_get_n(Scheduler *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->n);
}

static PyObject *
sched_get_kernel(Scheduler *Py_UNUSED(self), void *Py_UNUSED(closure))
{
    return PyUnicode_FromString("compiled");
}

static PyMethodDef sched_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))sched_schedule, METH_FASTCALL,
     "schedule(when, priority, event) -> None"},
    {"schedule_resume", (PyCFunction)(void (*)(void))sched_schedule_resume,
     METH_FASTCALL, "schedule_resume(when, priority, event, process) -> None"},
    {"schedule_callback", (PyCFunction)(void (*)(void))sched_schedule_callback,
     METH_FASTCALL, "schedule_callback(when, priority, callback) -> None"},
    {"pop", (PyCFunction)sched_pop, METH_NOARGS,
     "pop() -> the earliest entry tuple"},
    {"peek", (PyCFunction)sched_peek, METH_NOARGS,
     "peek() -> time of the next entry, or inf"},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef sched_getset[] = {
    {"_counter", (getter)sched_get_counter, NULL,
     "total entries ever scheduled (FIFO tie-breaker)", NULL},
    {"_n", (getter)sched_get_n, NULL, "entries currently pending", NULL},
    {"kernel", (getter)sched_get_kernel, NULL, "kernel name", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods sched_as_sequence = {
    .sq_length = (lenfunc)sched_length,
};

static PyTypeObject SchedulerType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.net._ckernel.CalendarScheduler",
    .tp_doc = "Compiled calendar-queue scheduler (bit-identical dispatch "
              "order to the pure-python kernels).",
    .tp_basicsize = sizeof(Scheduler),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = sched_new,
    .tp_dealloc = (destructor)sched_dealloc,
    .tp_traverse = (traverseproc)sched_traverse,
    .tp_clear = (inquiry)sched_clear,
    .tp_methods = sched_methods,
    .tp_getset = sched_getset,
    .tp_as_sequence = &sched_as_sequence,
};

static PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.net._ckernel",
    .m_doc = "Compiled event-kernel core (optional; see repro.net.calendar).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *module;
    if (PyType_Ready(&SchedulerType) < 0)
        return NULL;
    module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddObjectRef(module, "CalendarScheduler",
                              (PyObject *)&SchedulerType) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
