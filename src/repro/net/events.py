"""Event and process primitives for the discrete-event kernel.

The design follows the classic generator-based pattern (as in SimPy):

* an :class:`Event` is a one-shot container that is *triggered* with a
  value (success) or an exception (failure) and then runs callbacks;
* a :class:`Process` wraps a generator function; each value the
  generator ``yield``\\ s must be an event, and the process resumes when
  that event fires;
* :class:`Timeout` is an event triggered by the passage of simulated
  time;
* :class:`AnyOf` / :class:`AllOf` compose events.

Only the scheduling queue lives in :mod:`repro.net.env`; the state
machine for events and processes is entirely here so it can be unit
tested without a running loop.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
from typing import TYPE_CHECKING

from ..errors import Interrupt, ProcessError

if TYPE_CHECKING:  # pragma: no cover
    from .env import Environment

#: Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* → (``succeed`` | ``fail``) → *triggered* →
    callbacks run by the environment → *processed*.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: object = _PENDING
        self._ok: bool | None = None
        #: Set when a failure's exception was delivered to at least one
        #: waiter (or explicitly defused); undelivered failures raise at
        #: the end of the run so errors never pass silently.
        self.defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise ProcessError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> object:
        """The success value or failure exception carried by the event."""
        if self._value is _PENDING:
            raise ProcessError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise ProcessError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exception, BaseException):
            raise ProcessError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise ProcessError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule_event(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Relay another event's outcome into this one (used by conditions)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)  # type: ignore[arg-type]

    # -- composition ------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` seconds of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ProcessError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule_event(self, delay=delay)

    # A timeout is triggered at construction; the scheduled time just has
    # not arrived yet.  Override to reflect "will fire, cannot be failed".
    def succeed(self, value: object = None) -> "Event":  # pragma: no cover
        raise ProcessError("Timeout cannot be re-triggered")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise ProcessError("Timeout cannot fail")


class PooledTimeout(Timeout):
    """A recycled timeout for the kernel's pooled timer lane.

    Created and scheduled only by :meth:`Environment.pooled_timeout`;
    after dispatch the instance returns to the environment's free pool
    with its callback list cleared (never set to ``None``, so it never
    reads as *processed*).  Contract: yield it exactly once,
    immediately — never store, compose, or re-yield one.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        # Bypasses Timeout.__init__: the environment validates the delay
        # and schedules the entry itself, both on first construction and
        # on every reuse from the pool.
        Event.__init__(self, env)
        self.delay = delay
        self._ok = True
        self._value = value


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule_event(self, priority=_URGENT)


#: Scheduling priorities: urgent events (process init, interrupts) are
#: dispatched before normal events at the same timestamp.
_URGENT = 0
NORMAL = 1


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers with the generator's
    return value when the generator finishes, so processes can wait on
    each other (``yield env.process(...)`` or ``yield proc``).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ProcessError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The interrupt is delivered as an urgent event so that, like
        SimPy, interrupting a process at time *t* wakes it at time *t*.
        Interrupting a finished process is an error; interrupting a
        process that is about to resume anyway is allowed (the interrupt
        wins).
        """
        if self.triggered:
            raise ProcessError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise ProcessError("process cannot interrupt itself")
        exc = Interrupt(cause)
        event = Event(self.env)
        event._ok = False
        event._value = exc
        event.defused = True
        event.callbacks.append(self._resume)
        self.env._schedule_event(event, priority=_URGENT)

    # -- resumption machinery ----------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self.env._active_process = self
        # Deregister from the event we were genuinely waiting on, in case
        # we are being resumed early by an interrupt.
        waited = self._waiting_on
        if waited is not None and waited is not event and waited.callbacks is not None:
            try:  # noqa: SIM105 — interrupt hot path; suppress() costs a frame
                waited.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None

        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event.defused = True
                target = self._generator.throw(event._value)  # type: ignore[arg-type]
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(target, Event):
            error = ProcessError(
                f"process yielded {target!r}; processes must yield Event instances"
            )
            self._generator.close()
            self.fail(error)
            return
        if target.processed:
            # Already fired and dispatched: resume on the next urgent
            # tick.  The scheduler redelivers the target itself — no
            # clone event is allocated (_resume defuses failures when it
            # throws them into the generator).  The entry carries this
            # process so dispatch can drop it if an interrupt resumed
            # the process first (the moral equivalent of the clone
            # path's callbacks.remove deregistration).
            self.env._schedule_resume(self, target)
            self._waiting_on = target
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise ProcessError("cannot mix events from different environments")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, object]:
        # Filter on *processed*, not triggered: a Timeout carries its
        # value from construction (triggered=True) but has not occurred
        # until the clock reaches it and its callbacks run.
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first of its events fires (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Fires when every one of its events has fired (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
