"""Stub DNS resolver.

MSPlayer "uses Google's public DNS service to resolve the IP addresses
of YouTube servers" (§2, Content Source Diversity) and — crucially —
resolves *through each interface separately*, because YouTube's
server-selection returns different video-server pools depending on the
network the query arrives from [3].  The stub resolver reproduces that:
records are keyed by ``(name, network_id)`` with a global fallback, and
lookups charge a configurable latency (one RTT to the resolver plus
cache behaviour).

This is intentionally a *stub* (no wire format): the experiments only
need correct per-network answers and a realistic latency charge.
"""

from __future__ import annotations

from ..errors import ConfigError, DNSError
from .env import Environment


class StubResolver:
    """Per-network name → address-list resolution with TTL-less caching."""

    __slots__ = ("env", "lookup_delay", "_records", "_cache", "misses", "hits")

    def __init__(self, env: Environment, lookup_delay: float = 0.030) -> None:
        if lookup_delay < 0:
            raise ConfigError("lookup_delay must be non-negative")
        self.env = env
        self.lookup_delay = lookup_delay
        #: (name, network_id or None) -> list of addresses
        self._records: dict[tuple[str, str | None], list[str]] = {}
        self._cache: dict[tuple[str, str | None], list[str]] = {}
        #: Count of uncached lookups, for overhead accounting.
        self.misses = 0
        self.hits = 0

    # -- record management ----------------------------------------------------

    def add_record(self, name: str, addresses: list[str], network_id: str | None = None) -> None:
        """Register ``name`` → ``addresses``; optionally scoped to one network."""
        if not addresses:
            raise ConfigError(f"no addresses given for {name!r}")
        self._records[(name, network_id)] = list(addresses)

    def flush_cache(self) -> None:
        self._cache.clear()

    # -- queries ----------------------------------------------------------------

    def resolve(self, name: str, network_id: str | None = None):
        """Process: resolve ``name`` as seen from ``network_id``.

        Returns the address list.  Cached answers return immediately
        (YouTube player behaviour: the JSON URL is resolved once per
        session); cold lookups cost ``lookup_delay``.
        """
        key = (name, network_id)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        yield self.env.pooled_timeout(self.lookup_delay)
        answer = self._records.get(key)
        if answer is None:
            # Fall back to the network-agnostic record.
            answer = self._records.get((name, None))
        if answer is None:
            raise DNSError(f"NXDOMAIN: {name!r} (network {network_id!r})")
        self._cache[key] = answer
        return answer

    def resolve_now(self, name: str, network_id: str | None = None) -> list[str]:
        """Zero-latency resolution for tests and setup code."""
        answer = self._records.get((name, network_id)) or self._records.get((name, None))
        if answer is None:
            raise DNSError(f"NXDOMAIN: {name!r} (network {network_id!r})")
        return answer
