"""Fluid bottleneck link with max-min (processor-sharing) bandwidth sharing.

Each wireless interface in the paper's testbed has one bottleneck — the
WiFi airlink or the LTE radio bearer.  We model each as a :class:`Link`:

* capacity follows a :class:`~repro.net.bandwidth.BandwidthProcess`
  (piecewise constant);
* concurrently active flows share capacity max-min fairly, with
  per-flow *rate caps* used by the TCP model to express slow-start and
  receive-window limits;
* the link can be taken down/up to model mobility events (the WiFi
  break scenario of §2 "Robust Data Transport").

The implementation is event-driven fluid simulation: whenever the flow
set, a cap, or the capacity changes, the link settles the bytes
delivered since the last change, recomputes the allocation, and
schedules the next completion.  Stale wake-ups are filtered with a
version counter, so no O(n²) cancellation bookkeeping is needed.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Optional

from ..errors import ConfigError, LinkDownError, NetworkError
from .bandwidth import BandwidthProcess
from .env import Environment
from .events import Event


def max_min_allocation(capacity: float, caps: list[float]) -> list[float]:
    """Max-min fair rates for flows with upper bounds ``caps``.

    Classic water-filling: repeatedly give every unsaturated flow an
    equal share; flows whose cap is below their share are frozen at
    their cap and the surplus is redistributed.

    >>> max_min_allocation(10.0, [2.0, float("inf")])
    [2.0, 8.0]
    >>> max_min_allocation(9.0, [float("inf")] * 3)
    [3.0, 3.0, 3.0]
    """
    if capacity < 0:
        raise ConfigError("capacity must be non-negative")
    n = len(caps)
    if n == 0:
        return []
    rates = [0.0] * n
    remaining = capacity
    unsaturated = sorted(range(n), key=lambda i: caps[i])
    while unsaturated:
        share = remaining / len(unsaturated)
        lowest = unsaturated[0]
        if caps[lowest] <= share:
            rates[lowest] = caps[lowest]
            remaining -= caps[lowest]
            unsaturated.pop(0)
        else:
            for index in unsaturated:
                rates[index] = share
            break
    return rates


class FlowHandle:
    """A single fluid transfer in progress on a link.

    Exposes the completion :class:`Event` (``done``), live accounting
    (``bytes_delivered``, ``rate``), and knobs the TCP model uses
    (``set_cap``).  Cancel with :meth:`abort` (fails ``done`` with the
    given exception).
    """

    def __init__(self, link: "Link", total_bytes: float, cap: float) -> None:
        if total_bytes <= 0:
            raise ConfigError(f"flow size must be positive, got {total_bytes}")
        if cap <= 0:
            raise ConfigError(f"flow cap must be positive, got {cap}")
        self.link = link
        self.total_bytes = float(total_bytes)
        self.remaining = float(total_bytes)
        self.cap = float(cap)
        self.rate = 0.0
        self.done: Event = link.env.event()
        self.started_at = link.env.now
        self.finished_at: Optional[float] = None

    @property
    def bytes_delivered(self) -> float:
        return self.total_bytes - self.remaining

    @property
    def active(self) -> bool:
        return not self.done.triggered

    def set_cap(self, cap: float) -> None:
        """Update the flow's rate cap (bytes/s); ``inf`` removes it."""
        if cap <= 0:
            raise ConfigError(f"flow cap must be positive, got {cap}")
        if not self.active:
            return
        self.cap = float(cap)
        self.link._state_changed()

    def abort(self, error: NetworkError | None = None) -> None:
        """Terminate the flow; ``done`` fails with ``error``.

        The error is annotated with ``flow_bytes_delivered`` so upper
        layers can keep the in-order prefix that did arrive (a partial
        HTTP body is still valid leading bytes of the range).
        """
        if not self.active:
            return
        self.link._detach(self)
        failure = error or NetworkError("flow aborted")
        failure.flow_bytes_delivered = int(self.bytes_delivered)  # type: ignore[attr-defined]
        self.done.fail(failure)
        self.done.defused = True  # caller may not be waiting anymore

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowHandle {self.bytes_delivered:.0f}/{self.total_bytes:.0f}B "
            f"rate={self.rate:.0f}B/s cap={self.cap:.0f}>"
        )


class Link:
    """One bottleneck link: capacity process + active flow set."""

    def __init__(
        self,
        env: Environment,
        bandwidth: BandwidthProcess,
        name: str = "link",
    ) -> None:
        self.env = env
        self.name = name
        self.bandwidth = bandwidth
        self.capacity = bandwidth.mean_rate
        self._flows: list[FlowHandle] = []
        self._version = 0
        self._last_settle = env.now
        self._down = False
        #: Total bytes this link has carried (for Table 1 accounting).
        self.bytes_carried = 0.0
        #: Observers notified on up/down transitions (mobility handling).
        self.status_listeners: list[Callable[[bool], None]] = []
        self._segments: Iterator[tuple[float, float]] = bandwidth.segments()
        env.process(self._capacity_process())

    # -- public API -----------------------------------------------------------

    @property
    def is_down(self) -> bool:
        return self._down

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def start_flow(self, total_bytes: float, cap: float = math.inf) -> FlowHandle:
        """Begin transferring ``total_bytes`` through the link.

        Raises :class:`~repro.errors.LinkDownError` immediately if the
        link is down — starting a transfer needs connectivity, whereas
        flows already in progress merely stall while down.
        """
        if self._down:
            raise LinkDownError(f"{self.name} is down")
        flow = FlowHandle(self, total_bytes, cap)
        self._settle()
        self._flows.append(flow)
        self._state_changed(settled=True)
        return flow

    def set_down(self, down: bool) -> None:
        """Take the link down (flows stall) or bring it back up."""
        if down == self._down:
            return
        self._settle()
        self._down = down
        self._state_changed(settled=True)
        for listener in list(self.status_listeners):
            listener(down)

    def reset_flows(self, error: NetworkError | None = None) -> None:
        """Abort every active flow (e.g. hard handover kills connections)."""
        for flow in list(self._flows):
            flow.abort(error or NetworkError(f"{self.name}: flows reset"))

    # -- internal fluid machinery ----------------------------------------------

    def _capacity_process(self):
        """Apply the bandwidth process's piecewise-constant segments."""
        for duration, rate in self._segments:
            self._settle()
            self.capacity = rate
            self._state_changed(settled=True)
            yield self.env.timeout(duration)

    def _settle(self) -> None:
        """Account bytes delivered since the last allocation change."""
        now = self.env.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0:
            return
        for flow in self._flows:
            delivered = min(flow.rate * elapsed, flow.remaining)
            if delivered > 0:
                flow.remaining -= delivered
                self.bytes_carried += delivered

    def _detach(self, flow: FlowHandle) -> None:
        if flow in self._flows:
            self._settle()
            self._flows.remove(flow)
            self._state_changed(settled=True)

    def _state_changed(self, settled: bool = False) -> None:
        """Recompute allocation and (re)arm the next completion wake-up."""
        if not settled:
            self._settle()
        self._version += 1

        # Complete flows that have (numerically) hit zero remaining
        # bytes.  The microbyte tolerance absorbs float crumbs from the
        # rate*elapsed settlements; real chunks are >= 16 KB.
        finished = [f for f in self._flows if f.remaining <= 1e-6]
        if finished:
            for flow in finished:
                self._flows.remove(flow)
                flow.rate = 0.0
                flow.remaining = 0.0
                flow.finished_at = self.env.now
                flow.done.succeed(flow)
            self._version += 1

        capacity = 0.0 if self._down else self.capacity
        rates = max_min_allocation(capacity, [f.cap for f in self._flows])
        for flow, rate in zip(self._flows, rates):
            flow.rate = rate

        next_completion = math.inf
        for flow in self._flows:
            if flow.rate > 0:
                next_completion = min(next_completion, flow.remaining / flow.rate)
        if math.isfinite(next_completion):
            # Floor the delay at one representable step of the clock so
            # the wake-up is guaranteed to advance time (otherwise a
            # sub-ulp completion would respin at the same timestamp
            # forever).
            minimum_step = math.ulp(self.env.now) * 4.0 + 1e-12
            self.env.process(self._wake_after(max(next_completion, minimum_step), self._version))

    def _wake_after(self, delay: float, version: int):
        """Wake the link when the earliest completion is due (if still valid)."""
        yield self.env.timeout(delay)
        if version == self._version:
            self._state_changed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "down" if self._down else f"{self.capacity:.0f}B/s"
        return f"<Link {self.name} {state} flows={len(self._flows)}>"
