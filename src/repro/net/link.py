"""Fluid bottleneck link with max-min (processor-sharing) bandwidth sharing.

Each wireless interface in the paper's testbed has one bottleneck — the
WiFi airlink or the LTE radio bearer.  We model each as a :class:`Link`:

* capacity follows a :class:`~repro.net.bandwidth.BandwidthProcess`
  (piecewise constant);
* concurrently active flows share capacity max-min fairly, with
  per-flow *rate caps* used by the TCP model to express slow-start and
  receive-window limits;
* the link can be taken down/up to model mobility events (the WiFi
  break scenario of §2 "Robust Data Transport").

The implementation is event-driven fluid simulation: whenever the flow
set, a cap, or the capacity changes, the link settles the bytes
delivered since the last change, recomputes the allocation, and
schedules the next completion.  Stale wake-ups are filtered with a
version counter, so no O(n²) cancellation bookkeeping is needed.
"""

from __future__ import annotations

import math
from functools import partial
from collections.abc import Callable, Iterator

import numpy as np

from ..errors import ConfigError, LinkDownError, NetworkError
from .bandwidth import BandwidthProcess
from .env import Environment
from .events import Event

#: Flow count at and above which the link switches from per-flow Python
#: arithmetic to one vectorized numpy pass (settlement, allocation, and
#: completion scheduling).  Below the threshold the scalar code runs so
#: small experiments keep their historical bit-exact outputs; the two
#: paths agree to float rounding (reduction order differs), and every
#: kernel runs the same path for a given flow count.
_VECTOR_THRESHOLD = 8


def max_min_allocation(capacity: float, caps: list[float]) -> list[float]:
    """Max-min fair rates for flows with upper bounds ``caps``.

    Classic water-filling, done in one linear pass over the caps sorted
    ascending: walking up the sorted order, a flow whose cap is below
    the equal share of the remaining capacity is frozen at its cap and
    the surplus is redistributed among the flows still unfrozen; the
    first flow whose cap exceeds its share ends the walk — it and every
    later (larger-capped) flow get the equal share.

    >>> max_min_allocation(10.0, [2.0, float("inf")])
    [2.0, 8.0]
    >>> max_min_allocation(9.0, [float("inf")] * 3)
    [3.0, 3.0, 3.0]
    """
    if capacity < 0:
        raise ConfigError("capacity must be non-negative")
    n = len(caps)
    if n == 0:
        return []
    rates = [0.0] * n
    remaining = capacity
    order = sorted(range(n), key=lambda i: caps[i])
    for position, index in enumerate(order):
        share = remaining / (n - position)
        cap = caps[index]
        if cap <= share:
            rates[index] = cap
            remaining -= cap
        else:
            for unfrozen in order[position:]:
                rates[unfrozen] = share
            break
    return rates


def _max_min_allocation_array(capacity: float, caps: "np.ndarray") -> "np.ndarray":
    """Vectorized water-filling over a cap array (large flow counts).

    Same algorithm as :func:`max_min_allocation` in one numpy pass:
    with caps sorted ascending every flow before the first cap
    exceeding its equal share is frozen at its cap, and that first flow
    and all later ones get the share.  Frozen rates are *copied* from
    the caps, so ``rate == cap`` comparisons stay bitwise-exact.
    """
    n = caps.size
    order = np.argsort(caps, kind="stable")
    sorted_caps = caps[order]
    frozen_before = np.empty(n)
    frozen_before[0] = 0.0
    np.cumsum(sorted_caps[:-1], out=frozen_before[1:])
    shares = (capacity - frozen_before) / np.arange(n, 0, -1)
    unfrozen = sorted_caps > shares
    rates_sorted = sorted_caps.copy()
    if unfrozen.any():
        first = int(np.argmax(unfrozen))
        rates_sorted[first:] = shares[first]
    rates = np.empty(n)
    rates[order] = rates_sorted
    return rates


class FlowHandle:
    """A single fluid transfer in progress on a link.

    Exposes the completion :class:`Event` (``done``), live accounting
    (``bytes_delivered``, ``rate``), and knobs the TCP model uses
    (``set_cap``).  A flow may carry a *slow-start ramp*: its cap
    doubles every ``ramp_rtt`` seconds up to ``ramp_limit``, with the
    doubling instants computed analytically by the link (no pacer
    process, no per-doubling timeout events).  Cancel with
    :meth:`abort` (fails ``done`` with the given exception).
    """

    __slots__ = (
        "link",
        "total_bytes",
        "remaining",
        "cap",
        "rate",
        "done",
        "started_at",
        "finished_at",
        "_ramp_interval",
        "_ramp_at",
        "_ramp_limit",
    )

    def __init__(
        self,
        link: "Link",
        total_bytes: float,
        cap: float,
        ramp_rtt: float | None = None,
        ramp_limit: float = math.inf,
    ) -> None:
        if total_bytes <= 0:
            raise ConfigError(f"flow size must be positive, got {total_bytes}")
        if cap <= 0:
            raise ConfigError(f"flow cap must be positive, got {cap}")
        if ramp_rtt is not None and ramp_rtt <= 0:
            raise ConfigError(f"ramp_rtt must be positive, got {ramp_rtt}")
        self.link = link
        self.total_bytes = float(total_bytes)
        self.remaining = float(total_bytes)
        self.cap = float(cap)
        self.rate = 0.0
        self.done: Event = link.env.event()
        self.started_at = link.env.now
        self.finished_at: float | None = None
        self._ramp_interval = ramp_rtt
        self._ramp_limit = float(ramp_limit)
        if ramp_rtt is None or self.cap >= self._ramp_limit:
            self._ramp_at: float | None = None
        else:
            self._ramp_at = self.started_at + ramp_rtt

    @property
    def bytes_delivered(self) -> float:
        return self.total_bytes - self.remaining

    @property
    def active(self) -> bool:
        return not self.done.triggered

    def set_cap(self, cap: float) -> None:
        """Update the flow's rate cap (bytes/s); ``inf`` removes it."""
        if cap <= 0:
            raise ConfigError(f"flow cap must be positive, got {cap}")
        if not self.active:
            return
        self.cap = float(cap)
        self.link._state_changed()

    def abort(self, error: NetworkError | None = None) -> None:
        """Terminate the flow; ``done`` fails with ``error``.

        The error is annotated with ``flow_bytes_delivered`` so upper
        layers can keep the in-order prefix that did arrive (a partial
        HTTP body is still valid leading bytes of the range).
        """
        if not self.active:
            return
        self.link._detach(self)
        failure = error or NetworkError("flow aborted")
        failure.flow_bytes_delivered = int(self.bytes_delivered)  # type: ignore[attr-defined]
        self.done.fail(failure)
        self.done.defused = True  # caller may not be waiting anymore

    def _advance_ramp(self, now: float) -> None:
        """Apply every slow-start doubling whose instant has passed.

        The small tolerance absorbs the float error of a wake-up timed
        exactly at a doubling instant landing one ulp short of it.
        """
        ramp_at = self._ramp_at
        if ramp_at is None:
            return
        cap = self.cap
        limit = self._ramp_limit
        while ramp_at is not None and now >= ramp_at - 1e-12:
            cap = min(cap * 2.0, limit)
            ramp_at = None if cap >= limit else ramp_at + self._ramp_interval
        self.cap = cap
        self._ramp_at = ramp_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowHandle {self.bytes_delivered:.0f}/{self.total_bytes:.0f}B "
            f"rate={self.rate:.0f}B/s cap={self.cap:.0f}>"
        )


class Link:
    """One bottleneck link: capacity process + active flow set."""

    __slots__ = (
        "env",
        "name",
        "bandwidth",
        "capacity",
        "_flows",
        "_version",
        "_last_settle",
        "_down",
        "bytes_carried",
        "status_listeners",
        "_segments",
    )

    def __init__(
        self,
        env: Environment,
        bandwidth: BandwidthProcess,
        name: str = "link",
    ) -> None:
        self.env = env
        self.name = name
        self.bandwidth = bandwidth
        self.capacity = bandwidth.mean_rate
        self._flows: list[FlowHandle] = []
        self._version = 0
        self._last_settle = env.now
        self._down = False
        #: Total bytes this link has carried (for Table 1 accounting).
        self.bytes_carried = 0.0
        #: Observers notified on up/down transitions (mobility handling).
        self.status_listeners: list[Callable[[bool], None]] = []
        self._segments: Iterator[tuple[float, float]] = bandwidth.segments()
        env.process(self._capacity_process())

    # -- public API -----------------------------------------------------------

    @property
    def is_down(self) -> bool:
        return self._down

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def start_flow(
        self,
        total_bytes: float,
        cap: float = math.inf,
        ramp_rtt: float | None = None,
        ramp_limit: float = math.inf,
    ) -> FlowHandle:
        """Begin transferring ``total_bytes`` through the link.

        ``ramp_rtt``/``ramp_limit`` arm the closed-form slow-start
        schedule: the cap doubles every ``ramp_rtt`` seconds until it
        reaches ``ramp_limit`` (both in bytes/s terms on the cap).

        Raises :class:`~repro.errors.LinkDownError` immediately if the
        link is down — starting a transfer needs connectivity, whereas
        flows already in progress merely stall while down.
        """
        if self._down:
            raise LinkDownError(f"{self.name} is down")
        flow = FlowHandle(self, total_bytes, cap, ramp_rtt=ramp_rtt, ramp_limit=ramp_limit)
        self._settle()
        self._flows.append(flow)
        self._state_changed(settled=True)
        return flow

    def set_down(self, down: bool) -> None:
        """Take the link down (flows stall) or bring it back up."""
        if down == self._down:
            return
        self._settle()
        self._down = down
        self._state_changed(settled=True)
        for listener in list(self.status_listeners):
            listener(down)

    def reset_flows(self, error: NetworkError | None = None) -> None:
        """Abort every active flow (e.g. hard handover kills connections)."""
        for flow in list(self._flows):
            flow.abort(error or NetworkError(f"{self.name}: flows reset"))

    # -- internal fluid machinery ----------------------------------------------

    def _capacity_process(self):
        """Apply the bandwidth process's piecewise-constant segments."""
        for duration, rate in self._segments:
            self._settle()
            self.capacity = rate
            self._state_changed(settled=True)
            yield self.env.pooled_timeout(duration)

    def _settle(self) -> None:
        """Account bytes delivered since the last allocation change."""
        now = self.env.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0:
            return
        flows = self._flows
        if len(flows) >= _VECTOR_THRESHOLD:
            rates = np.array([f.rate for f in flows])
            remaining = np.array([f.remaining for f in flows])
            delivered = np.minimum(rates * elapsed, remaining)
            total = float(delivered.sum())
            if total > 0.0:
                remaining -= delivered
                for flow, left in zip(flows, remaining.tolist(), strict=True):
                    flow.remaining = left
                self.bytes_carried += total
            return
        for flow in flows:
            delivered = min(flow.rate * elapsed, flow.remaining)
            if delivered > 0:
                flow.remaining -= delivered
                self.bytes_carried += delivered

    def _detach(self, flow: FlowHandle) -> None:
        if flow in self._flows:
            self._settle()
            self._flows.remove(flow)
            self._state_changed(settled=True)

    def _state_changed(self, settled: bool = False) -> None:
        """Recompute allocation and (re)arm the next wake-up.

        The wake-up is the earliest of (a) the next flow completion at
        current rates and (b) the next slow-start doubling of a flow
        whose cap currently binds its rate — the closed-form substitute
        for the per-exchange pacer process.
        """
        if not settled:
            self._settle()
        self._version += 1
        now = self.env.now

        # Catch up the analytic slow-start schedules before allocating:
        # every doubling instant that has passed takes effect here, so
        # the caps are exact whenever the allocation is recomputed.
        for flow in self._flows:
            if flow._ramp_at is not None:
                flow._advance_ramp(now)

        # Complete flows that have (numerically) hit zero remaining
        # bytes.  The microbyte tolerance absorbs float crumbs from the
        # rate*elapsed settlements; real chunks are >= 16 KB.
        finished = [f for f in self._flows if f.remaining <= 1e-6]
        if finished:
            for flow in finished:
                self._flows.remove(flow)
                flow.rate = 0.0
                flow.remaining = 0.0
                flow.finished_at = now
                flow.done.succeed(flow)
            self._version += 1

        capacity = 0.0 if self._down else self.capacity
        flows = self._flows
        if len(flows) >= _VECTOR_THRESHOLD:
            caps = np.array([f.cap for f in flows])
            rate_array = _max_min_allocation_array(capacity, caps)
            remaining = np.array([f.remaining for f in flows])
            completion = np.full(len(flows), math.inf)
            np.divide(remaining, rate_array, out=completion, where=rate_array > 0.0)
            next_event = float(completion.min())
            for flow, rate in zip(flows, rate_array.tolist(), strict=True):
                flow.rate = rate
        else:
            rates = max_min_allocation(capacity, [f.cap for f in flows])
            next_event = math.inf
            for flow, rate in zip(flows, rates, strict=True):
                flow.rate = rate
                if rate > 0:
                    next_event = min(next_event, flow.remaining / rate)
        for flow in flows:
            # A doubling only changes the allocation while the cap binds
            # (rates are exactly the cap for saturated flows); unbinding
            # caps are advanced analytically at the next state change.
            if flow._ramp_at is not None and flow.rate == flow.cap:
                next_event = min(next_event, flow._ramp_at - now)
        if math.isfinite(next_event):
            # Floor the delay at one representable step of the clock so
            # the wake-up is guaranteed to advance time (otherwise a
            # sub-ulp completion would respin at the same timestamp
            # forever).
            minimum_step = math.ulp(now) * 4.0 + 1e-12
            self._arm_wake(max(next_event, minimum_step))

    def _arm_wake(self, delay: float) -> None:
        """Schedule the next allocation-change wake-up on the fast lane.

        ``call_later`` queues the bound callback directly: no Timeout,
        no Event, no lambda — zero allocations beyond the partial, and
        the same single FIFO-counter bump as the Timeout it replaced,
        so dispatch order is unchanged.  Stale wake-ups are filtered by
        the version counter.
        """
        self.env.call_later(delay, partial(self._wake, self._version))

    def _wake(self, version: int) -> None:
        if version == self._version:
            self._state_changed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "down" if self._down else f"{self.capacity:.0f}B/s"
        return f"<Link {self.name} {state} flows={len(self._flows)}>"
