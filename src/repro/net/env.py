"""The discrete-event environment: clock + pluggable scheduling queue.

Usage::

    env = Environment()

    def worker(env):
        yield env.timeout(1.5)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 1.5 and proc.value == "done"

Events scheduled at the same timestamp dispatch in (priority, FIFO)
order, which keeps co-timed interactions deterministic — essential for
reproducible experiments.

The pending-event store is a pluggable *scheduler*
(:mod:`repro.net.calendar`): the seed ``heapq`` kernel, a calendar
queue, or the optional compiled core, selected per environment via
``Environment(kernel=...)`` / ``REPRO_KERNEL`` / ``--kernel`` and
dispatching in a bit-identical total order whichever is active.

Two scheduling lanes exist beside the classic event machinery:

* :meth:`Environment.call_at` / :meth:`Environment.call_later` — the
  *bare-callback fast lane*: a plain callable is queued with no Event
  or Timeout allocation at all.  Contract: fast-lane callbacks cannot
  be waited on, composed, or cancelled — they are for fire-and-forget
  internal wake-ups (link allocation wake-ups and friends), not for
  process synchronization (see DESIGN.md "Kernel internals").
* :meth:`Environment.pooled_timeout` — a recycled timeout event for
  per-chunk churners (TCP request RTTs, DNS/TLS delays): the event
  object and its callback list return to a free pool after dispatch.
  Contract: the caller yields it exactly once, immediately, and never
  stores, composes, or re-yields it.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from ..errors import ClockError, SimulationError
from .calendar import CalendarScheduler, make_scheduler, resolve_kernel
from .events import (
    _URGENT,
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    PooledTimeout,
    Process,
    Timeout,
)
from .simclock import SimClock

#: Pooled timers kept for reuse per environment; beyond this they are
#: left to the garbage collector (a bound, not a working-set estimate).
_TIMER_POOL_LIMIT = 128


class EmptySchedule(SimulationError):
    """``run()`` exhausted the event queue before reaching ``until``."""


# One environment exists per trial (not per event), and the calendar
# kernel shadows ``call_later`` with an instance-level closure — which
# requires a ``__dict__``, so __slots__ cannot apply here.
class Environment:  # replint: disable=SLT001
    """Owns simulated time and the pending-event scheduler."""

    def __init__(self, start: float = 0.0, kernel: str | None = None) -> None:
        self._clock = SimClock(start)
        #: Resolved kernel name ("heapq", "calendar", or "compiled").
        self.kernel = resolve_kernel(kernel)
        self._scheduler = make_scheduler(self.kernel)
        # Bound hot-path methods, cached once (the scheduler is fixed
        # for the environment's lifetime): every schedule saves an
        # attribute chain, which is measurable at fast-lane rates.
        self._push = self._scheduler.schedule
        self._push_callback = self._scheduler.schedule_callback
        if type(self._scheduler) is CalendarScheduler:
            # Instance-level override: the calendar builds a call_later
            # with the insert inlined (one call frame per schedule).
            self.call_later = self._scheduler.make_call_later(
                self._clock, NORMAL, ClockError
            )
        self._active_process: Process | None = None
        self._timer_pool: list[PooledTimeout] = []

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduled_count(self) -> int:
        """Total entries ever scheduled (the FIFO counter's value)."""
        return self._scheduler._counter

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def any_of(self, events) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- fast lanes ------------------------------------------------------------

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule a bare ``callback()`` at absolute time ``when``.

        No Event is allocated; the callback cannot be waited on or
        cancelled.  One validation per schedule happens here (the
        scheduler itself never re-checks).
        """
        if when < self._clock._now:
            raise ClockError(f"cannot schedule a callback at {when} < now")
        self._push_callback(when, NORMAL, callback)

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule a bare ``callback()`` after ``delay`` seconds.

        When the pure-python calendar kernel is active this method is
        shadowed by an instance-level closure with the scheduler insert
        inlined (:meth:`CalendarScheduler.make_call_later`) — same
        contract, one call frame fewer.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule a callback {delay} seconds in the past")
        self._push_callback(self._clock._now + delay, NORMAL, callback)

    def pooled_timeout(self, delay: float, value: object = None) -> PooledTimeout:
        """A timeout event drawn from the environment's free pool.

        Behaves like :meth:`timeout` on the scheduling side (same
        priority, same FIFO-counter bump, so dispatch order is
        bit-identical) but recycles the event object and its callback
        list after dispatch.  Internal hot-path use only — the caller
        must yield it exactly once, immediately; it must never be
        stored, composed into conditions, or yielded after it fired.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule a timeout {delay} seconds in the past")
        pool = self._timer_pool
        if pool:
            timer = pool.pop()
            timer._value = value
            timer.delay = delay
        else:
            timer = PooledTimeout(self, delay, value)
        self._push(self._clock._now + delay, NORMAL, timer)
        return timer

    # -- scheduling (internal API used by events) ----------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        # Delay validation is the *caller's* job (one validation per
        # schedule): Timeout.__init__ checks user-supplied delays; every
        # other internal caller schedules at "now".
        self._push(self._clock._now + delay, priority, event)

    def _schedule_resume(self, process: Process, event: Event) -> None:
        """Urgently redeliver a processed ``event`` straight to ``process``.

        The event's processed state is left untouched: it already ran
        its callbacks at its own dispatch; this entry only carries its
        outcome to one late waiter.
        """
        self._scheduler.schedule_resume(self._clock._now, _URGENT, event, process)

    # -- execution ------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._scheduler.peek()

    def step(self) -> None:
        """Dispatch exactly one event (advancing the clock to it)."""
        scheduler = self._scheduler
        if not scheduler._n:
            raise EmptySchedule("no scheduled events")
        entry = scheduler.pop()
        self._clock.advance_to(entry[0])
        self._dispatch(entry)

    def _dispatch(self, entry: tuple) -> None:
        """Deliver one popped entry.  The run loops inline this body —
        keep the three copies in sync (the duplication buys the kernel
        its single largest constant-factor win; see DESIGN.md)."""
        if len(entry) == 4:
            entry[3]()  # fast lane: a bare callback, no event at all
            return
        event = entry[3]
        process = entry[4]
        if process is not None:
            # Stale-entry guard: an interrupt may have resumed the
            # process since this entry was queued, moving it to another
            # wait; delivering here would double-resume the generator.
            if process._waiting_on is event:
                process._resume(event)
            return
        if event.__class__ is PooledTimeout:
            callbacks = event.callbacks
            if callbacks:
                for callback in callbacks:
                    callback(event)
                callbacks.clear()
            pool = self._timer_pool
            if len(pool) < _TIMER_POOL_LIMIT:
                pool.append(event)
            return
        callbacks = event.callbacks
        event.callbacks = None  # marks the event processed
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event.defused:
            # An event failed and nobody was listening: surface it rather
            # than letting the error pass silently.
            raise event._value  # type: ignore[misc]

    def run(self, until: float | Event | None = None) -> object:
        """Run until the queue drains, a deadline passes, or an event fires.

        * ``until=None`` — run to queue exhaustion;
        * ``until=<float>`` — run to that simulated time (clock is left at
          exactly ``until`` even if the next event is later);
        * ``until=<Event>`` — run until that event is *processed*, then
          return its value (re-raising if it failed).
        """
        if until is None:
            # The drain loop is the kernel's hottest code: the dispatch
            # body is inlined (one _dispatch call per event would cost
            # ~10% of the fast lane's throughput) and hot attributes
            # are cached in locals.  Mirror of _dispatch — keep in sync.
            scheduler = self._scheduler
            clock = self._clock
            pop = scheduler.pop
            pool = self._timer_pool
            # For the pure-python calendar the pop itself is inlined as
            # well (cursor bucket access, lazy sort): one method call
            # per event is the next-largest constant after _dispatch.
            inline_buckets = type(scheduler) is CalendarScheduler
            if inline_buckets:
                buckets = scheduler._buckets
                dirty = scheduler._dirty
                advance = scheduler._advance
            while scheduler._n:
                if inline_buckets:
                    cursor = scheduler._cursor
                    bucket = buckets[cursor]
                    if bucket:
                        if dirty[cursor]:
                            bucket.sort(reverse=True)
                            dirty[cursor] = False
                    else:
                        bucket = advance()
                    scheduler._n -= 1
                    entry = bucket.pop()
                else:
                    entry = pop()
                when = entry[0]
                if when < clock._now:
                    raise ClockError(
                        f"clock moving backwards: {clock._now} -> {when}"
                    )
                clock._now = when
                if len(entry) == 4:
                    entry[3]()
                    continue
                event = entry[3]
                process = entry[4]
                if process is not None:
                    if process._waiting_on is event:
                        process._resume(event)
                    continue
                if event.__class__ is PooledTimeout:
                    callbacks = event.callbacks
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                        callbacks.clear()
                    if len(pool) < _TIMER_POOL_LIMIT:
                        pool.append(event)
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event.defused:
                    raise event._value  # type: ignore[misc]
            return None

        if isinstance(until, Event):
            sentinel = until
            result: list[object] = []

            def _capture(event: Event) -> None:
                result.append(event)

            if sentinel.processed:
                if not sentinel.ok:
                    raise sentinel._value  # type: ignore[misc]
                return sentinel.value
            sentinel.callbacks.append(_capture)
            scheduler = self._scheduler
            clock = self._clock
            pop = scheduler.pop
            while not result:
                if not scheduler._n:
                    raise EmptySchedule(
                        "event queue drained before the awaited event fired"
                    )
                entry = pop()
                clock.advance_to(entry[0])
                self._dispatch(entry)
            if not sentinel._ok:
                sentinel.defused = True
                raise sentinel._value  # type: ignore[misc]
            return sentinel._value

        deadline = float(until)
        if deadline < self.now:
            raise ClockError(f"cannot run until {deadline} < now {self.now}")
        scheduler = self._scheduler
        clock = self._clock
        peek = scheduler.peek
        pop = scheduler.pop
        while scheduler._n and peek() <= deadline:
            entry = pop()
            clock.advance_to(entry[0])
            self._dispatch(entry)
        self._clock.advance_to(deadline)
        return None
