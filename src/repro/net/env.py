"""The discrete-event environment: clock + scheduling queue.

Usage::

    env = Environment()

    def worker(env):
        yield env.timeout(1.5)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 1.5 and proc.value == "done"

Events scheduled at the same timestamp dispatch in (priority, FIFO)
order, which keeps co-timed interactions deterministic — essential for
reproducible experiments.
"""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from ..errors import ClockError, SimulationError
from .events import _URGENT, NORMAL, AllOf, AnyOf, Event, Process, Timeout
from .simclock import SimClock


class EmptySchedule(SimulationError):
    """``run()`` exhausted the event queue before reaching ``until``."""


class Environment:
    """Owns simulated time and the pending-event heap."""

    def __init__(self, start: float = 0.0) -> None:
        self._clock = SimClock(start)
        # Heap entries are (time, priority, tie, event, process).  The
        # ``process`` slot is normally None; when set, the entry is a
        # direct resume of ``process`` with the already-processed
        # ``event`` — allocation-free, and droppable if the process was
        # resumed by something else (an interrupt) in the meantime.
        self._queue: list[tuple[float, int, int, Event, Optional[Process]]] = []
        self._counter = 0  # FIFO tie-breaker for co-timed events
        self._active_process: Optional[Process] = None

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def any_of(self, events) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling (internal API used by events) ----------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ClockError(f"cannot schedule event {delay} seconds in the past")
        self._counter += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._counter, event, None))

    def _schedule_resume(self, process: Process, event: Event) -> None:
        """Urgently redeliver a processed ``event`` straight to ``process``.

        The event's processed state is left untouched: it already ran
        its callbacks at its own dispatch; this entry only carries its
        outcome to one late waiter.
        """
        self._counter += 1
        heapq.heappush(self._queue, (self.now, _URGENT, self._counter, event, process))

    # -- execution ------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Dispatch exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise EmptySchedule("no scheduled events")
        when, _priority, _tie, event, process = heapq.heappop(self._queue)
        self._clock.advance_to(when)
        if process is not None:
            # Stale-entry guard: an interrupt may have resumed the
            # process since this entry was queued, moving it to another
            # wait; delivering here would double-resume the generator.
            if process._waiting_on is event:
                process._resume(event)
            return
        callbacks = event.callbacks
        event.callbacks = None  # marks the event processed
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event.defused:
            # An event failed and nobody was listening: surface it rather
            # than letting the error pass silently.
            raise event._value  # type: ignore[misc]

    def run(self, until: float | Event | None = None) -> object:
        """Run until the queue drains, a deadline passes, or an event fires.

        * ``until=None`` — run to queue exhaustion;
        * ``until=<float>`` — run to that simulated time (clock is left at
          exactly ``until`` even if the next event is later);
        * ``until=<Event>`` — run until that event is *processed*, then
          return its value (re-raising if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            result: list[object] = []

            def _capture(event: Event) -> None:
                result.append(event)

            if sentinel.processed:
                if not sentinel.ok:
                    raise sentinel._value  # type: ignore[misc]
                return sentinel.value
            sentinel.callbacks.append(_capture)
            while not result:
                if not self._queue:
                    raise EmptySchedule(
                        "event queue drained before the awaited event fired"
                    )
                self.step()
            if not sentinel._ok:
                sentinel.defused = True
                raise sentinel._value  # type: ignore[misc]
            return sentinel._value

        deadline = float(until)
        if deadline < self.now:
            raise ClockError(f"cannot run until {deadline} < now {self.now}")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._clock.advance_to(deadline)
        return None
