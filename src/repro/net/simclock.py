"""Simulation clock.

Separated from the event loop so that components which only need to
*read* time (metrics, estimators, loggers) can depend on a tiny
interface instead of the whole environment.
"""

from __future__ import annotations

from ..errors import ClockError


class SimClock:
    """A monotonically non-decreasing simulated clock.

    The environment owns the single writer; everything else sees a
    read-only ``now`` property.  Advancing backwards raises
    :class:`~repro.errors.ClockError` — a guard that has caught real
    heap-ordering bugs during development of event kernels.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when`` (used only by the event loop)."""
        if when < self._now:
            raise ClockError(f"clock moving backwards: {self._now} -> {when}")
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
