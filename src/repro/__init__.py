"""MSPlayer reproduction — multi-source, multi-path video streaming.

A from-scratch Python reproduction of *MSPlayer: Multi-Source and
multi-Path LeverAged YoutubER* (Chen, Towsley, Khalili — ACM CoNEXT
2014), including every substrate the paper's evaluation ran on: a
discrete-event network simulator with WiFi/LTE dynamics, an emulated
YouTube control and data plane, the MSPlayer chunk schedulers, the
single-path commercial-player baselines, and a real-socket asyncio
backend for integration testing.

Quickstart::

    from repro import PlayerConfig, Scenario, MSPlayerDriver, testbed_profile

    scenario = Scenario(testbed_profile(), seed=1)
    outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer").run()
    print(f"pre-buffered 40s of 720p in {outcome.startup_delay:.2f}s")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured result tables.
"""

from .core import (
    ChunkLedger,
    ChunkScheduler,
    DCSAScheduler,
    EWMAEstimator,
    HarmonicMeanEstimator,
    PlayerConfig,
    PlayerSession,
    PlayoutBuffer,
    QoEMetrics,
    RatioScheduler,
    dynamic_chunk_size_adjustment,
    make_estimator,
    make_scheduler,
)
from .sim import (
    MSPlayerDriver,
    Scenario,
    ScenarioConfig,
    SessionOutcome,
    SinglePathDriver,
    TrialRunner,
    mobility_profile,
    testbed_profile,
    youtube_profile,
)
from .study import Study, StudyResult
from .units import KB, MB, format_size, mbit, parse_size

__version__ = "1.0.0"

__all__ = [
    "PlayerConfig",
    "PlayerSession",
    "PlayoutBuffer",
    "ChunkLedger",
    "ChunkScheduler",
    "RatioScheduler",
    "DCSAScheduler",
    "EWMAEstimator",
    "HarmonicMeanEstimator",
    "make_estimator",
    "make_scheduler",
    "dynamic_chunk_size_adjustment",
    "QoEMetrics",
    "Scenario",
    "ScenarioConfig",
    "MSPlayerDriver",
    "SinglePathDriver",
    "SessionOutcome",
    "TrialRunner",
    "Study",
    "StudyResult",
    "testbed_profile",
    "youtube_profile",
    "mobility_profile",
    "KB",
    "MB",
    "mbit",
    "parse_size",
    "format_size",
    "__version__",
]
