"""City-scale declarative workloads over the population machinery.

The paper's experiments replay fixed, hand-picked conditions; this
package opens the workload axis the ROADMAP's north star asks for.  A
*scenario* composes four orthogonal, individually seeded ingredients:

* :mod:`~repro.scenarios.arrivals` — when clients show up (diurnal
  Poisson processes via thinning, flash-crowd bursts);
* :mod:`~repro.scenarios.mix` — who they are (VOD / live / adaptive
  drivers, campus vs mobile access profiles, Zipf catalog skew);
* :mod:`~repro.scenarios.churn` — what breaks underneath them (server
  brownouts and crashes, path degradation windows);
* :mod:`~repro.scenarios.slo` — how the population is judged (p95/p99
  start-up, rebuffer ratio, failover rate, load imbalance), computed
  columnar on :class:`~repro.ext.population.PopulationBatch`.

:mod:`~repro.scenarios.experiment` binds them into a shared-world
population run (one work unit per replicate, same engines/IPC/kernels
as every other campaign), and :mod:`~repro.scenarios.experiments`
registers the ``x8``/``x9`` scenario experiments so the Study API,
grid cache, service backend, CLI, and archives come for free.
"""

from __future__ import annotations

from .arrivals import ArrivalSpec, DiurnalCurve, FlashCrowd, thinned_arrival_times
from .churn import ChurnSpec, PathDegradation, ServerBrownout, ServerCrash, schedule_churn
from .experiment import ScenarioExperiment, ScenarioSpec
from .mix import ClientAssignment, ClientClass, MixSpec
from .slo import SLOReport, population_slo

__all__ = [
    "ArrivalSpec",
    "ChurnSpec",
    "ClientAssignment",
    "ClientClass",
    "DiurnalCurve",
    "FlashCrowd",
    "MixSpec",
    "PathDegradation",
    "SLOReport",
    "ScenarioExperiment",
    "ScenarioSpec",
    "ServerBrownout",
    "ServerCrash",
    "population_slo",
    "schedule_churn",
    "thinned_arrival_times",
]
