"""The scenario experiments: x8 (city diurnal) and x9 (flash crowd).

Registered :class:`~repro.study.registry.ExperimentDef`s over the
scenario engine, so the Study facade, ``--grid`` sweeps, the content-
addressed cache, the service backend, the generated CLI, and versioned
archives all apply to city-scale workloads with zero extra wiring:

* **x8 — city-diurnal**: a population arriving along a compressed
  diurnal curve, the default city mix (VOD on campus links, mobile
  commuters with walk-out windows, live-edge and adaptive slices), a
  Zipf catalog, and background churn off by default.  The policy
  comparison asks how server selection holds the SLO tail through a
  shaped day.
* **x9 — flash-crowd-with-brownout**: most of the population lands
  inside a few-second burst while the churn timeline browns out and
  crashes video servers under it — the §2 robustness story measured as
  population SLOs (start-up tail, rebuffer ratio, failover rate).

Both render per-policy :class:`~repro.scenarios.slo.SLOReport` tables
and archive the raw SLO dicts.
"""

from __future__ import annotations

from functools import partial
from collections.abc import Mapping

from ..analysis.experiments import POLICY_CHOICES, ExperimentResult
from ..analysis.tables import format_table
from ..ext.population import PopulationCampaign
from ..study.params import Param, ParamSchema
from ..study.registry import ExperimentDef, ExperimentPlan, register
from .arrivals import ArrivalSpec, DiurnalCurve, FlashCrowd
from .churn import ChurnSpec
from .experiment import ScenarioExperiment
from .mix import MixSpec
from .slo import SLOReport, population_slo

__all__ = ["X8", "X9", "x8_city_diurnal", "x9_flash_crowd"]


def _slo_rows(policies, results) -> tuple[list[dict[str, str]], dict[str, dict]]:
    rows: list[dict[str, str]] = []
    raw: dict[str, dict] = {}
    for policy in policies:
        slo: SLOReport = population_slo(results[policy].batch)
        raw[policy] = slo.as_dict()
        rows.append(
            {
                "policy": policy,
                "p50/p95/p99 start-up (s)": (
                    f"{slo.p50_startup_s:.2f} / {slo.p95_startup_s:.2f} / "
                    f"{slo.p99_startup_s:.2f}"
                ),
                "rebuffer ratio": f"{slo.rebuffer_ratio:.4f}",
                "failovers/session": f"{slo.failover_rate:.2f}",
                "imbalance (mean/max)": (
                    f"{slo.imbalance_mean:.2f} / {slo.imbalance_max:.2f}"
                ),
                "completed": f"{slo.completed}/{slo.sessions}",
            }
        )
    return rows, raw


# ---------------------------------------------------------------------------
# EXP-X8 — city-diurnal population
# ---------------------------------------------------------------------------


def _x8_experiment(params: Mapping) -> ScenarioExperiment:
    return ScenarioExperiment(
        arrivals=ArrivalSpec(
            horizon_s=params["horizon"],
            curve=DiurnalCurve(
                amplitude=params["amplitude"], period_s=params["horizon"]
            ),
        ),
        mix=MixSpec(catalog_size=params["catalog"], zipf_s=params["zipf"]),
        churn=ChurnSpec(),
        client_count=params["clients"],
        seed=params["seed"],
    )


def _plan_x8(params: Mapping) -> ExperimentPlan:
    """Population SLOs under a compressed diurnal day, per policy.

    One :class:`~repro.ext.population.PopulationCampaign` of
    :class:`~repro.scenarios.experiment.ScenarioSpec` work units —
    replicates fan out across processes exactly like x6, and replicate
    seeds stay policy-independent.
    """
    experiment = _x8_experiment(params)
    campaign = PopulationCampaign()
    for policy in params["policies"]:
        campaign.add(experiment.specs_for(policy, params["replicates"]))
    return ExperimentPlan(campaign, partial(_render_x8, params))


def _render_x8(params: Mapping, results: Mapping) -> ExperimentResult:
    rows, raw = _slo_rows(params["policies"], results)
    rendered = format_table(
        rows,
        title=(
            f"EXP-X8 — city diurnal: {params['clients']} clients x "
            f"{params['replicates']} replicate(s) over a "
            f"{params['horizon']:.0f}s day, population SLOs per policy"
        ),
    )
    return ExperimentResult("x8", rendered, raw)


_SCENARIO_SHARED_PARAMS = (
    Param(
        "replicates",
        int,
        2,
        help="independently seeded populations per policy; each whole "
        "population is one parallel work unit",
        minimum=1,
    ),
    Param(
        "clients",
        int,
        200,
        help="population size (mixed VOD/live/adaptive clients sharing "
        "one CDN deployment)",
        minimum=1,
    ),
    Param("seed", int, 2026, help="root seed for the whole scenario"),
    Param(
        "policies",
        str,
        POLICY_CHOICES,
        help="server-selection policies to compare",
        choices=POLICY_CHOICES,
        many=True,
    ),
    Param("catalog", int, 24, help="synthetic catalog size", minimum=1),
    Param("zipf", float, 1.1, help="catalog popularity skew (Zipf s)"),
)


X8 = register(
    ExperimentDef(
        experiment_id="x8",
        title="city-diurnal scenario population with SLO reporting",
        kind="population",
        schema=ParamSchema(
            (
                *_SCENARIO_SHARED_PARAMS,
                Param(
                    "horizon",
                    float,
                    30.0,
                    help="arrival horizon in sim seconds (one compressed day)",
                ),
                Param(
                    "amplitude",
                    float,
                    2.0,
                    help="diurnal swing: peak rate = 1 + amplitude x trough",
                ),
            )
        ),
        build=_plan_x8,
        description="Diurnal arrivals x city client mix, judged by population SLOs.",
        smoke_params={"replicates": 1, "clients": 3, "catalog": 6},
    )
)


def x8_city_diurnal(
    replicates: int = 2,
    clients: int = 200,
    seed: int = 2026,
    policies: tuple[str, ...] = POLICY_CHOICES,
    catalog: int = 24,
    zipf: float = 1.1,
    horizon: float = 30.0,
    amplitude: float = 2.0,
    jobs=None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("x8", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "x8",
        jobs=jobs,
        replicates=replicates,
        clients=clients,
        seed=seed,
        policies=policies,
        catalog=catalog,
        zipf=zipf,
        horizon=horizon,
        amplitude=amplitude,
    )


# ---------------------------------------------------------------------------
# EXP-X9 — flash crowd over a browning-out CDN
# ---------------------------------------------------------------------------


def _x9_experiment(params: Mapping) -> ScenarioExperiment:
    crowd = max(1, int(round(params["crowd_fraction"] * params["clients"])))
    crowd = min(crowd, params["clients"])
    return ScenarioExperiment(
        arrivals=ArrivalSpec(
            horizon_s=max(params["crowd_at"] + params["crowd_width"], 1.0),
            flash_crowds=(
                FlashCrowd(
                    at_s=params["crowd_at"],
                    clients=crowd,
                    width_s=params["crowd_width"],
                ),
            ),
        ),
        mix=MixSpec(catalog_size=params["catalog"], zipf_s=params["zipf"]),
        churn=ChurnSpec(
            brownouts=params["brownouts"],
            crashes=params["crashes"],
            window_start_s=params["crowd_at"],
            window_end_s=params["crowd_at"] + max(params["crowd_width"], 1.0) + 20.0,
        ),
        client_count=params["clients"],
        seed=params["seed"],
    )


def _plan_x9(params: Mapping) -> ExperimentPlan:
    """The robustness scenario: a burst arrival meets CDN churn."""
    experiment = _x9_experiment(params)
    campaign = PopulationCampaign()
    for policy in params["policies"]:
        campaign.add(experiment.specs_for(policy, params["replicates"]))
    return ExperimentPlan(campaign, partial(_render_x9, params))


def _render_x9(params: Mapping, results: Mapping) -> ExperimentResult:
    rows, raw = _slo_rows(params["policies"], results)
    rendered = format_table(
        rows,
        title=(
            f"EXP-X9 — flash crowd ({params['crowd_fraction']:.0%} of "
            f"{params['clients']} clients in {params['crowd_width']:.0f}s) "
            f"with {params['brownouts']} brownout(s) + "
            f"{params['crashes']} crash(es)"
        ),
    )
    return ExperimentResult("x9", rendered, raw)


X9 = register(
    ExperimentDef(
        experiment_id="x9",
        title="flash-crowd-with-brownout scenario population",
        kind="population",
        schema=ParamSchema(
            (
                *_SCENARIO_SHARED_PARAMS,
                Param("crowd_at", float, 8.0, help="burst start (sim seconds)"),
                Param("crowd_width", float, 4.0, help="burst width (sim seconds)"),
                Param(
                    "crowd_fraction",
                    float,
                    0.6,
                    help="share of the population arriving inside the burst",
                ),
                Param(
                    "brownouts",
                    int,
                    2,
                    help="video-server brownout windows injected under the crowd",
                    minimum=0,
                ),
                Param(
                    "crashes",
                    int,
                    1,
                    help="hard video-server crash/recover windows",
                    minimum=0,
                ),
            )
        ),
        build=_plan_x9,
        description="Burst arrivals over a degrading CDN — §2 robustness as SLOs.",
        smoke_params={"replicates": 1, "clients": 3, "catalog": 6},
    )
)


def x9_flash_crowd(
    replicates: int = 2,
    clients: int = 200,
    seed: int = 2026,
    policies: tuple[str, ...] = POLICY_CHOICES,
    catalog: int = 24,
    zipf: float = 1.1,
    crowd_at: float = 8.0,
    crowd_width: float = 4.0,
    crowd_fraction: float = 0.6,
    brownouts: int = 2,
    crashes: int = 1,
    jobs=None,
) -> ExperimentResult:
    """Compatibility wrapper over ``Study("x9", ...)``."""
    from ..study import run_experiment

    return run_experiment(
        "x9",
        jobs=jobs,
        replicates=replicates,
        clients=clients,
        seed=seed,
        policies=policies,
        catalog=catalog,
        zipf=zipf,
        crowd_at=crowd_at,
        crowd_width=crowd_width,
        crowd_fraction=crowd_fraction,
        brownouts=brownouts,
        crashes=crashes,
    )
