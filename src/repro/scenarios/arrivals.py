"""Seed-deterministic arrival processes for client populations.

A population experiment needs *when each client shows up*.  The
existing multi-client experiments hard-stagger arrivals uniformly over
a couple of seconds; city-scale workloads need shaped processes — a
diurnal rate curve with a rush-hour hump, or a flash crowd slamming the
deployment inside a few seconds of a release.

The generator is an inhomogeneous Poisson process *conditioned on the
client count*: given that exactly ``n`` clients arrive in the horizon,
their arrival times are i.i.d. with density proportional to the rate
curve, so we sample them by thinning against the curve's peak rate
(accept a uniform candidate ``t`` with probability ``rate(t)/peak``)
and sort.  Conditioning keeps populations exactly ``client_count``
strong — the dense batch layout and the replicate comparisons stay
rectangular — while preserving the curve's shape in the arrival
density.

Everything derives from :class:`~repro.rng.RngFactory` streams; the
same ``(seed, spec)`` pair produces the same times on every backend and
kernel (the scenario determinism wall holds this to byte identity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..rng import RngFactory

__all__ = [
    "ArrivalSpec",
    "DiurnalCurve",
    "FlashCrowd",
    "thinned_arrival_times",
]


@dataclass(frozen=True)
class DiurnalCurve:
    """A raised-cosine daily rate shape, compressed to the sim horizon.

    ``rate(t) = 1 + amplitude * (1 - cos(2π(t/period - phase))) / 2``
    in arbitrary units — only the *shape* matters because arrival times
    are conditioned on the client count.  ``amplitude = 0`` degenerates
    to a homogeneous Poisson process; ``phase`` positions the peak
    (``phase = 0.5`` puts the trough at the horizon edges).
    """

    amplitude: float = 0.0
    period_s: float = 60.0
    phase: float = 0.5

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ConfigError("amplitude must be non-negative")
        if self.period_s <= 0:
            raise ConfigError("period_s must be positive")

    @property
    def peak_rate(self) -> float:
        """The thinning bound: ``rate(t) <= peak_rate`` everywhere."""
        return 1.0 + self.amplitude

    def rate(self, t: float) -> float:
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t / self.period_s - self.phase)))
        return 1.0 + self.amplitude * swing


def thinned_arrival_times(
    rng: np.random.Generator,
    curve: DiurnalCurve,
    horizon_s: float,
    count: int,
) -> list[float]:
    """``count`` sorted arrival times in ``[0, horizon_s)`` by thinning.

    Rejection sampling against ``curve.peak_rate``: uniform candidates
    are accepted with probability ``rate(t)/peak``, so accepted times
    follow the curve's normalized density exactly.  Acceptance is at
    least ``1/peak_rate`` per candidate, so the loop terminates for any
    finite amplitude.
    """
    if horizon_s <= 0:
        raise ConfigError("horizon_s must be positive")
    if count < 0:
        raise ConfigError("count must be non-negative")
    peak = curve.peak_rate
    times: list[float] = []
    while len(times) < count:
        candidate = float(rng.uniform(0.0, horizon_s))
        if float(rng.uniform(0.0, peak)) < curve.rate(candidate):
            times.append(candidate)
    times.sort()
    return times


@dataclass(frozen=True)
class FlashCrowd:
    """A burst of ``clients`` arrivals inside ``[at_s, at_s + width_s)``."""

    at_s: float
    clients: int
    width_s: float = 5.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigError("at_s must be non-negative")
        if self.clients < 1:
            raise ConfigError("a flash crowd needs at least one client")
        if self.width_s <= 0:
            raise ConfigError("width_s must be positive")


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative, picklable arrival process for one population.

    The background process spreads clients over ``horizon_s`` along the
    diurnal curve; each :class:`FlashCrowd` claims a fixed share of the
    population and lands it inside its burst window.  ``times`` expands
    the spec into per-client launch delays, deterministic in
    ``(seed, spec)``.
    """

    horizon_s: float = 30.0
    curve: DiurnalCurve = DiurnalCurve()
    flash_crowds: tuple[FlashCrowd, ...] = ()

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")

    def crowd_clients(self) -> int:
        return sum(crowd.clients for crowd in self.flash_crowds)

    def times(self, seed: int, count: int) -> list[float]:
        """``count`` sorted launch delays for the whole population.

        Flash-crowd sizes are honored exactly; the remaining clients
        ride the background process.  Raises if the crowds alone exceed
        the population.
        """
        if count < 0:
            raise ConfigError("count must be non-negative")
        burst_total = self.crowd_clients()
        if burst_total > count:
            raise ConfigError(
                f"flash crowds claim {burst_total} clients but the "
                f"population has only {count}"
            )
        factory = RngFactory(seed)
        times = thinned_arrival_times(
            factory.generator("arrivals.background"),
            self.curve,
            self.horizon_s,
            count - burst_total,
        )
        for index, crowd in enumerate(self.flash_crowds):
            crowd_rng = factory.generator(f"arrivals.crowd-{index}")
            times.extend(
                crowd.at_s + float(offset)
                for offset in crowd_rng.uniform(0.0, crowd.width_s, size=crowd.clients)
            )
        times.sort()
        return times
