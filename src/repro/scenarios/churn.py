"""CDN fault injection as a seed-deterministic event timeline.

The paper's §2 robustness story is about what happens *underneath* the
players: servers browning out under demand surges, replicas crashing,
access paths degrading mid-session.  This module turns those into a
declarative, replayable timeline riding the machinery that already
exists:

* :class:`ServerBrownout` tightens one video server's overload
  threshold for a window (the :class:`~repro.http.server.SimHTTPServer`
  queueing penalty kicks in earlier — degraded, not dead);
* :class:`ServerCrash` calls :meth:`~repro.net.topology.Host.fail`
  (connection resets → MSPlayer source failover) and recovers later;
* :class:`PathDegradation` takes a fraction of the population's
  interfaces of one kind down for a window (the §2 walk-out, applied
  population-wide).

:class:`ChurnSpec` samples a timeline from dedicated
:class:`~repro.rng.RngFactory` streams, and :func:`schedule_churn`
registers the timer processes on the shared environment.  The timeline
is data — the same ``(seed, spec)`` pair yields the same events on
every backend and kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from collections.abc import Sequence

from ..cdn.deployment import CDNDeployment
from ..errors import ConfigError
from ..net.env import Environment
from ..net.iface import NetworkInterface
from ..rng import RngFactory

__all__ = [
    "ChurnEvent",
    "ChurnSpec",
    "PathDegradation",
    "ServerBrownout",
    "ServerCrash",
    "schedule_churn",
]


def _check_window(start_s: float, end_s: float) -> None:
    if not 0 <= start_s < end_s:
        raise ConfigError(f"invalid churn window [{start_s}, {end_s}]")


@dataclass(frozen=True)
class ServerBrownout:
    """One video server degraded (not dead) for a window."""

    network_id: str
    host_index: int
    start_s: float
    end_s: float
    #: Overload threshold during the window; 0 = every concurrent
    #: request pays the queueing penalty.
    threshold: int = 0

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.threshold < 0:
            raise ConfigError("threshold must be non-negative")


@dataclass(frozen=True)
class ServerCrash:
    """One video server down hard, then recovered."""

    network_id: str
    host_index: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class PathDegradation:
    """A fraction of the population loses one interface kind."""

    iface: str  # "wifi" | "lte"
    start_s: float
    end_s: float
    fraction: float = 0.25

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.iface not in ("wifi", "lte"):
            raise ConfigError(f"iface must be 'wifi' or 'lte', got {self.iface!r}")
        if not 0 < self.fraction <= 1:
            raise ConfigError("fraction must be in (0, 1]")


ChurnEvent = ServerBrownout | ServerCrash | PathDegradation


@dataclass(frozen=True)
class ChurnSpec:
    """Declarative fault load, sampled into a concrete timeline.

    Counts say how many of each event kind to inject; windows are drawn
    uniformly inside ``[window_start_s, window_end_s]`` with durations
    in ``[min_duration_s, max_duration_s]``.  ``timeline`` is the pure
    expansion — events sorted by start time, deterministic in
    ``(seed, spec, topology shape)``.
    """

    brownouts: int = 0
    crashes: int = 0
    degradations: int = 0
    window_start_s: float = 5.0
    window_end_s: float = 40.0
    min_duration_s: float = 5.0
    max_duration_s: float = 15.0
    brownout_threshold: int = 0
    degraded_fraction: float = 0.25

    def __post_init__(self) -> None:
        if min(self.brownouts, self.crashes, self.degradations) < 0:
            raise ConfigError("event counts must be non-negative")
        if not 0 <= self.window_start_s < self.window_end_s:
            raise ConfigError("need 0 <= window_start_s < window_end_s")
        if not 0 < self.min_duration_s <= self.max_duration_s:
            raise ConfigError("need 0 < min_duration_s <= max_duration_s")

    @property
    def total_events(self) -> int:
        return self.brownouts + self.crashes + self.degradations

    def timeline(
        self,
        seed: int,
        networks: Sequence[str],
        hosts_per_network: int,
    ) -> tuple[ChurnEvent, ...]:
        """Expand the spec against a topology shape."""
        if self.total_events and (not networks or hosts_per_network < 1):
            raise ConfigError("churn needs at least one network and host")
        factory = RngFactory(seed)
        events: list[ChurnEvent] = []

        def window(rng) -> tuple[float, float]:
            start = float(rng.uniform(self.window_start_s, self.window_end_s))
            duration = float(rng.uniform(self.min_duration_s, self.max_duration_s))
            return start, start + duration

        rng = factory.generator("churn.brownouts")
        for _ in range(self.brownouts):
            start, end = window(rng)
            events.append(
                ServerBrownout(
                    network_id=networks[int(rng.integers(len(networks)))],
                    host_index=int(rng.integers(hosts_per_network)),
                    start_s=start,
                    end_s=end,
                    threshold=self.brownout_threshold,
                )
            )
        rng = factory.generator("churn.crashes")
        for _ in range(self.crashes):
            start, end = window(rng)
            events.append(
                ServerCrash(
                    network_id=networks[int(rng.integers(len(networks)))],
                    host_index=int(rng.integers(hosts_per_network)),
                    start_s=start,
                    end_s=end,
                )
            )
        rng = factory.generator("churn.degradations")
        for index in range(self.degradations):
            start, end = window(rng)
            events.append(
                PathDegradation(
                    iface=("wifi", "lte")[index % 2],
                    start_s=start,
                    end_s=end,
                    fraction=self.degraded_fraction,
                )
            )
        events.sort(key=attrgetter("start_s", "end_s"))
        return tuple(events)


def schedule_churn(
    env: Environment,
    deployment: CDNDeployment,
    events: Sequence[ChurnEvent],
    client_ifaces: Sequence[tuple[NetworkInterface, NetworkInterface]] = (),
    seed: int = 0,
) -> None:
    """Register one timer process per event on the shared environment.

    ``client_ifaces`` is the population's ``(wifi, lte)`` interface
    pairs; :class:`PathDegradation` picks its victims from it with a
    dedicated seeded stream so the affected subset is as replayable as
    the windows themselves.
    """
    victim_rng = RngFactory(seed).generator("churn.victims")
    for event in events:
        if isinstance(event, ServerBrownout):
            host = deployment.pools[event.network_id].video_hosts[event.host_index]

            def brownout(host=host, event=event):
                server = host.app
                yield env.pooled_timeout(event.start_s)
                restore = server.overload_threshold
                server.overload_threshold = event.threshold
                yield env.pooled_timeout(event.end_s - event.start_s)
                server.overload_threshold = restore

            env.process(brownout())
        elif isinstance(event, ServerCrash):
            host = deployment.pools[event.network_id].video_hosts[event.host_index]

            def crash(host=host, event=event):
                yield env.pooled_timeout(event.start_s)
                host.fail()
                yield env.pooled_timeout(event.end_s - event.start_s)
                host.recover()

            env.process(crash())
        else:
            if not client_ifaces:
                continue
            count = max(1, round(event.fraction * len(client_ifaces)))
            victims = victim_rng.choice(
                len(client_ifaces), size=min(count, len(client_ifaces)), replace=False
            )
            side = 0 if event.iface == "wifi" else 1
            ifaces = [client_ifaces[int(v)][side] for v in sorted(victims)]

            def degrade(ifaces=ifaces, event=event):
                yield env.pooled_timeout(event.start_s)
                for iface in ifaces:
                    iface.set_up(False)
                yield env.pooled_timeout(event.end_s - event.start_s)
                for iface in ifaces:
                    iface.set_up(True)

            env.process(degrade())
