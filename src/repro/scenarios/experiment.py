"""Shared-world scenario populations as campaign work units.

:class:`ScenarioExperiment` is the city-scale sibling of
:class:`~repro.ext.multi_client.MultiClientExperiment`: one environment,
one CDN deployment, ``client_count`` clients — but arrivals come from an
:class:`~repro.scenarios.arrivals.ArrivalSpec`, each client's driver /
access profile / video from a :class:`~repro.scenarios.mix.MixSpec`,
and a :class:`~repro.scenarios.churn.ChurnSpec` timeline degrades the
CDN underneath them.  The result is a plain
:class:`~repro.ext.multi_client.MultiClientResult`, so the whole
population rides the existing :class:`~repro.ext.population`
machinery — dense arena rows, side records, byte-identical batches on
every backend and kernel — without a new collection path.

Adaptive-bitrate clients run :class:`~repro.ext.adaptive.
AdaptiveSimDriver` inside the shared world; their outcomes are folded
into :class:`~repro.sim.driver.SessionOutcome` *inside* ``run`` so
serial and worker paths encode exactly the same objects.

Random-stream layout (all from the population seed): ``mix.*`` for the
catalog/classes/videos, ``arrivals.*`` for launch times, ``churn.*``
for the fault timeline and its victims, ``cdn`` for the deployment, and
``client-<i>`` children for each client's private links — disjoint
labels, so scenario ingredients never perturb each other.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cdn.catalog import Catalog
from ..cdn.deployment import CDNConfig, CDNDeployment
from ..core.config import PlayerConfig
from ..errors import ConfigError
from ..ext.adaptive import AdaptiveOutcome, AdaptiveSimDriver, ThroughputController
from ..ext.multi_client import MultiClientResult, _SharedWorldScenario
from ..ext.population import PopulationSpec
from ..net.dns import StubResolver
from ..net.env import Environment
from ..net.topology import Network
from ..rng import RngFactory
from ..sim.driver import MSPlayerDriver, SessionOutcome
from ..sim.profiles import PROFILES, NetworkProfile
from ..sim.scenario import LTE_NET, WIFI_NET, ScenarioConfig
from .arrivals import ArrivalSpec
from .churn import ChurnSpec, schedule_churn
from .mix import ClientAssignment, MixSpec

__all__ = ["ScenarioExperiment", "ScenarioSpec", "session_outcome_from_adaptive"]


def session_outcome_from_adaptive(outcome: AdaptiveOutcome) -> SessionOutcome:
    """Fold an adaptive outcome into the population's common shape.

    The population side channel and dense rows speak
    :class:`~repro.sim.driver.SessionOutcome`; the adaptive driver's
    extras (itag history, switch counts) are per-session diagnostics the
    population SLOs do not consume.  Metrics ride through untouched, so
    start-up/stall/failover aggregation is exact.
    """
    return SessionOutcome(
        metrics=outcome.metrics,
        finished_at=outcome.finished_at,
        stop_reason=outcome.stop_reason,
        peak_out_of_order=outcome.metrics.peak_out_of_order,
    )


def _client_config(base: PlayerConfig, prebuffer_s: float | None) -> PlayerConfig:
    """A class's player config: optional shallow live-edge buffer."""
    if prebuffer_s is None:
        return base
    return replace(
        base,
        prebuffer_s=prebuffer_s,
        low_watermark_s=min(base.low_watermark_s, prebuffer_s / 2.0),
        rebuffer_fetch_s=min(base.rebuffer_fetch_s, prebuffer_s),
    )


class ScenarioExperiment:
    """Run one declarative scenario population under a selection policy."""

    def __init__(
        self,
        arrivals: ArrivalSpec | None = None,
        mix: MixSpec | None = None,
        churn: ChurnSpec | None = None,
        client_count: int = 50,
        seed: int = 2026,
        world_profile: str = "youtube",
        overload_threshold: int | None = 2,
        player_config: PlayerConfig | None = None,
        max_sim_time: float = 900.0,
    ) -> None:
        if client_count < 1:
            raise ConfigError("need at least one client")
        if world_profile not in PROFILES:
            raise ConfigError(
                f"unknown world profile {world_profile!r}; "
                f"known: {', '.join(sorted(PROFILES))}"
            )
        self.arrivals = arrivals or ArrivalSpec()
        self.mix = mix or MixSpec()
        self.churn = churn or ChurnSpec()
        self.client_count = client_count
        self.seed = seed
        self.world_profile = world_profile
        self.overload_threshold = overload_threshold
        self.player_config = player_config or PlayerConfig()
        self.max_sim_time = max_sim_time

    # -- world construction ---------------------------------------------------

    def _profile_for(self, assignment: ClientAssignment) -> NetworkProfile:
        try:
            factory = PROFILES[assignment.profile]
        except KeyError:
            raise ConfigError(
                f"client class {assignment.client_class!r} names unknown "
                f"profile {assignment.profile!r}"
            ) from None
        return factory()

    def _driver(
        self,
        scenario: _SharedWorldScenario,
        assignment: ClientAssignment,
    ) -> MSPlayerDriver | AdaptiveSimDriver:
        config = _client_config(self.player_config, assignment.prebuffer_s)
        if assignment.driver == "adaptive":
            return AdaptiveSimDriver(
                scenario,
                ThroughputController(),
                config,
                stop="full",
                max_sim_time=self.max_sim_time,
            )
        return MSPlayerDriver(
            scenario, config, stop="full", max_sim_time=self.max_sim_time
        )

    def run(self, policy: str) -> MultiClientResult:
        world = PROFILES[self.world_profile]()
        factory = RngFactory(self.seed)
        catalog: Catalog = self.mix.build_catalog(factory)
        assignments = self.mix.assign(factory, self.client_count, catalog)
        delays = self.arrivals.times(self.seed, self.client_count)

        env = Environment()
        network = Network(env)
        resolver = StubResolver(env, lookup_delay=world.dns_delay_s)
        deployment = CDNDeployment(
            env,
            network,
            catalog,
            CDNConfig(
                networks=(WIFI_NET, LTE_NET),
                video_servers_per_network=world.video_servers_per_network,
                selection_policy=policy,
                tls=world.tls,
                proxy_distance=world.proxy_distance_s,
                video_distance=world.video_distance_s,
                overload_threshold=self.overload_threshold,
            ),
            rng=factory.generator("cdn"),
            resolver=resolver,
        )

        scenarios: list[_SharedWorldScenario] = []
        drivers: list[MSPlayerDriver | AdaptiveSimDriver] = []
        for assignment, delay in zip(assignments, delays, strict=True):
            profile = self._profile_for(assignment)
            video = catalog.get(assignment.video_id)
            config = ScenarioConfig(
                video_duration_s=video.duration_s,
                video_id=video.video_id,
                copyrighted=video.copyrighted,
                itags=video.itags,
                selection_policy=policy,
                overload_threshold=self.overload_threshold,
            )
            scenario = _SharedWorldScenario(
                profile,
                seed=self.seed,
                client_index=assignment.index,
                shared_env=env,
                shared_network=network,
                shared_resolver=resolver,
                shared_catalog=catalog,
                shared_deployment=deployment,
                config=config,
            )
            scenarios.append(scenario)
            drivers.append(self._driver(scenario, assignment))

            def launch(driver=drivers[-1], delay=delay):
                yield env.pooled_timeout(delay)
                driver.launch()

            env.process(launch())

            # Profile outages are session-relative (a commuter walks out
            # of WiFi range minutes into *their* session, not at world
            # time t): shift each window by the client's arrival.
            for outage in profile.outages:
                iface = scenario.wifi if outage.iface == "wifi" else scenario.lte

                def walk_out(iface=iface, outage=outage, delay=delay):
                    yield env.pooled_timeout(delay + outage.down_at)
                    iface.set_up(False)
                    yield env.pooled_timeout(outage.up_at - outage.down_at)
                    iface.set_up(True)

                env.process(walk_out())

        timeline = self.churn.timeline(
            self.seed,
            networks=(WIFI_NET, LTE_NET),
            hosts_per_network=world.video_servers_per_network,
        )
        schedule_churn(
            env,
            deployment,
            timeline,
            client_ifaces=[(s.wifi, s.lte) for s in scenarios],
            seed=self.seed,
        )

        env.run(until=env.all_of([driver.finished for driver in drivers]))

        result = MultiClientResult(policy=policy)
        for driver in drivers:
            outcome = driver.collect()
            if isinstance(outcome, AdaptiveOutcome):
                outcome = session_outcome_from_adaptive(outcome)
            result.outcomes.append(outcome)
        result.server_bytes = deployment.total_bytes_served()
        return result

    # -- population campaigns -------------------------------------------------

    def replicate_seed(self, replicate: int) -> int:
        """Policy-independent derived seed (same contract as x6)."""
        return RngFactory(self.seed).child(f"replicate-{replicate}").integer(
            "population"
        )

    def specs_for(self, policy: str, replicates: int = 1) -> list["ScenarioSpec"]:
        """Picklable specs that rebuild this scenario on any backend."""
        return [
            ScenarioSpec(
                label=policy,
                trial=replicate,
                seed=self.replicate_seed(replicate),
                policy=policy,
                client_count=self.client_count,
                profile_factory=PROFILES[self.world_profile],
                overload_threshold=self.overload_threshold,
                player_config=self.player_config,
                arrivals=self.arrivals,
                mix=self.mix,
                churn=self.churn,
                world_profile=self.world_profile,
                max_sim_time=self.max_sim_time,
            )
            for replicate in range(replicates)
        ]

    def compare(
        self,
        policies: tuple[str, ...] = ("static", "rotate", "least_loaded"),
        replicates: int = 1,
        jobs=None,
    ):
        """Every policy over identically seeded replicate scenarios."""
        from ..ext.population import PopulationCampaign

        campaign = PopulationCampaign(jobs=jobs)
        for policy in policies:
            campaign.add(self.specs_for(policy, replicates))
        return campaign.run()


@dataclass(frozen=True)
class ScenarioSpec(PopulationSpec):
    """One (policy, replicate) scenario population, self-contained.

    Extends :class:`~repro.ext.population.PopulationSpec` — same dense
    arena layout, side records, and rebuild path — but ``run`` builds a
    :class:`ScenarioExperiment` world instead of the uniform
    multi-client one.  The inherited ``profile_factory`` carries the
    *world* profile (deployment shape); per-client access profiles come
    from the mix.
    """

    arrivals: ArrivalSpec = ArrivalSpec()
    mix: MixSpec = MixSpec()
    churn: ChurnSpec = ChurnSpec()
    world_profile: str = "youtube"
    max_sim_time: float = 900.0

    def run(self) -> MultiClientResult:
        experiment = ScenarioExperiment(
            arrivals=self.arrivals,
            mix=self.mix,
            churn=self.churn,
            client_count=self.client_count,
            seed=self.seed,
            world_profile=self.world_profile,
            overload_threshold=self.overload_threshold,
            player_config=self.player_config,
            max_sim_time=self.max_sim_time,
        )
        return experiment.run(self.policy)
