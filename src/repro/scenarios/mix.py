"""Declarative client mixes expanded into per-client assignments.

A city-scale population is not one client copied N times: it is VOD
watchers on campus WiFi next to commuters on flaky mobile links next to
adaptive-bitrate sessions, all pulling different videos from a catalog
with Zipf-skewed popularity.  :class:`MixSpec` declares that mixture
once — weighted :class:`ClientClass`es plus catalog parameters — and
expands it into concrete per-client :class:`ClientAssignment`s from the
population's root seed.

Expansion is deterministic and stream-isolated: the class draw, the
Zipf permutation, and the per-client video choices each use their own
:class:`~repro.rng.RngFactory` label, so adding a class or growing the
catalog perturbs nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cdn.catalog import Catalog
from ..errors import ConfigError
from ..rng import RngFactory

__all__ = [
    "DRIVER_KINDS",
    "ClientAssignment",
    "ClientClass",
    "MixSpec",
]

#: Driver flavors a client class can request: ``vod`` watches the whole
#: clip through MSPlayer, ``live`` is an MSPlayer session tuned for a
#: shallow live-edge buffer, ``adaptive`` runs the DASH-style
#: segment/bitrate driver (:mod:`repro.ext.adaptive`).
DRIVER_KINDS = ("vod", "live", "adaptive")


@dataclass(frozen=True)
class ClientClass:
    """One weighted slice of the population."""

    name: str
    weight: float
    driver: str = "vod"
    #: Profile name resolved against ``repro.sim.profiles.PROFILES``
    #: (``campus``, ``mobile``, ``youtube``, ...).
    profile: str = "youtube"
    #: Optional pre-buffer override (seconds); ``None`` keeps the
    #: experiment's base :class:`~repro.core.config.PlayerConfig`.
    prebuffer_s: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"class {self.name!r} needs a positive weight")
        if self.driver not in DRIVER_KINDS:
            raise ConfigError(
                f"unknown driver {self.driver!r}; expected one of {DRIVER_KINDS}"
            )
        if self.prebuffer_s is not None and self.prebuffer_s <= 0:
            raise ConfigError("prebuffer_s override must be positive")


@dataclass(frozen=True)
class ClientAssignment:
    """One client's concrete draw from the mix."""

    index: int
    client_class: str
    driver: str
    profile: str
    prebuffer_s: float | None
    video_id: str


#: A city-shaped default: mostly VOD on good links, a live-edge slice,
#: a mobile commuter slice, and an adaptive-bitrate slice.
CITY_MIX_CLASSES = (
    ClientClass("vod-campus", weight=0.45, driver="vod", profile="campus"),
    ClientClass("vod-mobile", weight=0.25, driver="vod", profile="mobile"),
    ClientClass("live", weight=0.15, driver="live", profile="youtube", prebuffer_s=5.0),
    ClientClass("adaptive", weight=0.15, driver="adaptive", profile="youtube"),
)


@dataclass(frozen=True)
class MixSpec:
    """The declarative mixture: classes plus catalog shape."""

    classes: tuple[ClientClass, ...] = CITY_MIX_CLASSES
    catalog_size: int = 24
    zipf_s: float = 1.1
    copyrighted_fraction: float = 0.2
    mean_duration_s: float = 90.0

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigError("a mix needs at least one client class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate class names in mix: {names}")
        if self.catalog_size < 1:
            raise ConfigError("catalog_size must be positive")

    def build_catalog(self, factory: RngFactory) -> Catalog:
        """The population's shared video catalog (stream ``mix.catalog``)."""
        return Catalog.synthetic(
            factory.generator("mix.catalog"),
            count=self.catalog_size,
            copyrighted_fraction=self.copyrighted_fraction,
            mean_duration_s=self.mean_duration_s,
        )

    def assign(
        self, factory: RngFactory, count: int, catalog: Catalog
    ) -> list[ClientAssignment]:
        """Expand the mix into ``count`` per-client assignments."""
        if count < 0:
            raise ConfigError("count must be non-negative")
        total = sum(c.weight for c in self.classes)
        weights = [c.weight / total for c in self.classes]
        class_rng = factory.generator("mix.classes")
        class_indices = class_rng.choice(len(self.classes), size=count, p=weights)

        popularity = catalog.popularity_weights(
            factory.generator("mix.zipf"), zipf_s=self.zipf_s
        )
        video_ids = list(popularity)
        video_rng = factory.generator("mix.videos")
        video_indices = video_rng.choice(
            len(video_ids), size=count, p=list(popularity.values())
        )

        assignments = []
        for index in range(count):
            client_class = self.classes[int(class_indices[index])]
            assignments.append(
                ClientAssignment(
                    index=index,
                    client_class=client_class.name,
                    driver=client_class.driver,
                    profile=client_class.profile,
                    prebuffer_s=client_class.prebuffer_s,
                    video_id=video_ids[int(video_indices[index])],
                )
            )
        return assignments
