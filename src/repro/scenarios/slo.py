"""Population-level SLO reporting, computed columnar.

Scenario experiments are judged the way an operator judges a fleet —
not per-figure curves but service-level objectives over the whole
population:

* **start-up tail**: p50/p95/p99 of every client's start-up delay
  (pooled across replicates, from the batch's CSR column);
* **rebuffer ratio**: stalled seconds per session second, the industry
  QoE headline;
* **failover rate**: source failovers per session — how hard the §2
  robustness machinery worked;
* **load imbalance**: max/mean server byte ratio (idle replicas count),
  averaged over replicates;
* **completion**: fraction of sessions whose playback ever started.

Everything reads the dense replicate aggregates and the CSR start-up
column of :class:`~repro.ext.population.PopulationBatch` — no result
objects are materialized, so SLOs on a thousand-replicate study cost a
few numpy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ext.population import PopulationBatch

__all__ = ["SLOReport", "population_slo"]


@dataclass(frozen=True)
class SLOReport:
    """One policy's population SLOs across replicates."""

    sessions: int
    completed: int
    p50_startup_s: float
    p95_startup_s: float
    p99_startup_s: float
    rebuffer_ratio: float
    failover_rate: float
    imbalance_mean: float
    imbalance_max: float
    total_gbytes: float

    @property
    def completion_rate(self) -> float:
        return self.completed / self.sessions if self.sessions else 0.0

    def as_dict(self) -> dict[str, float]:
        """Raw-dict form for archives and renderers."""
        return {
            "sessions": float(self.sessions),
            "completed": float(self.completed),
            "completion_rate": self.completion_rate,
            "p50_startup_s": self.p50_startup_s,
            "p95_startup_s": self.p95_startup_s,
            "p99_startup_s": self.p99_startup_s,
            "rebuffer_ratio": self.rebuffer_ratio,
            "failover_rate": self.failover_rate,
            "imbalance_mean": self.imbalance_mean,
            "imbalance_max": self.imbalance_max,
            "total_gbytes": self.total_gbytes,
        }


def population_slo(batch: PopulationBatch) -> SLOReport:
    """Reduce one policy's replicate batch to its SLO report.

    Start-up percentiles pool every client across replicates (the tail
    an operator sees, not a mean of per-replicate tails); ratios use
    population-total numerators and denominators for the same reason.
    """
    startups = batch.client_startup
    if startups.size:
        p50, p95, p99 = (
            float(q) for q in np.quantile(startups, (0.5, 0.95, 0.99))
        )
    else:
        p50 = p95 = p99 = float("nan")
    session_time = float(np.sum(batch.session_time))
    sessions = int(np.sum(batch.sessions))
    return SLOReport(
        sessions=sessions,
        completed=int(np.sum(batch.completed)),
        p50_startup_s=p50,
        p95_startup_s=p95,
        p99_startup_s=p99,
        rebuffer_ratio=(
            float(np.sum(batch.total_stall)) / session_time if session_time else 0.0
        ),
        failover_rate=(
            float(np.sum(batch.total_failovers)) / sessions if sessions else 0.0
        ),
        imbalance_mean=(
            float(np.mean(batch.load_imbalance)) if len(batch) else float("nan")
        ),
        imbalance_max=(
            float(np.max(batch.load_imbalance)) if len(batch) else float("nan")
        ),
        total_gbytes=float(np.sum(batch.total_server_bytes)) / 1e9,
    )
