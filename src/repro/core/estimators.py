"""Per-path bandwidth estimators (§3.3).

The scheduler's chunk-size decisions ride entirely on these estimates,
so the paper evaluates two and we add two more for ablations:

* **EWMA** (Eq. 1): ``ŵ(t+1) = α·ŵ(t) + (1−α)·w(t)`` with α = 0.9;
* **Harmonic mean** (Eq. 2): incrementally maintained without storing
  the history — ``ŵ(n+1) = (n+1) / (n/ŵ(n) + 1/w(n+1))`` — chosen by
  the paper because the harmonic mean damps large outliers (bursts)
  that would otherwise whipsaw chunk sizes [19];
* **Last sample** — the degenerate estimator (what Ratio effectively
  uses), for ablation;
* **Sliding-window arithmetic mean** — the obvious alternative, for
  ablation (EXP-X3 shows where it over-reacts versus harmonic).

Every estimator answers ``None`` until it has seen a sample, which is
exactly the "ŵ_i not available" branch of Algorithm 1 (initial chunk
size B).
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigError, SchedulerError


class BandwidthEstimator:
    """Interface: feed throughput samples, read an estimate."""

    #: Registry name; subclasses override.
    name = "abstract"

    def update(self, sample: float) -> None:
        """Fold one throughput measurement (bytes/s) into the estimate."""
        raise NotImplementedError

    @property
    def estimate(self) -> float | None:
        """Current estimate in bytes/s, or ``None`` before any sample."""
        raise NotImplementedError

    @property
    def sample_count(self) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget history (used when a path re-bootstraps on a new server)."""
        raise NotImplementedError

    @staticmethod
    def _check_sample(sample: float) -> float:
        if not sample > 0:
            raise SchedulerError(f"throughput sample must be positive, got {sample}")
        return float(sample)


class EWMAEstimator(BandwidthEstimator):
    """Exponential weighted moving average — Eq. 1 with α = 0.9 (§3.3).

    >>> est = EWMAEstimator(alpha=0.9)
    >>> est.update(100.0); est.update(200.0)
    >>> round(est.estimate, 1)
    110.0
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.9) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._estimate: float | None = None
        self._count = 0

    def update(self, sample: float) -> None:
        sample = self._check_sample(sample)
        if self._estimate is None:
            self._estimate = sample
        else:
            self._estimate = self.alpha * self._estimate + (1.0 - self.alpha) * sample
        self._count += 1

    @property
    def estimate(self) -> float | None:
        return self._estimate

    @property
    def sample_count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._estimate = None
        self._count = 0


class HarmonicMeanEstimator(BandwidthEstimator):
    """Incremental harmonic mean — Eq. 2 (§3.3).

    Only two scalars of state are kept (the running estimate and the
    sample count), exactly the memory-saving property the paper touts:
    ``ŵ(n+1) = (n+1) / (n/ŵ(n) + 1/w(n+1))``.

    >>> est = HarmonicMeanEstimator()
    >>> for w in (100.0, 50.0):
    ...     est.update(w)
    >>> round(est.estimate, 2)  # 2 / (1/100 + 1/50)
    66.67
    """

    name = "harmonic"

    def __init__(self) -> None:
        self._estimate: float | None = None
        self._count = 0

    def update(self, sample: float) -> None:
        sample = self._check_sample(sample)
        if self._estimate is None:
            self._estimate = sample
            self._count = 1
            return
        n = self._count
        self._estimate = (n + 1) / (n / self._estimate + 1.0 / sample)
        self._count = n + 1

    @property
    def estimate(self) -> float | None:
        return self._estimate

    @property
    def sample_count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._estimate = None
        self._count = 0


class LastSampleEstimator(BandwidthEstimator):
    """ŵ = most recent w; maximally reactive, maximally noisy (ablation)."""

    name = "last"

    def __init__(self) -> None:
        self._estimate: float | None = None
        self._count = 0

    def update(self, sample: float) -> None:
        self._estimate = self._check_sample(sample)
        self._count += 1

    @property
    def estimate(self) -> float | None:
        return self._estimate

    @property
    def sample_count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._estimate = None
        self._count = 0


class SlidingWindowEstimator(BandwidthEstimator):
    """Arithmetic mean over the last ``window`` samples (ablation).

    The arithmetic mean gives outlier bursts their full weight — the
    failure mode the paper's harmonic choice avoids; EXP-X3 quantifies
    the difference on bursty traces.
    """

    name = "window"

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0

    def update(self, sample: float) -> None:
        self._samples.append(self._check_sample(sample))
        self._count += 1

    @property
    def estimate(self) -> float | None:
        if not self._samples:
            return None
        return sum(self._samples) / len(self._samples)

    @property
    def sample_count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._samples.clear()
        self._count = 0


_ESTIMATORS = {
    "ewma": EWMAEstimator,
    "harmonic": HarmonicMeanEstimator,
    "last": LastSampleEstimator,
    "window": SlidingWindowEstimator,
}


def make_estimator(name: str, alpha: float = 0.9, window: int = 8) -> BandwidthEstimator:
    """Estimator factory keyed by registry name.

    >>> make_estimator("harmonic").name
    'harmonic'
    """
    try:
        cls = _ESTIMATORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown estimator {name!r}; available: {sorted(_ESTIMATORS)}"
        ) from None
    if cls is EWMAEstimator:
        return cls(alpha=alpha)
    if cls is SlidingWindowEstimator:
        return cls(window=window)
    return cls()
