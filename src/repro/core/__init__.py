"""MSPlayer core: the paper's contribution, written sans-IO.

Everything in this package is a pure state machine or calculation —
no sockets, no simulated clocks — so the same player logic drives both
the discrete-event backend (:mod:`repro.sim`) and the real asyncio
backend (:mod:`repro.live`), and every decision rule is unit-testable
in isolation:

* :mod:`repro.core.estimators` — bandwidth estimators: EWMA (Eq. 1) and
  the incremental harmonic mean (Eq. 2);
* :mod:`repro.core.dcsa` — Algorithm 1, dynamic chunk size adjustment;
* :mod:`repro.core.schedulers` — the Ratio baseline and the
  EWMA/Harmonic DCSA schedulers (§3.3);
* :mod:`repro.core.buffer` — just-in-time playout buffer: pre-buffering
  then ON/OFF re-buffering (§3.1, §4);
* :mod:`repro.core.chunks` — the byte-range ledger: chunk assignment,
  reassembly, out-of-order accounting, failure requeueing;
* :mod:`repro.core.sources` — per-network video-server candidate lists
  and failover (§2 "Content Source Diversity");
* :mod:`repro.core.paths` — per-path lifecycle and bootstrap timing;
* :mod:`repro.core.session` — the orchestrator tying it together,
  consuming events and emitting commands;
* :mod:`repro.core.metrics` — QoE accounting (start-up delay, stalls,
  per-path traffic fractions — Table 1's numerator).
"""

from .config import PlayerConfig
from .estimators import (
    BandwidthEstimator,
    EWMAEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
    SlidingWindowEstimator,
    make_estimator,
)
from .dcsa import dynamic_chunk_size_adjustment
from .schedulers import ChunkScheduler, DCSAScheduler, RatioScheduler, make_scheduler
from .buffer import BufferPhase, PlayoutBuffer
from .chunks import ChunkLedger
from .sources import SourceManager
from .paths import PathPhase, PathState
from .metrics import QoEMetrics, StallEvent
from .session import (
    Command,
    FetchChunk,
    PlayerSession,
    SessionEventResult,
    StartBootstrap,
    StartPlayback,
    SessionDone,
)

__all__ = [
    "PlayerConfig",
    "BandwidthEstimator",
    "EWMAEstimator",
    "HarmonicMeanEstimator",
    "LastSampleEstimator",
    "SlidingWindowEstimator",
    "make_estimator",
    "dynamic_chunk_size_adjustment",
    "ChunkScheduler",
    "RatioScheduler",
    "DCSAScheduler",
    "make_scheduler",
    "PlayoutBuffer",
    "BufferPhase",
    "ChunkLedger",
    "SourceManager",
    "PathState",
    "PathPhase",
    "QoEMetrics",
    "StallEvent",
    "PlayerSession",
    "Command",
    "FetchChunk",
    "StartBootstrap",
    "StartPlayback",
    "SessionDone",
    "SessionEventResult",
]
