"""QoE and transport metrics collected during a session.

Everything the paper's evaluation reports comes out of this object:

* **start-up delay / pre-buffering download time** (Figs. 2–4): from
  session start to playback start;
* **re-buffering cycle durations** (Fig. 5): each ON cycle's
  fetch-start → target-reached time;
* **per-path traffic fractions** (Table 1), split by phase — the paper
  reports WiFi's share separately for pre- and re-buffering;
* stalls (count and duration), request counts, handshake overhead,
  failover events — the robustness extras (EXP-X1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StallEvent:
    started_at: float
    ended_at: float | None = None

    @property
    def duration(self) -> float:
        if self.ended_at is None:
            raise ValueError("stall still in progress")
        return self.ended_at - self.started_at


@dataclass
class RebufferCycle:
    started_at: float
    ended_at: float | None = None
    level_at_start_s: float = 0.0

    @property
    def duration(self) -> float:
        if self.ended_at is None:
            raise ValueError("re-buffering cycle still in progress")
        return self.ended_at - self.started_at


@dataclass
class QoEMetrics:
    """Accumulated session metrics."""

    session_started_at: float = 0.0
    playback_started_at: float | None = None
    prebuffer_completed_at: float | None = None
    playback_finished_at: float | None = None
    download_completed_at: float | None = None

    #: path_id -> video bytes delivered in the pre-buffering phase.
    prebuffer_bytes_by_path: dict[int, int] = field(default_factory=dict)
    #: path_id -> video bytes delivered after pre-buffering.
    rebuffer_bytes_by_path: dict[int, int] = field(default_factory=dict)
    #: path_id -> range request count.
    requests_by_path: dict[int, int] = field(default_factory=dict)
    #: path_id -> seconds the path's radio spent actively transferring
    #: (request-to-completion time summed over chunks) — the input to
    #: the energy model (repro.ext.energy).
    active_time_by_path: dict[int, float] = field(default_factory=dict)
    #: path_id -> (bootstrap_started, first_video_byte) timestamps.
    path_bootstrap: dict[int, tuple[float, float]] = field(default_factory=dict)

    stalls: list[StallEvent] = field(default_factory=list)
    rebuffer_cycles: list[RebufferCycle] = field(default_factory=list)
    failovers: int = 0
    peak_out_of_order: int = 0

    # -- recording -------------------------------------------------------------

    def record_chunk(
        self, path_id: int, num_bytes: int, prebuffering: bool, duration: float = 0.0
    ) -> None:
        target = self.prebuffer_bytes_by_path if prebuffering else self.rebuffer_bytes_by_path
        target[path_id] = target.get(path_id, 0) + num_bytes
        self.requests_by_path[path_id] = self.requests_by_path.get(path_id, 0) + 1
        if duration > 0:
            self.active_time_by_path[path_id] = (
                self.active_time_by_path.get(path_id, 0.0) + duration
            )

    def begin_stall(self, now: float) -> None:
        self.stalls.append(StallEvent(started_at=now))

    def end_stall(self, now: float) -> None:
        if self.stalls and self.stalls[-1].ended_at is None:
            # Interpolated credit times can predate the stall's start
            # (the crossing bytes arrived before the buffer ran dry);
            # a stall can never have negative duration.
            self.stalls[-1].ended_at = max(now, self.stalls[-1].started_at)

    def begin_rebuffer_cycle(self, now: float, level_s: float) -> None:
        self.rebuffer_cycles.append(RebufferCycle(started_at=now, level_at_start_s=level_s))

    def end_rebuffer_cycle(self, now: float) -> None:
        if self.rebuffer_cycles and self.rebuffer_cycles[-1].ended_at is None:
            cycle = self.rebuffer_cycles[-1]
            cycle.ended_at = max(now, cycle.started_at)

    # -- derived results -----------------------------------------------------------

    @property
    def startup_delay(self) -> float | None:
        """Figs. 2/4's "download time": session start → playback start."""
        if self.playback_started_at is None:
            return None
        return self.playback_started_at - self.session_started_at

    @property
    def total_stall_time(self) -> float:
        return sum(s.duration for s in self.stalls if s.ended_at is not None)

    def completed_cycle_durations(self) -> list[float]:
        """Fig. 5's refill times."""
        return [c.duration for c in self.rebuffer_cycles if c.ended_at is not None]

    def traffic_fraction(self, path_id: int, phase: str = "all") -> float:
        """Share of video bytes carried by ``path_id`` (Table 1).

        ``phase`` is "prebuffer", "rebuffer", or "all".
        """
        if phase == "prebuffer":
            counts = self.prebuffer_bytes_by_path
        elif phase == "rebuffer":
            counts = self.rebuffer_bytes_by_path
        elif phase == "all":
            counts = {
                k: self.prebuffer_bytes_by_path.get(k, 0)
                + self.rebuffer_bytes_by_path.get(k, 0)
                for k in sorted(
                    set(self.prebuffer_bytes_by_path) | set(self.rebuffer_bytes_by_path)
                )
            }
        else:
            raise ValueError(f"unknown phase {phase!r}")
        total = sum(counts.values())
        return counts.get(path_id, 0) / total if total else 0.0

    def first_video_byte_delay(self, path_id: int) -> float | None:
        """Bootstrap start → first video byte on a path (Fig. 1's π)."""
        timestamps = self.path_bootstrap.get(path_id)
        if timestamps is None:
            return None
        started, first_byte = timestamps
        return first_byte - started

    def summary(self) -> dict[str, object]:
        """A flat dict for tables and JSON dumps."""
        return {
            "startup_delay_s": self.startup_delay,
            "stall_count": len(self.stalls),
            "total_stall_s": self.total_stall_time,
            "rebuffer_cycles": len(self.completed_cycle_durations()),
            "mean_cycle_s": (
                sum(self.completed_cycle_durations()) / len(self.completed_cycle_durations())
                if self.completed_cycle_durations()
                else None
            ),
            "requests_by_path": dict(self.requests_by_path),
            "prebuffer_fraction_path0": self.traffic_fraction(0, "prebuffer"),
            "rebuffer_fraction_path0": self.traffic_fraction(0, "rebuffer"),
            "failovers": self.failovers,
            "peak_out_of_order": self.peak_out_of_order,
        }
