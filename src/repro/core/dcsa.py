"""Algorithm 1: Dynamic Chunk Size Adjustment (DCSA), verbatim.

The paper's pseudocode, for path ``i`` with the other path ``1−i``::

    procedure DCSA(i, ŵ0, ŵ1, wi, δ, B)
        if ŵi not available:        Si ← B            (initial chunk size)
        else if ŵi < ŵ1−i:                            (slow path)
            if wi > (1+δ)·ŵi:       Si ← 2·Si
            else if wi < (1−δ)·ŵi:  Si ← max{⌈Si/2⌉, 16KB}
            else:                   Si unchanged
        else:                                          (fast path)
            γ = ⌈ŵi / ŵ1−i⌉
            Si ← γ · S1−i
        return Si

Intuition: the *slow* path carries the base-sized chunk and doubles or
halves it as its own bandwidth trends up or down beyond the δ band;
the *fast* path is sized as an integer multiple γ of the slow path's
chunk so both transfers complete at roughly the same time — the
equal-finish-time goal that bounds out-of-order buffering to one chunk
(§2 "Chunk Scheduler").

This function is pure so it can be property-tested exhaustively; the
scheduler object in :mod:`repro.core.schedulers` wires it to live
estimator state.
"""

from __future__ import annotations

import math

from ..errors import SchedulerError
from ..units import KB

#: Algorithm 1's hard floor on chunk size.
MIN_CHUNK_BYTES = 16 * KB


def dynamic_chunk_size_adjustment(
    current_size: int,
    other_size: int,
    estimate_self: float | None,
    estimate_other: float | None,
    measured_self: float,
    delta: float,
    base_chunk: int,
    min_chunk: int = MIN_CHUNK_BYTES,
    max_chunk: int | None = None,
) -> int:
    """One DCSA step for a path; returns its next chunk size in bytes.

    Parameters map 1:1 onto the pseudocode: ``estimate_self``/``_other``
    are ŵi and ŵ1−i, ``measured_self`` is wi (the throughput of the
    chunk that just finished), ``delta`` the variation band δ, and
    ``base_chunk`` is B.  ``max_chunk`` is a library-added safety clamp
    (``None`` reproduces the paper exactly).

    >>> dynamic_chunk_size_adjustment(  # slow path speeding up: double
    ...     64*KB, 256*KB, 1000.0, 4000.0, 1100.0, 0.05, 256*KB) == 128*KB
    True
    >>> dynamic_chunk_size_adjustment(  # fast path: gamma multiple
    ...     256*KB, 64*KB, 4000.0, 1000.0, 4100.0, 0.05, 256*KB) == 4*64*KB
    True
    """
    if not 0.0 < delta < 1.0:
        raise SchedulerError(f"delta must be in (0, 1), got {delta}")
    if base_chunk < min_chunk:
        raise SchedulerError("base chunk below the minimum chunk")
    if current_size <= 0 or other_size <= 0:
        raise SchedulerError("chunk sizes must be positive")
    if measured_self <= 0:
        raise SchedulerError(f"measured throughput must be positive, got {measured_self}")

    if estimate_self is None:
        new_size = base_chunk
    elif estimate_other is not None and estimate_self < estimate_other:
        # Slow path: double / halve / hold against the δ band.
        if measured_self > (1.0 + delta) * estimate_self:
            new_size = 2 * current_size
        elif measured_self < (1.0 - delta) * estimate_self:
            new_size = max(math.ceil(current_size / 2), min_chunk)
        else:
            new_size = current_size
    else:
        # Fast path (or the other estimate is missing: treat self as
        # fast, pacing off the other path's current chunk).
        if estimate_other is None or estimate_other <= 0:
            gamma = 1
        else:
            gamma = math.ceil(estimate_self / estimate_other)
        new_size = max(gamma, 1) * other_size

    if max_chunk is not None:
        new_size = min(new_size, max_chunk)
    return max(int(new_size), min_chunk)
