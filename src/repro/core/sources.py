"""Per-network source lists and failover (§2 "Content Source Diversity").

    "MSPlayer, at the initial phase, collects a list of YouTube
    servers' addresses in each network exploited.  If a server in a
    network fails or is overloaded, MSPlayer switches to another server
    in that network and resumes video streaming."

The :class:`SourceManager` is that list plus the switching policy: per
path (network) it remembers the candidate video servers the web proxy
returned, which one is active, and which have failed.  Failed servers
go to the back of the line with a strike count; a server that has
failed ``max_strikes`` times is dropped for the session.  When every
candidate in a network is exhausted the path is declared dead and the
session continues single-path — robustness degrades gracefully rather
than aborting playback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SourcesExhaustedError


@dataclass
class _CandidateState:
    address: str
    strikes: int = 0


@dataclass
class SourceManager:
    """Candidate video servers for one path/network."""

    network_id: str
    max_strikes: int = 2
    _candidates: list[_CandidateState] = field(default_factory=list)
    _active_index: int | None = None
    #: (time, old_address, new_address) failover log for experiments.
    failover_log: list[tuple[float, str, str | None]] = field(default_factory=list)

    # -- setup -------------------------------------------------------------

    def set_candidates(self, addresses: list[str]) -> None:
        """Install the server list from the web proxy's JSON (ordered)."""
        if not addresses:
            raise SourcesExhaustedError(f"proxy returned no servers for {self.network_id}")
        known = {c.address for c in self._candidates}
        for address in addresses:
            if address not in known:
                self._candidates.append(_CandidateState(address))
                known.add(address)
        if self._active_index is None:
            self._active_index = 0

    # -- queries ------------------------------------------------------------

    @property
    def active(self) -> str:
        if self._active_index is None or not self._candidates:
            raise SourcesExhaustedError(f"no active server in {self.network_id}")
        return self._candidates[self._active_index].address

    @property
    def candidate_count(self) -> int:
        return len(self._candidates)

    def addresses(self) -> list[str]:
        return [c.address for c in self._candidates]

    # -- failover -------------------------------------------------------------

    def report_failure(self, now: float) -> str | None:
        """The active server failed; advance to the next viable candidate.

        Returns the new active address, or ``None`` (and raises on the
        *next* ``active`` read) when all candidates are spent.  The
        failed server is struck; servers under the strike limit remain
        eligible for a later retry round.
        """
        if self._active_index is None:
            raise SourcesExhaustedError(f"no active server in {self.network_id}")
        failed = self._candidates[self._active_index]
        failed.strikes += 1
        viable = [
            i
            for i, candidate in enumerate(self._candidates)
            if candidate.strikes < self.max_strikes
        ]
        # Prefer the next candidate after the failed one, wrapping.
        next_index: int | None = None
        for offset in range(1, len(self._candidates) + 1):
            index = (self._active_index + offset) % len(self._candidates)
            if index in viable and index != self._active_index:
                next_index = index
                break
        if next_index is None and self._active_index in viable:
            # Only the current one is viable: retry it.
            next_index = self._active_index
        old_address = failed.address
        if next_index is None:
            self._active_index = None
            self.failover_log.append((now, old_address, None))
            return None
        self._active_index = next_index
        new_address = self._candidates[next_index].address
        self.failover_log.append((now, old_address, new_address))
        return new_address

    @property
    def exhausted(self) -> bool:
        return self._active_index is None
