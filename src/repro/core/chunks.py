"""The chunk ledger: byte-range assignment, reassembly, failure requeue.

One authority tracks which bytes of the video are where:

* ``contiguous_frontier`` — everything below this offset has been
  received and is playable;
* in-flight assignments — at most one per path (requests on one
  connection are sequential);
* completed-but-out-of-order ranges — chunks that finished while an
  earlier range is still in flight on the other path.  The paper's
  scheduler aims to keep this at ≤ 1 chunk (§2); the ledger *measures*
  it (peak count) so experiments can verify the design goal rather
  than assume it;
* a requeue list — when a path dies mid-chunk, the undelivered suffix
  of its range goes back to the head of the queue and is handed out
  before any new frontier extension, so failover never leaves holes.

The ledger is pure bookkeeping (no clocks, no IO) and maintains the
invariants the property tests check: assignments never overlap, the
frontier only advances, and ``frontier == total`` ⇔ every byte was
delivered exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlayerError
from ..http.ranges import ByteRange


@dataclass(frozen=True, slots=True)
class Assignment:
    """A chunk handed to a path for fetching."""

    path_id: int
    byte_range: ByteRange


class ChunkLedger:
    """Byte-range bookkeeping for one video download."""

    __slots__ = (
        "total_bytes",
        "contiguous_frontier",
        "_assign_frontier",
        "_in_flight",
        "_out_of_order",
        "_requeue",
        "peak_out_of_order",
        "bytes_by_path",
    )

    def __init__(self, total_bytes: int) -> None:
        if total_bytes <= 0:
            raise PlayerError(f"total_bytes must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        #: Bytes below this offset are received and contiguous.
        self.contiguous_frontier = 0
        #: Next never-assigned byte.
        self._assign_frontier = 0
        #: path_id -> in-flight assignment.
        self._in_flight: dict[int, Assignment] = {}
        #: Completed ranges waiting for earlier bytes (sorted by start).
        self._out_of_order: list[ByteRange] = []
        #: Ranges that must be re-fetched (path died mid-chunk).
        self._requeue: list[ByteRange] = []
        #: Peak number of stored out-of-order chunks (design goal: ≤ 1).
        self.peak_out_of_order = 0
        #: Per-path delivered byte counts (Table 1's numerator).
        self.bytes_by_path: dict[int, int] = {}

    # -- queries -------------------------------------------------------------

    @property
    def complete(self) -> bool:
        return self.contiguous_frontier >= self.total_bytes

    @property
    def fully_assigned(self) -> bool:
        """No more work to hand out (everything assigned or received)."""
        return self._assign_frontier >= self.total_bytes and not self._requeue

    @property
    def out_of_order_count(self) -> int:
        return len(self._out_of_order)

    def in_flight_for(self, path_id: int) -> Assignment | None:
        return self._in_flight.get(path_id)

    @property
    def remaining_bytes(self) -> int:
        """Bytes not yet received (in flight or unassigned)."""
        received = self.contiguous_frontier + sum(r.length for r in self._out_of_order)
        return self.total_bytes - received

    # -- assignment ---------------------------------------------------------------

    def assign(self, path_id: int, size: int) -> Assignment | None:
        """Hand ``path_id`` its next chunk of up to ``size`` bytes.

        Requeued ranges (from failed paths) are served first — resuming
        at the break point is the §2 robustness behaviour.  Returns
        ``None`` when no work remains.  A path may hold only one
        assignment at a time.
        """
        if size <= 0:
            raise PlayerError(f"chunk size must be positive, got {size}")
        if path_id in self._in_flight:
            raise PlayerError(f"path {path_id} already has an in-flight chunk")
        byte_range = self._next_range(size)
        if byte_range is None:
            return None
        assignment = Assignment(path_id, byte_range)
        self._in_flight[path_id] = assignment
        return assignment

    def peek_next_start(self) -> int | None:
        """Where the next assignment would begin (requeue first), or
        ``None`` if no work remains — used by the session to enforce
        the out-of-order bound without consuming the assignment."""
        if self._requeue:
            return self._requeue[0].start
        if self._assign_frontier >= self.total_bytes:
            return None
        return self._assign_frontier

    def _next_range(self, size: int) -> ByteRange | None:
        if self._requeue:
            pending = self._requeue.pop(0)
            if pending.length > size:
                head, tail = pending.split_at(pending.start + size)
                self._requeue.insert(0, tail)
                return head
            return pending
        if self._assign_frontier >= self.total_bytes:
            return None
        stop = min(self._assign_frontier + size, self.total_bytes)
        byte_range = ByteRange(self._assign_frontier, stop)
        self._assign_frontier = stop
        return byte_range

    # -- completion -----------------------------------------------------------------

    def complete_assignment(self, path_id: int) -> ByteRange:
        """The path's in-flight chunk arrived in full."""
        assignment = self._pop_in_flight(path_id)
        byte_range = assignment.byte_range
        self.bytes_by_path[path_id] = (
            self.bytes_by_path.get(path_id, 0) + byte_range.length
        )
        self._integrate(byte_range)
        return byte_range

    def _integrate(self, byte_range: ByteRange) -> None:
        if byte_range.start > self.contiguous_frontier:
            self._out_of_order.append(byte_range)
            self._out_of_order.sort(key=lambda r: r.start)
            self.peak_out_of_order = max(self.peak_out_of_order, len(self._out_of_order))
            return
        if byte_range.start < self.contiguous_frontier:
            raise PlayerError(
                f"duplicate delivery: {byte_range} overlaps frontier "
                f"{self.contiguous_frontier}"
            )
        self.contiguous_frontier = byte_range.stop
        # Absorb any out-of-order ranges that are now contiguous.
        while self._out_of_order and self._out_of_order[0].start == self.contiguous_frontier:
            absorbed = self._out_of_order.pop(0)
            self.contiguous_frontier = absorbed.stop

    # -- failure -----------------------------------------------------------------------

    def fail_assignment(self, path_id: int, bytes_delivered: int = 0) -> ByteRange | None:
        """The path died mid-chunk; requeue the undelivered remainder.

        ``bytes_delivered`` is a prefix that *did* arrive and can be
        kept (HTTP range bodies arrive in order).  Returns the requeued
        remainder, or ``None`` if the chunk had fully arrived anyway.
        """
        assignment = self._pop_in_flight(path_id)
        byte_range = assignment.byte_range
        if bytes_delivered < 0 or bytes_delivered > byte_range.length:
            raise PlayerError(
                f"bytes_delivered {bytes_delivered} outside chunk of {byte_range.length}"
            )
        if bytes_delivered:
            delivered = ByteRange(byte_range.start, byte_range.start + bytes_delivered)
            self.bytes_by_path[path_id] = (
                self.bytes_by_path.get(path_id, 0) + delivered.length
            )
            self._integrate(delivered)
        if bytes_delivered == byte_range.length:
            return None
        remainder = ByteRange(byte_range.start + bytes_delivered, byte_range.stop)
        self._requeue.insert(0, remainder)
        self._requeue.sort(key=lambda r: r.start)
        return remainder

    def _pop_in_flight(self, path_id: int) -> Assignment:
        try:
            return self._in_flight.pop(path_id)
        except KeyError:
            raise PlayerError(f"path {path_id} has no in-flight chunk") from None

    # -- reporting -----------------------------------------------------------------------

    def traffic_fraction(self, path_id: int) -> float:
        """Fraction of delivered bytes carried by ``path_id`` (Table 1)."""
        total = sum(self.bytes_by_path.values())
        if total == 0:
            return 0.0
        return self.bytes_by_path.get(path_id, 0) / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChunkLedger {self.contiguous_frontier}/{self.total_bytes}B "
            f"inflight={sorted(self._in_flight)} ooo={len(self._out_of_order)}>"
        )
