"""Chunk schedulers: Ratio (baseline), EWMA, and Harmonic (§3.3).

A scheduler owns, per path, the current chunk size ``S_i`` and a
bandwidth estimator ``ŵ_i``, and answers one question the session asks
whenever a path is ready for work: *how many bytes should this path
fetch next?*  Measurements flow in through :meth:`record` as
``(path, bytes, duration)`` — the ``w_i = S_i/T_i`` of the paper.

* :class:`RatioScheduler` — the baseline: the slower path always
  fetches the base chunk B; the faster path fetches
  ``w_fast/w_slow · B``, using raw last-sample throughputs.  No
  estimator smoothing, which is why Fig. 3 shows it lagging bandwidth
  changes and varying wildly.
* :class:`DCSAScheduler` — Algorithm 1 driven by a pluggable estimator;
  with :class:`~repro.core.estimators.EWMAEstimator` it is the paper's
  "EWMA" scheduler, with
  :class:`~repro.core.estimators.HarmonicMeanEstimator` the default
  "Harmonic" scheduler.
"""

from __future__ import annotations

import math

from ..errors import ConfigError, SchedulerError
from .config import PlayerConfig
from .dcsa import dynamic_chunk_size_adjustment
from .estimators import BandwidthEstimator, LastSampleEstimator, make_estimator


class ChunkScheduler:
    """Base class: per-path chunk sizing driven by throughput feedback."""

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, config: PlayerConfig) -> None:
        self.config = config
        self._sizes: dict[int, int] = {}
        self._estimators: dict[int, BandwidthEstimator] = {}
        self._last_sample: dict[int, float] = {}

    # -- per-path wiring ---------------------------------------------------

    def register_path(self, path_id: int) -> None:
        """Declare a path before use (idempotent)."""
        if path_id not in self._sizes:
            self._sizes[path_id] = self.config.base_chunk_bytes
            self._estimators[path_id] = self._make_estimator()
            self._last_sample.pop(path_id, None)

    def forget_path(self, path_id: int) -> None:
        """Drop a path's state (it died and won't return on this server)."""
        self._sizes.pop(path_id, None)
        self._estimators.pop(path_id, None)
        self._last_sample.pop(path_id, None)

    def reset_path(self, path_id: int) -> None:
        """Re-arm a path after failover: fresh estimator, base chunk."""
        self._require(path_id)
        self._sizes[path_id] = self.config.base_chunk_bytes
        self._estimators[path_id].reset()
        self._last_sample.pop(path_id, None)

    def paths(self) -> list[int]:
        return list(self._sizes)

    # -- feedback / decisions ------------------------------------------------

    def record(self, path_id: int, num_bytes: int, duration: float) -> float:
        """Fold a completed chunk's measurement in; returns ``w_i``.

        The adjustment hook runs *before* the estimator update, so the
        comparison in Algorithm 1 is "current measurement vs previous
        estimate", which is the only causally sensible reading.
        """
        self._require(path_id)
        if num_bytes <= 0:
            raise SchedulerError(f"chunk bytes must be positive, got {num_bytes}")
        if duration <= 0:
            raise SchedulerError(f"chunk duration must be positive, got {duration}")
        throughput = num_bytes / duration
        self._adjust(path_id, throughput)
        self._estimators[path_id].update(throughput)
        self._last_sample[path_id] = throughput
        return throughput

    def chunk_size(self, path_id: int) -> int:
        """The size the path should request next."""
        self._require(path_id)
        return self._sizes[path_id]

    def estimate(self, path_id: int) -> float | None:
        self._require(path_id)
        return self._estimators[path_id].estimate

    # -- subclass hooks ----------------------------------------------------------

    def _make_estimator(self) -> BandwidthEstimator:  # pragma: no cover - abstract
        raise NotImplementedError

    def _adjust(self, path_id: int, throughput: float) -> None:  # pragma: no cover
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------------

    def _require(self, path_id: int) -> None:
        if path_id not in self._sizes:
            raise SchedulerError(f"path {path_id} not registered with the scheduler")

    def _other_path(self, path_id: int) -> int | None:
        others = [p for p in self._sizes if p != path_id]
        return others[0] if others else None


class RatioScheduler(ChunkScheduler):
    """Baseline: fixed base chunk on the slow path, ratio-scaled fast path.

    "The baseline Ratio scheduler assigns a fixed chunk size to the path
    with lower throughput such that ``Si(t+1) = B`` and adjusts the
    chunk size of the path with higher throughput based on throughput
    ratio (``S1−i(t+1) = w1−i(t)/wi(t) · B``)." (§3.3)
    """

    name = "ratio"

    def _make_estimator(self) -> BandwidthEstimator:
        return LastSampleEstimator()

    def _adjust(self, path_id: int, throughput: float) -> None:
        other = self._other_path(path_id)
        if other is None:
            self._sizes[path_id] = self.config.base_chunk_bytes
            return
        other_sample = self._last_sample.get(other)
        if other_sample is None:
            # No measurement from the peer yet: stay at base.
            self._sizes[path_id] = self.config.base_chunk_bytes
            return
        if throughput <= other_sample:
            self._sizes[path_id] = self.config.base_chunk_bytes
            # Re-scale the faster peer off the fresh slow-path sample.
            ratio = other_sample / throughput
            self._sizes[other] = self._clamp(ratio * self.config.base_chunk_bytes)
        else:
            ratio = throughput / other_sample
            self._sizes[path_id] = self._clamp(ratio * self.config.base_chunk_bytes)
            self._sizes[other] = self.config.base_chunk_bytes

    def _clamp(self, size: float) -> int:
        return int(
            min(max(int(size), self.config.min_chunk_bytes), self.config.max_chunk_bytes)
        )


class DCSAScheduler(ChunkScheduler):
    """Algorithm 1 with a pluggable bandwidth estimator (§3.3).

    ``estimator_name`` picks from the registry in
    :mod:`repro.core.estimators`; "ewma" and "harmonic" give the paper's
    two dynamic schedulers, "last"/"window" support ablations.
    """

    def __init__(self, config: PlayerConfig, estimator_name: str) -> None:
        self.estimator_name = estimator_name
        self.name = estimator_name
        super().__init__(config)

    def _make_estimator(self) -> BandwidthEstimator:
        return make_estimator(
            self.estimator_name, alpha=self.config.alpha, window=self.config.window
        )

    def _adjust(self, path_id: int, throughput: float) -> None:
        other = self._other_path(path_id)
        estimate_self = self._estimators[path_id].estimate
        estimate_other = self._estimators[other].estimate if other is not None else None
        other_size = self._sizes[other] if other is not None else self._sizes[path_id]
        self._sizes[path_id] = dynamic_chunk_size_adjustment(
            current_size=self._sizes[path_id],
            other_size=other_size,
            estimate_self=estimate_self,
            estimate_other=estimate_other,
            measured_self=throughput,
            delta=self.config.delta,
            base_chunk=self.config.base_chunk_bytes,
            min_chunk=self.config.min_chunk_bytes,
            max_chunk=self.config.max_chunk_bytes,
        )


def make_scheduler(config: PlayerConfig) -> ChunkScheduler:
    """Build the scheduler named by ``config.scheduler``.

    >>> make_scheduler(PlayerConfig(scheduler="ratio")).name
    'ratio'
    """
    name = config.scheduler
    if name == "ratio":
        return RatioScheduler(config)
    if name in ("ewma", "harmonic", "last", "window"):
        return DCSAScheduler(config, name)
    raise ConfigError(
        f"unknown scheduler {name!r}; available: ratio, ewma, harmonic, last, window"
    )
