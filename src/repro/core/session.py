"""The MSPlayer session: sans-IO orchestration of paths, chunks, buffer.

Drivers (:mod:`repro.sim`, :mod:`repro.live`) feed *events* in and
execute the *commands* that come back:

events in                          commands out
------------------------------     ---------------------------------
start(now)                     →   StartBootstrap(path) per path
on_path_ready(path, info, now) →   FetchChunk(path, server, range)
on_chunk_complete(...)         →   FetchChunk | StartPlayback | SessionDone
on_chunk_failed(...)           →   StartBootstrap (failover) | PathDead
on_tick(now)                   →   FetchChunk (ON cycle begins) | SessionDone
on_interface_down/up(...)      →   PathDead | StartBootstrap

The session owns the paper's control loop: per-path bootstrap with the
fast path starting to fetch as soon as *its* JSON is decoded (§3.2 —
no waiting for the slow path), chunk sizing via the configured
scheduler (§3.3), just-in-time ON/OFF buffering (§4), and server
failover within a network (§2).  It never touches a socket or a clock,
which is what lets one implementation drive both a discrete-event
simulator and real asyncio sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlayerError
from ..http.ranges import ByteRange
from .buffer import BufferPhase, PlayoutBuffer
from .chunks import ChunkLedger
from .config import PlayerConfig
from .metrics import QoEMetrics
from .paths import PathPhase, PathState
from .schedulers import ChunkScheduler, make_scheduler
from .sources import SourceManager


# --------------------------------------------------------------------------
# Commands
# --------------------------------------------------------------------------


class Command:
    """Marker base class for driver instructions."""


@dataclass(frozen=True)
class StartBootstrap(Command):
    """(Re-)bootstrap a path: proxy handshake, JSON, video-server connect."""

    path_id: int
    #: When set, skip the proxy and connect straight to this video
    #: server (failover within a network reuses the valid token).
    server: str | None = None


@dataclass(frozen=True)
class FetchChunk(Command):
    """Issue a range request for ``byte_range`` on ``path_id``."""

    path_id: int
    server: str
    byte_range: ByteRange


@dataclass(frozen=True)
class StartPlayback(Command):
    """Pre-buffering target reached; the playhead may start moving."""

    at: float


@dataclass(frozen=True)
class PathDead(Command):
    """A path is out of service (interface down or sources exhausted)."""

    path_id: int
    reason: str


@dataclass(frozen=True)
class SessionDone(Command):
    """Playback (or the configured stop condition) completed."""

    at: float
    reason: str = "playback-finished"


@dataclass
class SessionEventResult:
    """What an event handler hands back to the driver."""

    commands: list[Command] = field(default_factory=list)


@dataclass(frozen=True)
class StreamDetails:
    """What a path learns from its bootstrap (subset of the JSON)."""

    total_bytes: int
    bitrate_bytes_per_s: float
    duration_s: float
    video_servers: tuple[str, ...]
    #: When the path finished decoding the proxy's JSON — the ψ
    #: milestone of Fig. 1; the path only becomes READY later, after
    #: the video-server handshake.
    json_completed_at: float | None = None


# --------------------------------------------------------------------------
# Session
# --------------------------------------------------------------------------


class PlayerSession:
    """One video playback, orchestrated sans-IO."""

    def __init__(self, config: PlayerConfig, path_specs: list[tuple[str, str]]) -> None:
        """``path_specs``: ordered ``(iface_name, network_id)`` per path."""
        if not 1 <= len(path_specs) <= config.max_paths:
            raise PlayerError(
                f"need 1..{config.max_paths} paths, got {len(path_specs)}"
            )
        self.config = config
        self.scheduler: ChunkScheduler = make_scheduler(config)
        self.paths: dict[int, PathState] = {}
        for path_id, (iface_name, network_id) in enumerate(path_specs):
            self.paths[path_id] = PathState(
                path_id=path_id,
                iface_name=iface_name,
                network_id=network_id,
                sources=SourceManager(network_id),
            )
            self.scheduler.register_path(path_id)
        self.metrics = QoEMetrics()
        # Created once the first bootstrap reveals the stream size.
        self.ledger: ChunkLedger | None = None
        self.buffer: PlayoutBuffer | None = None
        self._bitrate: float | None = None
        self._started = False
        self._done = False
        self._playback_announced = False

    # -- event: session start ------------------------------------------------

    def start(self, now: float) -> SessionEventResult:
        """Kick off bootstrap on every path simultaneously (§3.2)."""
        if self._started:
            raise PlayerError("session already started")
        self._started = True
        self.metrics.session_started_at = now
        commands: list[Command] = []
        for path in self.paths.values():
            path.begin_bootstrap(now)
            commands.append(StartBootstrap(path.path_id))
        return SessionEventResult(commands)

    # -- event: a path finished bootstrapping ------------------------------------

    def on_path_ready(
        self, path_id: int, details: StreamDetails, now: float
    ) -> SessionEventResult:
        """The path decoded its JSON and its video connection is warm.

        The first path to arrive creates the ledger/buffer and starts
        fetching immediately — the paper's fast-path head start; the
        second path just joins the fetch rotation when it lands.
        """
        path = self._path(path_id)
        path.sources.set_candidates(list(details.video_servers))
        path.bootstrap_complete(now, json_completed_at=details.json_completed_at)

        if self.ledger is None:
            self.ledger = ChunkLedger(details.total_bytes)
            self.buffer = PlayoutBuffer(self.config, details.duration_s)
            self.buffer.phase_entered_at = now
            self._bitrate = details.bitrate_bytes_per_s
        elif self.ledger.total_bytes != details.total_bytes:
            raise PlayerError(
                f"paths disagree on stream size: {self.ledger.total_bytes} "
                f"vs {details.total_bytes}"
            )
        return SessionEventResult(self._dispatch_fetches(now))

    # -- event: chunk completed ------------------------------------------------------

    def on_chunk_complete(
        self,
        path_id: int,
        num_bytes: int,
        duration: float,
        now: float,
        first_byte_at: float | None = None,
    ) -> SessionEventResult:
        """A range request finished; returns follow-up work.

        ``first_byte_at`` (when the driver knows it) lets threshold
        crossings be credited at the moment the crossing *bytes*
        actually arrived: response bodies stream in progressively, so a
        buffer target reached mid-chunk should not be charged the whole
        chunk's completion time.  Without it, large chunks would
        penalize MSPlayer by up to one chunk duration of pure
        measurement granularity.
        """
        path = self._path(path_id)
        ledger, buffer = self._require_stream()
        prebuffering = buffer.phase is BufferPhase.PREBUFFERING

        before = ledger.contiguous_frontier
        before_level = buffer.level_s
        before_cycle = buffer.cycle_fetched_s
        ledger.complete_assignment(path_id)
        path.chunk_finished(now, first_byte_at=first_byte_at)
        if path.t_first_video_byte is not None and path_id in self.paths:
            started = path.t_bootstrap_started or now
            self.metrics.path_bootstrap.setdefault(path_id, (started, now))
        self.scheduler.record(path_id, num_bytes, duration)
        self.metrics.record_chunk(path_id, num_bytes, prebuffering, duration=duration)
        self.metrics.peak_out_of_order = max(
            self.metrics.peak_out_of_order, ledger.peak_out_of_order
        )

        commands: list[Command] = []
        advanced = ledger.contiguous_frontier - before
        if advanced > 0:
            previous_phase = buffer.phase
            advanced_s = advanced / self._bitrate_()
            buffer.on_data(advanced_s, now)
            credit_time = self._interpolate_crossing(
                previous_phase,
                before_level,
                before_cycle,
                advanced_s,
                first_byte_at,
                now,
            )
            commands.extend(self._phase_change_commands(previous_phase, credit_time))

        if ledger.complete:
            # A short video can complete its download before the buffer
            # ever reaches the pre-buffer target (PREBUFFERING →
            # FINISHED directly); playback still begins at that moment
            # and must be announced, or start-up delay is never
            # recorded.
            pre_complete_phase = buffer.phase
            buffer.mark_download_complete(now)
            self.metrics.download_completed_at = now
            if pre_complete_phase is BufferPhase.PREBUFFERING:
                commands.extend(self._phase_change_commands(pre_complete_phase, now))

        commands.extend(self._dispatch_fetches(now))
        return SessionEventResult(commands)

    # -- event: chunk / path failure -----------------------------------------------------

    def on_chunk_failed(
        self,
        path_id: int,
        bytes_delivered: int,
        now: float,
        reason: str = "network-error",
        interface_down: bool = False,
    ) -> SessionEventResult:
        """The in-flight chunk died; requeue and fail over (§2)."""
        path = self._path(path_id)
        ledger = self.ledger
        commands: list[Command] = []
        if ledger is not None and ledger.in_flight_for(path_id) is not None:
            before = ledger.contiguous_frontier
            ledger.fail_assignment(path_id, bytes_delivered)
            advanced = ledger.contiguous_frontier - before
            if advanced > 0 and self.buffer is not None:
                # The delivered prefix is playable video: credit it, or
                # those seconds would be lost to the buffer accounting
                # and playback could never drain to the end.
                previous_phase = self.buffer.phase
                self.buffer.on_data(advanced / self._bitrate_(), now)
                commands.extend(self._phase_change_commands(previous_phase, now))
            if ledger.complete and self.buffer is not None:
                pre_complete_phase = self.buffer.phase
                self.buffer.mark_download_complete(now)
                self.metrics.download_completed_at = now
                if pre_complete_phase is BufferPhase.PREBUFFERING:
                    commands.extend(
                        self._phase_change_commands(pre_complete_phase, now)
                    )
        path.mark_broken(now)

        if interface_down:
            path.mark_dead(now)
            commands.append(PathDead(path_id, reason="interface-down"))
        else:
            replacement = path.sources.report_failure(now)
            if replacement is None:
                path.mark_dead(now)
                commands.append(PathDead(path_id, reason="sources-exhausted"))
            else:
                self.metrics.failovers += 1
                self.scheduler.reset_path(path_id)
                path.begin_bootstrap(now)
                commands.append(StartBootstrap(path_id, server=replacement))

        if not any(p.alive for p in self.paths.values()):
            self._done = True
            commands.append(SessionDone(now, reason="all-paths-dead"))
            return SessionEventResult(commands)

        # The survivor picks up requeued work immediately.
        commands.extend(self._dispatch_fetches(now))
        return SessionEventResult(commands)

    # -- event: interface recovery ----------------------------------------------------------

    def on_interface_up(self, path_id: int, now: float) -> SessionEventResult:
        """Mobility: the interface returned; re-bootstrap the path."""
        path = self._path(path_id)
        if path.phase is not PathPhase.DEAD:
            return SessionEventResult([])
        path.revive(now)
        path.begin_bootstrap(now)
        return SessionEventResult([StartBootstrap(path_id)])

    # -- event: playback clock tick ------------------------------------------------------------

    def on_tick(self, dt: float, now: float) -> SessionEventResult:
        """Advance playback; may open an ON cycle or finish the session."""
        if self.buffer is None or self._done:
            return SessionEventResult([])
        buffer = self.buffer
        previous_phase = buffer.phase
        buffer.on_tick(dt, now)
        commands = self._phase_change_commands(previous_phase, now)
        commands.extend(self._dispatch_fetches(now))
        if buffer.playback_finished and not self._done:
            self._done = True
            if self.metrics.playback_finished_at is None:
                self.metrics.playback_finished_at = now
            commands.append(SessionDone(now))
        return SessionEventResult(commands)

    # -- queries -----------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    @property
    def playback_started(self) -> bool:
        return self.metrics.playback_started_at is not None

    def path_phase(self, path_id: int) -> PathPhase:
        return self._path(path_id).phase

    # -- internals ------------------------------------------------------------------

    def _dispatch_fetches(self, now: float) -> list[Command]:
        """Hand new chunks to every idle path while fetching is ON."""
        if self.ledger is None or self.buffer is None:
            return []
        if not self.buffer.fetch_on:
            return []
        commands: list[Command] = []
        for path in self.paths.values():
            if not path.can_fetch:
                continue
            if self.ledger.in_flight_for(path.path_id) is not None:
                continue
            # §2 "Chunk Scheduler": at most `max_out_of_order` chunks may
            # sit completed-but-gapped.  A path wanting a beyond-frontier
            # chunk while the budget is spent idles until the gap fills
            # (the frontier chunk is in flight on the other path or in
            # the requeue, so progress is guaranteed).
            if self.ledger.out_of_order_count >= self.config.max_out_of_order:
                next_start = self.ledger.peek_next_start()
                if next_start is None or next_start > self.ledger.contiguous_frontier:
                    continue
            size = self.scheduler.chunk_size(path.path_id)
            assignment = self.ledger.assign(path.path_id, size)
            if assignment is None:
                break
            path.chunk_started(now)
            commands.append(
                FetchChunk(path.path_id, path.sources.active, assignment.byte_range)
            )
        return commands

    def _interpolate_crossing(
        self,
        previous_phase: BufferPhase,
        before_level_s: float,
        before_cycle_s: float,
        advanced_s: float,
        first_byte_at: float | None,
        now: float,
    ) -> float:
        """When did the buffer actually cross its active threshold?

        Bytes of the completed chunk arrived (to first order) linearly
        over ``[first_byte_at, now]``; if the pre-buffer target or the
        ON-cycle fetch target was crossed by this chunk, place the
        crossing at the proportional instant instead of at completion.
        """
        buffer = self.buffer
        assert buffer is not None
        if first_byte_at is None or advanced_s <= 0 or first_byte_at >= now:
            return now
        if previous_phase is BufferPhase.PREBUFFERING:
            needed_s = self.config.prebuffer_s - before_level_s
        elif previous_phase in (BufferPhase.REBUFFERING, BufferPhase.STALLED):
            needed_s = self.config.rebuffer_fetch_s - before_cycle_s
        else:
            return now
        if needed_s <= 0 or needed_s >= advanced_s:
            return now
        fraction = needed_s / advanced_s
        return first_byte_at + fraction * (now - first_byte_at)

    def _phase_change_commands(self, previous: BufferPhase, now: float) -> list[Command]:
        """Translate buffer transitions into metrics and commands."""
        buffer = self.buffer
        assert buffer is not None
        current = buffer.phase
        if current is previous:
            return []
        commands: list[Command] = []

        # Leaving pre-buffering: playback begins.
        if previous is BufferPhase.PREBUFFERING and not self._playback_announced:
            self._playback_announced = True
            self.metrics.prebuffer_completed_at = now
            self.metrics.playback_started_at = now
            commands.append(StartPlayback(at=now))

        if current is BufferPhase.REBUFFERING and previous is BufferPhase.STEADY:
            self.metrics.begin_rebuffer_cycle(now, buffer.level_s)
        if previous in (BufferPhase.REBUFFERING, BufferPhase.STALLED) and current in (
            BufferPhase.STEADY,
            BufferPhase.FINISHED,
        ):
            self.metrics.end_rebuffer_cycle(now)
        if current is BufferPhase.STALLED:
            self.metrics.begin_stall(now)
        if previous is BufferPhase.STALLED:
            self.metrics.end_stall(now)
        return commands

    def _path(self, path_id: int) -> PathState:
        try:
            return self.paths[path_id]
        except KeyError:
            raise PlayerError(f"unknown path {path_id}") from None

    def _require_stream(self) -> tuple[ChunkLedger, PlayoutBuffer]:
        if self.ledger is None or self.buffer is None:
            raise PlayerError("no path has completed bootstrap yet")
        return self.ledger, self.buffer

    def _bitrate_(self) -> float:
        if self._bitrate is None:
            raise PlayerError("bitrate unknown before bootstrap")
        return self._bitrate
