"""Player configuration.

Defaults follow the paper exactly:

* pre-buffering target 40 s (YouTube's Flash default, §5.1), with 20 s
  and 60 s used in sweeps;
* re-buffering: resume fetching below 10 s of buffered video, fetch
  20 s worth per ON cycle (§4);
* scheduler: harmonic-mean DCSA with initial chunk 256 KB (§5.2's
  conclusion), δ = 5 %, EWMA weight α = 0.9, 16 KB chunk floor (Alg. 1);
* format: itag 22 — MP4 720p (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from ..units import KB, MB, parse_size


@dataclass(frozen=True)
class PlayerConfig:
    """All tunables of an MSPlayer instance."""

    # -- buffering (§4) -----------------------------------------------------
    prebuffer_s: float = 40.0
    low_watermark_s: float = 10.0
    rebuffer_fetch_s: float = 20.0

    # -- scheduling (§3.3) ----------------------------------------------------
    scheduler: str = "harmonic"
    base_chunk_bytes: int = 256 * KB
    min_chunk_bytes: int = 16 * KB
    #: Safety clamp; the paper never needs one on its links, but an
    #: unbounded doubling rule deserves a ceiling in a library.
    max_chunk_bytes: int = 8 * MB
    delta: float = 0.05
    alpha: float = 0.9
    #: Sliding-window length for the extension estimator.
    window: int = 8

    # -- stream selection -------------------------------------------------------
    itag: int = 22

    # -- paths ---------------------------------------------------------------------
    #: The paper limits MSPlayer to two paths to stay TCP-friendly (§2).
    max_paths: int = 2
    #: Playback tick granularity used by drivers (seconds).
    tick_s: float = 0.1
    #: Maximum out-of-order chunks the design tolerates (§2: one).
    max_out_of_order: int = 1

    def __post_init__(self) -> None:
        if self.prebuffer_s <= 0:
            raise ConfigError("prebuffer_s must be positive")
        if self.low_watermark_s < 0 or self.low_watermark_s >= self.prebuffer_s:
            raise ConfigError("low watermark must sit below the pre-buffer target")
        if self.rebuffer_fetch_s <= 0:
            raise ConfigError("rebuffer_fetch_s must be positive")
        if self.min_chunk_bytes <= 0:
            raise ConfigError("min_chunk_bytes must be positive")
        if self.base_chunk_bytes < self.min_chunk_bytes:
            raise ConfigError("base chunk below the minimum chunk")
        if self.max_chunk_bytes < self.base_chunk_bytes:
            raise ConfigError("max chunk below the base chunk")
        if not 0.0 < self.delta < 1.0:
            raise ConfigError(f"delta must be in (0, 1), got {self.delta}")
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.max_paths not in (1, 2):
            raise ConfigError("MSPlayer supports one or two paths (§2)")
        if self.tick_s <= 0:
            raise ConfigError("tick_s must be positive")
        if self.max_out_of_order < 1:
            raise ConfigError("max_out_of_order must be at least 1")

    # -- conveniences --------------------------------------------------------------

    def with_(self, **changes: object) -> "PlayerConfig":
        """A modified copy (frozen dataclass idiom)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def paper_default(cls) -> "PlayerConfig":
        """The configuration §6 evaluates with."""
        return cls()

    @classmethod
    def from_strings(cls, **kwargs: str) -> "PlayerConfig":
        """Build from CLI-ish strings, parsing sizes like ``"256KB"``."""
        parsed: dict[str, object] = {}
        for key, value in kwargs.items():
            if key.endswith("_bytes"):
                parsed[key] = parse_size(value)
            elif key in ("scheduler",):
                parsed[key] = value
            elif key in ("itag", "max_paths", "window", "max_out_of_order"):
                parsed[key] = int(value)
            else:
                parsed[key] = float(value)
        return cls(**parsed)  # type: ignore[arg-type]
