"""Just-in-time playout buffer: pre-buffering then ON/OFF re-buffering.

The streaming strategy of §4, verbatim:

    "MSPlayer leaves the pre-buffering phase when more than 40-second
    video data is received.  It then consumes the video data until the
    playout buffer contains less than 10-second video.  MSPlayer
    resumes requesting chunks from both YouTube servers and refills the
    playout buffer until 20 seconds of video data are retrieved."

So there are two regimes:

* **PREBUFFERING** — fetch ON, playback not started; ends (and playback
  starts) once the buffer holds ``prebuffer_s`` of video;
* **steady state** — playback consumes the buffer; fetch toggles ON
  when the level drops below ``low_watermark_s`` and OFF again once
  ``rebuffer_fetch_s`` seconds' worth of data has been *retrieved in
  this ON cycle* (amount-based, matching the paper's wording and the
  re-buffering sizes swept in Fig. 5);
* **STALLED** — the buffer ran dry mid-playback (level 0): playback
  pauses, fetch is forced ON, and play resumes when the current ON
  cycle completes.  The paper's evaluation never stalls on its links,
  but a library must define the behaviour.

The buffer accounts *seconds of video*; the session converts bytes via
the asset's constant bitrate.  All methods take ``now`` explicitly —
sans-IO, no clock dependency.
"""

from __future__ import annotations

import enum

from ..errors import BufferError_, ConfigError
from .config import PlayerConfig


class BufferPhase(enum.Enum):
    PREBUFFERING = "prebuffering"
    STEADY = "steady"  # playing, fetch OFF
    REBUFFERING = "rebuffering"  # playing, fetch ON
    STALLED = "stalled"  # playback paused, fetch ON
    FINISHED = "finished"  # all video fetched; draining or done


class PlayoutBuffer:
    """Buffer state machine; emits fetch-ON/OFF decisions."""

    __slots__ = (
        "config",
        "video_duration_s",
        "level_s",
        "playhead_s",
        "phase",
        "cycle_fetched_s",
        "download_complete",
        "phase_entered_at",
        "transitions",
    )

    def __init__(self, config: PlayerConfig, video_duration_s: float) -> None:
        if video_duration_s <= 0:
            raise ConfigError("video duration must be positive")
        self.config = config
        self.video_duration_s = video_duration_s
        #: Seconds of contiguous video buffered ahead of the playhead.
        self.level_s = 0.0
        #: Playback position in seconds.
        self.playhead_s = 0.0
        self.phase = BufferPhase.PREBUFFERING
        #: Seconds of video retrieved during the current ON cycle.
        self.cycle_fetched_s = 0.0
        #: Set once every byte of the video has been received.
        self.download_complete = False
        #: Timestamps of phase entries, for metrics.
        self.phase_entered_at: float = 0.0
        # History of (time, phase) transitions.
        self.transitions: list[tuple[float, BufferPhase]] = []

    # -- queries ---------------------------------------------------------------

    @property
    def fetch_on(self) -> bool:
        """Should paths be requesting chunks right now?"""
        if self.download_complete:
            return False
        return self.phase in (
            BufferPhase.PREBUFFERING,
            BufferPhase.REBUFFERING,
            BufferPhase.STALLED,
        )

    @property
    def playing(self) -> bool:
        return self.phase in (BufferPhase.STEADY, BufferPhase.REBUFFERING) or (
            self.phase == BufferPhase.FINISHED and self.playhead_s < self.video_duration_s
        )

    @property
    def playback_finished(self) -> bool:
        return self.playhead_s >= self.video_duration_s - 1e-9

    # -- events -------------------------------------------------------------------

    def on_data(self, seconds_received: float, now: float) -> None:
        """Contiguous video extended by ``seconds_received`` seconds."""
        if seconds_received < 0:
            raise BufferError_(f"negative data increment {seconds_received}")
        self.level_s += seconds_received
        if self.fetch_on:
            self.cycle_fetched_s += seconds_received
        self._maybe_transition(now)

    def mark_download_complete(self, now: float) -> None:
        self.download_complete = True
        if self.phase is not BufferPhase.FINISHED:
            self._enter(BufferPhase.FINISHED, now)

    def on_tick(self, dt: float, now: float) -> float:
        """Advance playback by up to ``dt`` seconds; returns seconds played."""
        if dt < 0:
            raise BufferError_(f"negative tick {dt}")
        if not self.playing or dt <= 0.0:
            return 0.0
        played = min(dt, self.level_s, self.video_duration_s - self.playhead_s)
        self.playhead_s += played
        self.level_s -= played
        self._maybe_transition(now)
        return played

    # -- state machine ----------------------------------------------------------------

    def _maybe_transition(self, now: float) -> None:
        # A single event can warrant a cascade (e.g. one long tick takes
        # STEADY below the watermark *and* dry: STEADY → REBUFFERING →
        # STALLED), so re-evaluate until the phase stabilizes.
        while True:
            before = self.phase
            self._transition_step(now)
            if self.phase is before:
                return

    def _transition_step(self, now: float) -> None:
        if self.phase == BufferPhase.PREBUFFERING:
            if self.level_s >= self.config.prebuffer_s or self.download_complete:
                self._enter(BufferPhase.STEADY, now)
        elif self.phase == BufferPhase.STEADY:
            if self.download_complete:
                self._enter(BufferPhase.FINISHED, now)
            elif self.level_s < self.config.low_watermark_s:
                self.cycle_fetched_s = 0.0
                self._enter(BufferPhase.REBUFFERING, now)
        elif self.phase == BufferPhase.REBUFFERING:
            if self.download_complete:
                self._enter(BufferPhase.FINISHED, now)
            elif self.level_s <= 1e-9:
                self._enter(BufferPhase.STALLED, now)
            elif self.cycle_fetched_s >= self.config.rebuffer_fetch_s:
                self._enter(BufferPhase.STEADY, now)
        elif self.phase == BufferPhase.STALLED:
            if self.download_complete:
                self._enter(BufferPhase.FINISHED, now)
            elif self.cycle_fetched_s >= self.config.rebuffer_fetch_s:
                self._enter(BufferPhase.STEADY, now)

    def _enter(self, phase: BufferPhase, now: float) -> None:
        if phase is self.phase:
            return
        self.phase = phase
        self.phase_entered_at = now
        self.transitions.append((now, phase))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlayoutBuffer {self.phase.value} level={self.level_s:.1f}s "
            f"playhead={self.playhead_s:.1f}s>"
        )
