"""Per-path lifecycle state.

Each MSPlayer path is an (interface, network, server) triple whose life
runs: bootstrap through the web proxy (DNS → HTTPS → JSON → maybe the
signature decoder) → ready → fetching chunks → possibly broken (path or
server failure) → failed over or dead.  :class:`PathState` is the
sans-IO record of that lifecycle; drivers own the actual sockets or
simulated connections.

Bootstrap timestamps are kept so experiments can reproduce the Fig. 1
analysis: ``t_bootstrap_started``, ``t_json_complete`` (ψ), and
``t_first_video_byte`` (π) per path, plus the derived head start
``π₂ − π₁`` the fast path enjoys (§3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import PlayerError
from .sources import SourceManager


class PathPhase(enum.Enum):
    INIT = "init"
    BOOTSTRAPPING = "bootstrapping"  # proxy handshake + JSON (+ decoder)
    READY = "ready"  # video server known, connection warm
    FETCHING = "fetching"  # a chunk is in flight
    BROKEN = "broken"  # transient failure; failover in progress
    DEAD = "dead"  # interface down / sources exhausted


#: Phases from which a path can accept a new chunk assignment.
_ASSIGNABLE = (PathPhase.READY,)


@dataclass
class PathState:
    """One path's logical state."""

    path_id: int
    iface_name: str
    network_id: str
    sources: SourceManager

    phase: PathPhase = PathPhase.INIT
    #: Bootstrap milestones (simulated/real seconds).
    t_bootstrap_started: float | None = None
    t_json_complete: float | None = None
    t_first_video_byte: float | None = None
    #: Number of completed chunks, for scheduler warm-up logic.
    chunks_completed: int = 0
    #: Consecutive failures on the current server (resets on success).
    consecutive_failures: int = 0
    #: Phase transition history for debugging and tests.
    history: list[tuple[float, PathPhase]] = field(default_factory=list)

    # -- transitions ------------------------------------------------------------

    def begin_bootstrap(self, now: float) -> None:
        self._require(PathPhase.INIT, PathPhase.BROKEN)
        self.t_bootstrap_started = self.t_bootstrap_started or now
        self._enter(PathPhase.BOOTSTRAPPING, now)

    def bootstrap_complete(self, now: float, json_completed_at: float | None = None) -> None:
        """``json_completed_at`` back-dates ψ to the JSON decode instant
        (the path becomes READY only after the video-server handshake,
        which is part of π, not ψ)."""
        self._require(PathPhase.BOOTSTRAPPING)
        if self.t_json_complete is None:
            self.t_json_complete = json_completed_at if json_completed_at is not None else now
        self._enter(PathPhase.READY, now)

    def chunk_started(self, now: float) -> None:
        self._require(PathPhase.READY)
        self._enter(PathPhase.FETCHING, now)

    def chunk_finished(self, now: float, first_byte_at: float | None = None) -> None:
        """``first_byte_at`` dates π at the first video *byte* (Fig. 1's
        milestone), not at the first chunk's completion."""
        self._require(PathPhase.FETCHING)
        if self.t_first_video_byte is None:
            self.t_first_video_byte = first_byte_at if first_byte_at is not None else now
        self.chunks_completed += 1
        self.consecutive_failures = 0
        self._enter(PathPhase.READY, now)

    def mark_broken(self, now: float) -> None:
        """Transient failure: the session will try failover."""
        self.consecutive_failures += 1
        self._enter(PathPhase.BROKEN, now)

    def mark_dead(self, now: float) -> None:
        self._enter(PathPhase.DEAD, now)

    def revive(self, now: float) -> None:
        """Interface came back up: allow a fresh bootstrap."""
        self._require(PathPhase.DEAD, PathPhase.BROKEN)
        self._enter(PathPhase.INIT, now)

    # -- queries ---------------------------------------------------------------

    @property
    def can_fetch(self) -> bool:
        return self.phase in _ASSIGNABLE

    @property
    def alive(self) -> bool:
        return self.phase not in (PathPhase.DEAD,)

    @property
    def active_server(self) -> str:
        return self.sources.active

    def bootstrap_duration(self) -> float | None:
        """Paper's ψ measured: bootstrap start → JSON complete."""
        if self.t_bootstrap_started is None or self.t_json_complete is None:
            return None
        return self.t_json_complete - self.t_bootstrap_started

    def first_packet_delay(self) -> float | None:
        """Paper's π measured: bootstrap start → first video byte."""
        if self.t_bootstrap_started is None or self.t_first_video_byte is None:
            return None
        return self.t_first_video_byte - self.t_bootstrap_started

    # -- internals ----------------------------------------------------------------

    def _enter(self, phase: PathPhase, now: float) -> None:
        self.phase = phase
        self.history.append((now, phase))

    def _require(self, *phases: PathPhase) -> None:
        if self.phase not in phases:
            raise PlayerError(
                f"path {self.path_id}: invalid transition from {self.phase.value} "
                f"(expected one of {[p.value for p in phases]})"
            )
