"""Traffic shaping for the loopback testbed.

Loopback moves gigabytes per second with microsecond RTTs; to make the
scheduler's job non-trivial the server shapes each connection:

* :class:`TokenBucket` — classic (rate, burst) limiter; the server
  awaits tokens before each write, so goodput converges to ``rate``;
* :class:`PathShape` — a path personality: rate, one-way latency
  (applied before the first response byte of every exchange, emulating
  the request RTT), and an optional slow-start-like ramp.

Shaping server-side egress is the standard user-space stand-in for
netns+tc: it produces the two effects the chunk scheduler actually
feeds on — bounded per-path goodput and a per-request idle gap.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from ..errors import ConfigError


class TokenBucket:
    """Await-able token bucket (bytes as tokens).

    >>> bucket = TokenBucket(rate=1000.0, burst=100.0)
    >>> bucket.capacity
    100.0
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigError("rate and burst must be positive")
        self.rate = float(rate)
        self.capacity = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.capacity, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, amount: float) -> float:
        """Synchronously take up to ``amount`` tokens; returns the wait
        time (seconds) needed before the *remainder* is available, or
        0.0 if fully granted."""
        if amount <= 0:
            raise ConfigError("token amount must be positive")
        self._refill()
        # Borrow against the future: the balance goes negative and the
        # caller sleeps until it would be non-negative again.  (Setting
        # the balance to zero instead would regenerate the slept-off
        # tokens on the next refill and double the effective rate.)
        self._tokens -= amount
        if self._tokens >= 0.0:
            return 0.0
        return -self._tokens / self.rate

    async def take(self, amount: float) -> None:
        """Take ``amount`` tokens, sleeping until the bucket allows it."""
        wait = self.try_take(amount)
        if wait > 0:
            await asyncio.sleep(wait)


@dataclass
class PathShape:
    """The personality of one emulated path."""

    name: str
    #: Goodput cap in bytes/s.
    rate: float
    #: One-way latency charged per request (seconds).
    one_way_delay: float
    #: Egress burst size in bytes (smaller = smoother pacing).
    burst: int = 32 * 1024
    #: Write granularity in bytes; smaller chunks pace more evenly.
    write_chunk: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("rate must be positive")
        if self.one_way_delay < 0:
            raise ConfigError("one_way_delay must be non-negative")
        if self.burst <= 0 or self.write_chunk <= 0:
            raise ConfigError("burst and write_chunk must be positive")

    def make_bucket(self) -> TokenBucket:
        return TokenBucket(self.rate, float(self.burst))

    @property
    def rtt(self) -> float:
        return 2.0 * self.one_way_delay


async def shaped_write(
    writer: asyncio.StreamWriter,
    payload: bytes,
    bucket: TokenBucket,
    write_chunk: int,
) -> None:
    """Write ``payload`` paced by ``bucket`` in ``write_chunk`` slices."""
    view = memoryview(payload)
    offset = 0
    while offset < len(view):
        piece = view[offset : offset + write_chunk]
        await bucket.take(len(piece))
        writer.write(bytes(piece))
        await writer.drain()
        offset += len(piece)
