"""Asyncio HTTP/1.1 server hosting the CDN applications on loopback.

One :class:`LiveHTTPServer` plays one emulated host (a web proxy or a
video server) on its own 127.0.0.1 port, with a :class:`PathShape`
defining the path personality clients experience.  The request loop:

1. parse requests incrementally with the shared sans-IO
   :class:`~repro.http.h1.H1Parser` (same parser the client uses);
2. sleep the path's one-way delay twice (request + first-byte legs);
3. ask the attached application (the *same*
   :class:`~repro.cdn.webproxy.WebProxyApp` /
   :class:`~repro.cdn.videoserver.VideoServerApp` objects the simulator
   uses) for the response;
4. for video responses, materialize the virtual body as deterministic
   pseudo-bytes and stream it through the token bucket.

Connections are persistent (keep-alive), matching §4.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections.abc import Callable

from ..errors import HTTPParseError
from ..http.h1 import H1Parser
from ..http.messages import Response
from .shaping import PathShape, shaped_write


def synthetic_body(size: int, seed_offset: int = 0) -> bytes:
    """Deterministic pseudo-video bytes (pattern, cheap to generate)."""
    if size <= 0:
        return b""
    pattern = bytes((i * 31 + seed_offset * 7) % 251 for i in range(251))
    repeats = size // len(pattern) + 1
    return (pattern * repeats)[:size]


class LiveHTTPServer:
    """One shaped loopback host."""

    def __init__(
        self,
        app,  # duck-typed: .handle(request, client_network) -> (Response, think)
        shape: PathShape,
        client_network: str,
        host: str = "127.0.0.1",
    ) -> None:
        self.app = app
        self.shape = shape
        self.client_network = client_network
        self.host = host
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self.connections_accepted = 0
        self.requests_served = 0

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> int:
        """Bind an ephemeral port; returns it."""
        self._server = await asyncio.start_server(self._serve, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        if self.port is None:
            raise RuntimeError("server not started")
        return f"{self.host}:{self.port}"

    # -- per-connection loop -------------------------------------------------------

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections_accepted += 1
        parser = H1Parser(role="request")
        bucket = self.shape.make_bucket()  # per-connection shaping
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                try:
                    messages = parser.feed(data)
                except HTTPParseError:
                    writer.write(Response.error(400).encode())
                    await writer.drain()
                    return
                for message in messages:
                    await self._respond(message, writer, bucket)
                    self.requests_served += 1
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # server stopping mid-connection
        ):
            return
        finally:
            writer.close()
            with contextlib.suppress(  # pragma: no cover - teardown best-effort
                ConnectionResetError, BrokenPipeError, asyncio.CancelledError
            ):
                await writer.wait_closed()

    async def _respond(self, message, writer: asyncio.StreamWriter, bucket) -> None:
        # Request leg + first-byte leg of the emulated path.
        await asyncio.sleep(self.shape.one_way_delay)
        request = message.to_request()
        if hasattr(self.app, "begin_request"):
            self.app.begin_request()
        try:
            if hasattr(self.app, "handle"):
                response, think = self.app.handle(request, client_network=self.client_network)
            else:
                # Bare application callable (WebProxyApp / VideoServerApp
                # style): no service-time model, the shaper is the cost.
                response, think = self.app(request, self.client_network), 0.0
        finally:
            if hasattr(self.app, "end_request"):
                self.app.end_request()
        if think > 0:
            await asyncio.sleep(think)

        # Materialize virtual (simulator-style) bodies for the real wire.
        if response.body_size and not response.body:
            response = Response(
                response.status,
                response.headers,
                body=synthetic_body(response.body_size),
            )
        payload = response.encode()
        await asyncio.sleep(self.shape.one_way_delay)
        await shaped_write(writer, payload, bucket, self.shape.write_chunk)


def make_app_adapter(handler: Callable) -> object:
    """Wrap a bare ``(request, network) -> Response`` callable so the
    server can host plain functions in tests."""

    class _Adapter:
        def handle(self, request, client_network):
            return handler(request, client_network), 0.0

    return _Adapter()
