"""One-call loopback testbed: two shaped networks, CDN apps, a player.

:class:`LiveTestbed` builds the live analogue of the §5 testbed:

* per emulated network (WiFi-like, LTE-like): one web-proxy server and
  ``video_servers_per_network`` video servers, each an asyncio server
  on its own loopback port, shaped by that network's
  :class:`~repro.live.shaping.PathShape`;
* a shared catalog/token-mint/signature-cipher, identical objects to
  the simulation's CDN;
* server selection that answers with the asking network's pool — so
  MSPlayer's two paths land on different servers, as over real WiFi+LTE.

``run_live_session`` wires a :class:`~repro.live.client.LivePlayerDriver`
to the testbed and runs one playback.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from ..cdn.catalog import Catalog
from ..cdn.signature import SignatureCipher
from ..cdn.tokens import TokenMint
from ..cdn.videos import VideoMeta
from ..cdn.videoserver import VideoServerApp
from ..cdn.webproxy import WebProxyApp
from ..core.config import PlayerConfig
from ..errors import ConfigError
from .client import LiveOutcome, LivePlayerDriver
from .server import LiveHTTPServer
from .shaping import PathShape

#: Default path personalities: WiFi-like vs LTE-like, scaled down so a
#: test video streams in seconds (ratios match the sim profiles).
DEFAULT_SHAPES = (
    PathShape(name="wifi", rate=1_500_000.0, one_way_delay=0.004),
    PathShape(name="lte", rate=900_000.0, one_way_delay=0.012),
)


@dataclass
class LiveTestbed:
    """Two emulated networks on loopback."""

    shapes: tuple[PathShape, ...] = DEFAULT_SHAPES
    video_servers_per_network: int = 2
    video_duration_s: float = 30.0
    video_id: str = "liveLoopbk1"
    itags: tuple[int, ...] = (18, 22)
    copyrighted: bool = False
    seed: int = 7

    network_ids: tuple[str, ...] = ("wifi-net", "lte-net")
    catalog: Catalog = field(init=False)
    proxies: list[LiveHTTPServer] = field(init=False, default_factory=list)
    video_servers: dict[str, list[LiveHTTPServer]] = field(init=False, default_factory=dict)
    _selection: dict[str, list[str]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.shapes) != len(self.network_ids):
            raise ConfigError("one shape per network required")
        self.catalog = Catalog()
        self.catalog.add(
            VideoMeta(
                video_id=self.video_id,
                title="Loopback clip",
                author="live-harness",
                duration_s=self.video_duration_s,
                itags=self.itags,
                copyrighted=self.copyrighted,
            )
        )
        rng = np.random.Generator(np.random.PCG64(self.seed))
        self._mint = TokenMint(secret=b"live-token-secret")
        self._cipher = SignatureCipher.random(rng)
        self._signature_secret = b"live-stream-secret"

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        clock = loop.time
        for network_id, shape in zip(self.network_ids, self.shapes, strict=True):
            pool: list[LiveHTTPServer] = []
            for index in range(self.video_servers_per_network):
                app = VideoServerApp(
                    self.catalog,
                    self._mint,
                    clock,
                    pool=network_id,
                    signature_secret=self._signature_secret,
                    name=f"live-v{index}.{network_id}",
                )
                server = LiveHTTPServer(app, shape, client_network=network_id)
                await server.start()
                pool.append(server)
            self.video_servers[network_id] = pool
            self._selection[network_id] = [s.address for s in pool]

            proxy_app = WebProxyApp(
                self.catalog,
                self._mint,
                select_hosts=lambda net, sel=self._selection: list(sel[net]),
                clock=clock,
                cipher=self._cipher,
                signature_secret=self._signature_secret,
            )
            proxy = LiveHTTPServer(proxy_app, shape, client_network=network_id)
            await proxy.start()
            self.proxies.append(proxy)

    async def stop(self) -> None:
        for server in self.proxies:
            await server.stop()
        for pool in self.video_servers.values():
            for server in pool:
                await server.stop()

    @property
    def proxy_addresses(self) -> list[str]:
        return [p.address for p in self.proxies]


async def run_live_session(
    testbed: LiveTestbed,
    config: PlayerConfig | None = None,
    stop: str = "prebuffer",
    target_cycles: int = 1,
    timeout_s: float = 60.0,
) -> LiveOutcome:
    """Run one MSPlayer playback against a started testbed."""
    driver = LivePlayerDriver(
        proxy_addresses=testbed.proxy_addresses,
        video_id=testbed.video_id,
        config=config,
        stop=stop,
        target_cycles=target_cycles,
        timeout_s=timeout_s,
        network_ids=testbed.network_ids,
    )
    return await driver.run()
