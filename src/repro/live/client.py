"""Asyncio driver for PlayerSession over real loopback sockets.

The exact same sans-IO :class:`~repro.core.session.PlayerSession` the
discrete-event simulator drives, here fed by real TCP: same commands,
same schedulers, same buffer state machine.  Integration tests run the
two backends side by side, which is the strongest check that the core
logic has no hidden dependency on simulated time.

The driver keeps one persistent connection per (path, server), parses
responses incrementally with :class:`~repro.http.h1.H1Parser`, and
timestamps requests with ``loop.time()`` so the session's metrics have
the same meaning as in simulation.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field

from ..cdn.jsonapi import VideoInfo, parse_video_info
from ..cdn.signature import decipher
from ..cdn.webproxy import parse_decoder_page
from ..core.config import PlayerConfig
from ..core.metrics import QoEMetrics
from ..core.session import (
    Command,
    FetchChunk,
    PathDead,
    PlayerSession,
    SessionDone,
    StartBootstrap,
    StartPlayback,
    StreamDetails,
)
from ..errors import HTTPStatusError, NetworkError
from ..http.h1 import H1Parser
from ..http.messages import Request, Response


@dataclass
class LiveOutcome:
    metrics: QoEMetrics
    stop_reason: str
    wall_seconds: float
    requests_by_path: dict[int, int] = field(default_factory=dict)
    peak_out_of_order: int = 0

    @property
    def startup_delay(self) -> float | None:
        return self.metrics.startup_delay


class _Connection:
    """One persistent client connection with response parsing."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.parser = H1Parser(role="response")

    async def request(self, request: Request, loop: asyncio.AbstractEventLoop):
        """Send a request; returns (response, requested_at, first_byte_at, done_at)."""
        requested_at = loop.time()
        self.writer.write(request.encode())
        await self.writer.drain()
        first_byte_at: float | None = None
        while True:
            data = await self.reader.read(64 * 1024)
            if not data:
                raise NetworkError("connection closed mid-response")
            if first_byte_at is None:
                first_byte_at = loop.time()
            messages = self.parser.feed(data)
            if messages:
                done_at = loop.time()
                return messages[0].to_response(), requested_at, first_byte_at, done_at

    def close(self) -> None:
        with contextlib.suppress(Exception):  # pragma: no cover - teardown
            self.writer.close()


@dataclass
class _LivePathRuntime:
    proxy_address: str  # "host:port"
    info: VideoInfo | None = None
    signature: str = ""
    details: StreamDetails | None = None
    video_connections: dict[str, _Connection] = field(default_factory=dict)


class LivePlayerDriver:
    """Drives PlayerSession over asyncio sockets."""

    def __init__(
        self,
        proxy_addresses: list[str],
        video_id: str,
        config: PlayerConfig | None = None,
        stop: str = "full",
        target_cycles: int = 1,
        timeout_s: float = 60.0,
        network_ids: tuple[str, ...] = ("wifi-net", "lte-net"),
    ) -> None:
        if stop not in ("prebuffer", "cycles", "full"):
            raise ValueError(f"unknown stop condition {stop!r}")
        self.config = config or PlayerConfig()
        self.video_id = video_id
        self.stop = stop
        self.target_cycles = target_cycles
        self.timeout_s = timeout_s
        path_specs = [
            (f"lo{i}", network_ids[i])
            for i in range(min(len(proxy_addresses), self.config.max_paths))
        ]
        self.session = PlayerSession(self.config, path_specs)
        self._runtimes = {
            i: _LivePathRuntime(proxy_address=proxy_addresses[i])
            for i in range(len(path_specs))
        }
        self._finish: asyncio.Event = asyncio.Event()
        self._stop_reason = "unknown"
        self._tasks: list[asyncio.Task] = []

    # -- public ---------------------------------------------------------------

    async def run(self) -> LiveOutcome:
        loop = asyncio.get_running_loop()
        started = loop.time()
        result = self.session.start(loop.time())
        self._execute(result.commands)
        ticker = asyncio.ensure_future(self._ticker())
        self._tasks.append(ticker)
        try:
            await asyncio.wait_for(self._finish.wait(), timeout=self.timeout_s)
        except asyncio.TimeoutError:
            self._stop_reason = "timeout"
        finally:
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            for runtime in self._runtimes.values():
                for connection in runtime.video_connections.values():
                    connection.close()
        return LiveOutcome(
            metrics=self.session.metrics,
            stop_reason=self._stop_reason,
            wall_seconds=loop.time() - started,
            requests_by_path=dict(self.session.metrics.requests_by_path),
            peak_out_of_order=(
                self.session.ledger.peak_out_of_order if self.session.ledger else 0
            ),
        )

    # -- command plumbing ----------------------------------------------------------

    def _execute(self, commands: list[Command]) -> None:
        for command in commands:
            if isinstance(command, StartBootstrap):
                self._spawn(self._bootstrap(command.path_id, command.server))
            elif isinstance(command, FetchChunk):
                self._spawn(self._fetch(command))
            elif isinstance(command, StartPlayback):
                if self.stop == "prebuffer":
                    self._finish_once("prebuffer-complete")
            elif isinstance(command, SessionDone):
                self._finish_once(command.reason)
            elif isinstance(command, PathDead):
                pass
        if (
            self.stop == "cycles"
            and len(self.session.metrics.completed_cycle_durations()) >= self.target_cycles
        ):
            self._finish_once("cycles-complete")

    def _spawn(self, coroutine) -> None:
        task = asyncio.ensure_future(coroutine)
        self._tasks.append(task)

    def _finish_once(self, reason: str) -> None:
        if not self._finish.is_set():
            self._stop_reason = reason
            self._finish.set()

    # -- IO: bootstrap ---------------------------------------------------------------

    async def _connect(self, address: str) -> _Connection:
        host, _, port = address.rpartition(":")
        reader, writer = await asyncio.open_connection(host, int(port))
        return _Connection(reader, writer)

    async def _bootstrap(self, path_id: int, server: str | None) -> None:
        loop = asyncio.get_running_loop()
        runtime = self._runtimes[path_id]
        try:
            if server is not None and runtime.details is not None:
                if server not in runtime.video_connections:
                    runtime.video_connections[server] = await self._connect(server)
                details = runtime.details
            else:
                details = await self._full_bootstrap(path_id, runtime, loop)
        except (OSError, NetworkError, HTTPStatusError, Exception) as exc:
            if isinstance(exc, asyncio.CancelledError):
                raise
            result = self.session.on_chunk_failed(
                path_id, 0, loop.time(), reason=f"bootstrap: {exc!r}"
            )
            self._execute(result.commands)
            return
        result = self.session.on_path_ready(path_id, details, loop.time())
        self._execute(result.commands)

    async def _full_bootstrap(
        self, path_id: int, runtime: _LivePathRuntime, loop: asyncio.AbstractEventLoop
    ) -> StreamDetails:
        proxy = await self._connect(runtime.proxy_address)
        try:
            response, _, _, done_at = await proxy.request(
                Request.get(f"/videoinfo?v={self.video_id}", host=runtime.proxy_address),
                loop,
            )
            if response.status != 200:
                raise HTTPStatusError(response.status, response.reason)
            info = parse_video_info(response.parsed_json())
            json_completed_at = done_at
            runtime.info = info
            stream = info.stream(self.config.itag)
            if stream.needs_decipher:
                page, _, _, _ = await proxy.request(
                    Request.get(info.decoder_path, host=runtime.proxy_address), loop
                )
                if page.status != 200:
                    raise HTTPStatusError(page.status, page.reason)
                program = parse_decoder_page(page.body)
                runtime.signature = decipher(stream.enciphered_signature, program)
            else:
                runtime.signature = stream.signature
        finally:
            proxy.close()

        primary = stream.hosts[0]
        runtime.video_connections[primary] = await self._connect(primary)
        details = StreamDetails(
            total_bytes=stream.size_bytes,
            bitrate_bytes_per_s=stream.size_bytes / info.duration_s,
            duration_s=info.duration_s,
            video_servers=tuple(stream.hosts),
            json_completed_at=json_completed_at,
        )
        runtime.details = details
        return details

    # -- IO: chunks --------------------------------------------------------------------

    async def _fetch(self, command: FetchChunk) -> None:
        loop = asyncio.get_running_loop()
        runtime = self._runtimes[command.path_id]
        try:
            connection = runtime.video_connections.get(command.server)
            if connection is None:
                connection = await self._connect(command.server)
                runtime.video_connections[command.server] = connection
            assert runtime.info is not None
            target = runtime.info.playback_target(self.config.itag, runtime.signature)
            request = Request.get(
                target, host=command.server, byte_range=command.byte_range
            )
            response, requested_at, first_byte_at, done_at = await connection.request(
                request, loop
            )
            if response.status != 206:
                raise HTTPStatusError(response.status, response.reason)
            if len(response.body) != command.byte_range.length:
                raise NetworkError(
                    f"short body: {len(response.body)} != {command.byte_range.length}"
                )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            runtime.video_connections.pop(command.server, None)
            result = self.session.on_chunk_failed(
                command.path_id, 0, loop.time(), reason=repr(exc)
            )
            self._execute(result.commands)
            return
        result = self.session.on_chunk_complete(
            command.path_id,
            num_bytes=command.byte_range.length,
            duration=done_at - requested_at,
            now=done_at,
            first_byte_at=first_byte_at,
        )
        self._execute(result.commands)

    # -- playback clock -------------------------------------------------------------------

    async def _ticker(self) -> None:
        loop = asyncio.get_running_loop()
        tick = self.config.tick_s
        while not self._finish.is_set():
            await asyncio.sleep(tick)
            result = self.session.on_tick(tick, loop.time())
            self._execute(result.commands)
