"""Real-socket backend: MSPlayer over asyncio on loopback.

The paper validated MSPlayer on a physical testbed; the closest
CI-friendly equivalent is real TCP over loopback with shaped paths
(netns + tc would be the next step up and needs root).  This package
provides:

* :mod:`repro.live.shaping` — a token-bucket rate limiter plus added
  latency, applied to each server connection to emulate a WiFi-like
  and an LTE-like path on two ports;
* :mod:`repro.live.server` — an asyncio HTTP/1.1 server speaking the
  same ``/videoinfo`` + ``/videoplayback`` protocol as the simulated
  CDN, reusing the *same* application objects
  (:class:`~repro.cdn.webproxy.WebProxyApp`,
  :class:`~repro.cdn.videoserver.VideoServerApp`) — the wire is real,
  the logic is shared;
* :mod:`repro.live.client` — an asyncio driver for the *same sans-IO*
  :class:`~repro.core.session.PlayerSession` the simulator drives,
  parsing responses with the shared :class:`~repro.http.h1.H1Parser`;
* :mod:`repro.live.harness` — one-call setup of two shaped "networks"
  on loopback, used by the integration tests and the
  ``examples/live_loopback.py`` demo.

Everything binds to 127.0.0.1 only; no external traffic.
"""

from .shaping import TokenBucket, PathShape
from .server import LiveHTTPServer
from .client import LivePlayerDriver, LiveOutcome
from .harness import LiveTestbed, run_live_session

__all__ = [
    "TokenBucket",
    "PathShape",
    "LiveHTTPServer",
    "LivePlayerDriver",
    "LiveOutcome",
    "LiveTestbed",
    "run_live_session",
]
