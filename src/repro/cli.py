"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``play`` — run one MSPlayer session on a simulated profile and print
  its QoE metrics;
* ``experiment`` — regenerate a paper figure/table by id (fig1…fig5,
  table1, x1…x3, x6) and print the panel;
* ``adaptive`` — run the DASH-extension player with a chosen controller;
* ``list`` — show available experiments (from the registry) and
  profiles;
* ``cache`` — inspect/maintain a study cell cache directory
  (``ls`` / ``gc`` / ``verify``);
* ``serve`` — run the study-service broker (sqlite queue + HTTP front
  end; :mod:`repro.serve`);
* ``worker`` — run a pull worker against a broker URL;
* ``lint`` — run the AST-based determinism/invariant analyzer
  (:mod:`repro.lint`) over source paths.

The ``experiment`` surface is *generated from the study registry*
(:mod:`repro.study`): each experiment id is a sub-command whose flags
are derived from its :class:`~repro.study.params.ParamSchema` — so
``repro experiment fig3 --help`` shows exactly fig3's knobs, a knob
aimed at the wrong experiment is an argparse error, and a new
experiment needs zero CLI edits.  Every id additionally accepts:

* ``--jobs`` / ``--ipc`` — execution backend and collection mode
  (uniform across ids; fig1/x3 fan out like everything else);
* ``--kernel`` — event-kernel selection (``heapq`` / ``calendar`` /
  ``compiled``); byte-identical results whichever dispatches;
* ``--set key=value`` — generic schema-validated override (same
  strings the flags take: ``--set chunks=64KB,1MB``);
* ``--grid key=v1,v2`` — sweep a param across study cells; all cells
  run as one merged pool submission (``;`` separates tuple-valued
  cells: ``--grid prebuffers='20;40,60'``);
* ``--save PATH`` — archive the :class:`~repro.study.StudyResult` to
  ``PATH.json`` + ``PATH.npz``;
* ``--cache DIR`` / ``--resume DIR`` — consult a content-addressed
  cell cache (:mod:`repro.study.cache`): cached cells are rebuilt from
  ``DIR`` bit-identically and only the misses run (``REPRO_CACHE`` env
  supplies a default);
* ``--backend service --broker URL`` — ship the study to a broker and
  let a worker fleet execute it (:mod:`repro.serve`); the returned
  archive is byte-identical to a local run.

``cache {ls,gc,verify}`` maintain such a cache directory from the
command line (list entries as a table or JSON manifest, collect stale
entries, fully re-validate every entry).

``main`` returns process exit codes (argparse rejections included)
instead of raising ``SystemExit``, so in-process callers get ``2`` for
a bad flag the same way a shell would.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .core.config import PlayerConfig
from .errors import ConfigError
from .net.calendar import KERNELS
from .lint.cli import add_lint_parser, command_lint
from .ext.adaptive import (
    AdaptiveSimDriver,
    BufferBasedController,
    FixedBitrateController,
    ThroughputController,
)
from .sim.driver import MSPlayerDriver
from .sim.profiles import PROFILES
from .sim.scenario import Scenario, ScenarioConfig
from .study import Study, experiment_ids, get_experiment
from .study.params import UNSET, Param
from .units import parse_size

CONTROLLERS = {
    "fixed": lambda itag: FixedBitrateController(itag),
    "buffer": lambda itag: BufferBasedController(),
    "throughput": lambda itag: ThroughputController(),
}

#: argparse dests reserved by the generated experiment sub-commands; a
#: schema param may not shadow them (enforced at parser build time).
_RESERVED_DESTS = frozenset(
    {
        "command",
        "id",
        "jobs",
        "ipc",
        "kernel",
        "save",
        "set",
        "grid",
        "cache",
        "backend",
        "broker",
    }
)


def _add_param_flag(parser: argparse.ArgumentParser, param: Param) -> None:
    """One schema param → one generated flag.

    Values stay strings for ``many``/parsed params (the schema splits
    and converts); scalar int/float params get argparse-level typing so
    ``--trials x`` fails in the parser with the usual message.
    """
    kwargs: dict = {
        "dest": param.name,
        "default": None,  # None = "not provided"; resolution is schema-side
        "help": f"{param.help or param.name} (default: {param.default!r})",
        "metavar": param.name.upper(),
    }
    if param.many or param.parse is not None or param.type is bool:
        kwargs["type"] = str
        if param.many:
            kwargs["metavar"] = f"{param.name.upper()}[,...]"
    else:
        kwargs["type"] = param.type
    parser.add_argument(param.flag, **kwargs)


def _experiment_parser(sub: argparse._SubParsersAction) -> None:
    experiment = sub.add_parser(
        "experiment",
        help="regenerate a paper figure/table (sub-command per id)",
        description="Experiment ids are generated from the study registry; "
        "`repro experiment <id> --help` lists that id's typed knobs.",
    )
    by_id = experiment.add_subparsers(dest="id", required=True, metavar="ID")
    for experiment_id in experiment_ids():
        definition = get_experiment(experiment_id)
        parser = by_id.add_parser(
            experiment_id,
            help=f"[{definition.kind}] {definition.title}",
            description=definition.description or definition.title,
        )
        parser.set_defaults(id=experiment_id)
        for param in definition.schema:
            if param.name in _RESERVED_DESTS:
                raise ConfigError(
                    f"experiment {experiment_id!r}: param {param.name!r} "
                    "shadows a reserved CLI dest"
                )
            _add_param_flag(parser, param)
        parser.add_argument(
            "--jobs",
            default=None,
            metavar="N",
            help="execution backend for the study's merged campaign "
            "submission: an integer worker count, 'auto' (one per CPU), "
            "or 'serial' (default; REPRO_JOBS env overrides).  Results "
            "are byte-identical whatever the backend",
        )
        parser.add_argument(
            "--ipc",
            choices=("pickle", "shm"),
            default=None,
            help="result collection for process backends: 'shm' (default) "
            "has workers write dense outcome columns into a shared-memory "
            "arena, 'pickle' sends full result objects through the pool "
            "pipe.  Byte-identical either way; sets REPRO_IPC for the run",
        )
        parser.add_argument(
            "--kernel",
            choices=KERNELS,
            default=None,
            help="event-kernel for every simulated environment: 'heapq' "
            "(default), 'calendar' (bucketed queue), or 'compiled' (C "
            "extension when built, else calendar).  Dispatch-order "
            "identical — results are byte-identical whichever runs; "
            "REPRO_KERNEL env overrides the default",
        )
        parser.add_argument(
            "--set",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="generic schema-validated param override "
            "(e.g. --set chunks=64KB,1MB); repeatable",
        )
        parser.add_argument(
            "--grid",
            action="append",
            default=[],
            metavar="KEY=V1,V2",
            help="sweep a param across study cells, all cells one merged "
            "pool submission; ';' separates tuple-valued cells; repeatable",
        )
        parser.add_argument(
            "--save",
            default=None,
            metavar="PATH",
            help="archive the StudyResult to PATH.json + PATH.npz",
        )
        parser.add_argument(
            "--cache",
            "--resume",
            default=None,
            metavar="DIR",
            help="content-addressed cell cache: cells already in DIR are "
            "rebuilt bit-identically and only the misses run, so a "
            "repeated run submits zero work units and a widened --grid "
            "submits only the new cells (--resume is the same flag under "
            "its natural name; REPRO_CACHE env supplies a default)",
        )
        parser.add_argument(
            "--backend",
            choices=("local", "service"),
            default="local",
            help="'local' executes in this process (--jobs semantics); "
            "'service' ships the study to a broker (repro serve) and a "
            "pull-worker fleet executes it — results byte-identical "
            "either way",
        )
        parser.add_argument(
            "--broker",
            default=None,
            metavar="URL",
            help="broker URL for --backend service "
            "(e.g. http://127.0.0.1:8742; REPRO_BROKER env supplies a "
            "default)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MSPlayer reproduction (CoNEXT 2014) — simulate, measure, reproduce.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    play = sub.add_parser("play", help="run one MSPlayer session")
    play.add_argument("--profile", choices=sorted(PROFILES), default="testbed")
    play.add_argument("--seed", type=int, default=1)
    play.add_argument(
        "--scheduler", choices=("harmonic", "ewma", "ratio", "last", "window"),
        default="harmonic",
    )
    play.add_argument("--chunk", default="256KB", help="initial chunk size (e.g. 64KB, 1MB)")
    play.add_argument("--prebuffer", type=float, default=40.0, help="seconds")
    play.add_argument("--duration", type=float, default=180.0, help="video length, seconds")
    play.add_argument(
        "--stop", choices=("prebuffer", "cycles", "full"), default="prebuffer"
    )
    play.add_argument("--paths", type=int, choices=(1, 2), default=2)

    _experiment_parser(sub)

    adaptive = sub.add_parser("adaptive", help="run the DASH-extension player (§7)")
    adaptive.add_argument("--controller", choices=sorted(CONTROLLERS), default="throughput")
    adaptive.add_argument("--profile", choices=sorted(PROFILES), default="youtube")
    adaptive.add_argument("--seed", type=int, default=1)
    adaptive.add_argument("--duration", type=float, default=120.0)
    adaptive.add_argument("--itag", type=int, default=22, help="fixed controller's itag")

    sub.add_parser("list", help="list experiments and profiles")

    cache = sub.add_parser(
        "cache",
        help="maintain a study cell cache directory (ls / gc / verify)",
        description="Inspect and maintain a content-addressed study cache "
        "as written by `repro experiment <id> --cache DIR`.  DIR may be "
        "omitted when REPRO_CACHE is set.",
    )
    action = cache.add_subparsers(dest="action", required=True, metavar="ACTION")
    cache_ls = action.add_parser("ls", help="list cache entries")
    cache_ls.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full machine-readable cache manifest instead of a table",
    )
    cache_gc = action.add_parser(
        "gc",
        help="remove quarantined files, temp leftovers, and stale entries "
        "(other cache/archive versions, outdated code fingerprints)",
    )
    cache_gc.add_argument(
        "--all",
        action="store_true",
        dest="everything",
        help="drop every entry, not just stale ones",
    )
    cache_gc.add_argument(
        "--max-bytes",
        default=None,
        metavar="SIZE",
        help="after the stale sweep, evict valid entries oldest-first "
        "until the cache fits SIZE (accepts 64KB/1MB-style suffixes)",
    )
    cache_gc.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="DAYS",
        help="after the stale sweep, evict valid entries created more "
        "than DAYS days ago",
    )
    action.add_parser(
        "verify",
        help="fully load and re-key every entry; exit 1 if any is bad",
    )
    for sub_parser in (cache_ls, cache_gc, action.choices["verify"]):
        sub_parser.add_argument(
            "dir",
            nargs="?",
            default=None,
            metavar="DIR",
            help="cache directory (default: REPRO_CACHE)",
        )

    serve = sub.add_parser(
        "serve",
        help="run the study-service broker (sqlite queue + HTTP front end)",
        description="Accept study submissions over HTTP, expand them into "
        "per-cell work units in a sqlite-backed queue, and hand leases to "
        "pull workers (`repro worker URL`).  With --cache DIR the broker "
        "consults the content-addressed cell cache at submit time, so "
        "resubmitted studies enqueue zero work units.",
    )
    serve.add_argument(
        "--db",
        default="broker.sqlite3",
        metavar="PATH",
        help="sqlite queue file; restarting on the same file resumes "
        "in-flight jobs (default: %(default)s)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8742)
    serve.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="a leased cell whose worker misses heartbeats for this long "
        "is requeued (default: %(default)s)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts before a cell is quarantined as poisoned "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="broker-side study cell cache (default: REPRO_CACHE if set)",
    )
    serve.add_argument(
        "--gc",
        action="store_true",
        dest="run_gc",
        help="purge result blobs of completed studies older than "
        "--keep-days from the queue db, then exit (no server is started)",
    )
    serve.add_argument(
        "--keep-days",
        type=float,
        default=7.0,
        metavar="DAYS",
        help="with --gc: completed studies younger than this keep their "
        "result blobs (default: %(default)s)",
    )
    serve.add_argument(
        "--fastapi",
        action="store_true",
        help="serve through FastAPI/uvicorn (needs the 'serve' extra) "
        "instead of the stdlib http.server",
    )

    worker = sub.add_parser(
        "worker",
        help="run a pull worker against a broker URL",
        description="Lease cells from a broker, execute them locally, and "
        "stream results back.  Heartbeats keep the lease alive during long "
        "cells; a crashed worker's leases expire and requeue on the broker.",
    )
    worker.add_argument(
        "url",
        nargs="?",
        default=None,
        metavar="URL",
        help="broker URL (default: REPRO_BROKER)",
    )
    worker.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="execution backend for each cell, as in `repro experiment "
        "--jobs` (default: REPRO_JOBS or serial)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle sleep between lease attempts (default: %(default)s)",
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="exit after processing N cells (default: run forever)",
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="drain the queue and exit when it is empty",
    )
    worker.add_argument(
        "--id",
        default=None,
        dest="worker_id",
        metavar="NAME",
        help="worker name shown in broker logs/status "
        "(default: <hostname>-<pid>)",
    )

    add_lint_parser(sub)
    return parser


def _command_play(args: argparse.Namespace) -> int:
    scenario = Scenario(
        PROFILES[args.profile](),
        seed=args.seed,
        config=ScenarioConfig(video_duration_s=args.duration),
    )
    low = min(10.0, args.prebuffer / 4.0)
    config = PlayerConfig(
        scheduler=args.scheduler,
        base_chunk_bytes=parse_size(args.chunk),
        prebuffer_s=args.prebuffer,
        low_watermark_s=low,
        max_paths=args.paths,
    )
    outcome = MSPlayerDriver(scenario, config, stop=args.stop).run()
    print(f"profile={args.profile} seed={args.seed} scheduler={args.scheduler}")
    print(f"stop reason      : {outcome.stop_reason}")
    if outcome.startup_delay is not None:
        print(f"start-up delay   : {outcome.startup_delay:.2f} s")
    for key, value in outcome.metrics.summary().items():
        print(f"{key:24s}: {value}")
    return 0


def _split_assignment(token: str, flag: str) -> tuple[str, str]:
    if "=" not in token:
        raise ConfigError(f"{flag} expects KEY=VALUE, got {token!r}")
    key, value = token.split("=", 1)
    key = key.strip().replace("-", "_")
    if not key:
        raise ConfigError(f"{flag} expects KEY=VALUE, got {token!r}")
    return key, value


def _experiment_inputs(args: argparse.Namespace):
    """Flags + ``--set`` + ``--grid`` → (overrides, grid axes).

    Flag values and ``--set`` strings are *not* converted here — the
    schema is the single validation point (``Study`` resolves them), so
    a bad value dies with the same one-line error whichever door it
    came through.
    """
    definition = get_experiment(args.id)
    overrides: dict = {}
    for param in definition.schema:
        value = getattr(args, param.name)
        if value is None:
            if param.cli_default is not UNSET:
                overrides[param.name] = param.cli_default
        else:
            overrides[param.name] = value
    for token in args.set:
        key, value = _split_assignment(token, "--set")
        overrides[key] = value
    grid: dict[str, list[str]] = {}
    for token in args.grid:
        key, value = _split_assignment(token, "--grid")
        if key in grid:
            raise ConfigError(
                f"--grid {key} given twice; one axis per key (values are "
                "comma- or ';'-separated in a single flag)"
            )
        if not value.strip():
            raise ConfigError(f"--grid {key} needs at least one value")
        separator = ";" if ";" in value else ","
        cells = value.split(separator)
        # Empty items are a usage error, not something to silently drop:
        # `--grid seed=1,,2` asked for three cells and must not quietly
        # run two (the trailing-comma typo is the common case).
        if any(not cell.strip() for cell in cells):
            raise ConfigError(
                f"--grid {key}={value} has an empty value; expected "
                f"KEY=V1{separator}V2"
            )
        grid[key] = cells
    return overrides, grid


def _command_experiment(args: argparse.Namespace) -> int:
    try:
        # Validate the backend before anything runs so a typo'd --jobs
        # (or REPRO_JOBS) fails in milliseconds with a one-line error —
        # engine construction also resolves the ipc mode, and the --ipc
        # override must already be in force while it does.
        from .sim.execution import resolve_engine
        from .study.study import _ipc_override, _kernel_override

        overrides, grid = _experiment_inputs(args)
        if args.backend == "service":
            if args.cache is not None:
                raise ConfigError(
                    "--cache is broker-side under --backend service; start "
                    "the broker with `repro serve --cache DIR` instead"
                )
            if args.jobs is not None:
                raise ConfigError(
                    "--jobs applies to the local backend; under --backend "
                    "service each worker picks its own (`repro worker --jobs N`)"
                )
        elif args.broker is not None:
            raise ConfigError("--broker requires --backend service")
        with _ipc_override(args.ipc), _kernel_override(args.kernel):
            if args.backend == "service":
                from .serve.engine import ServiceEngine

                engine = ServiceEngine(args.broker)
            else:
                engine = resolve_engine(args.jobs)
            study = Study(args.id, **overrides)
            if grid:
                study = study.grid(**grid)
            result = study.run(engine=engine, cache=args.cache)
        print(result.rendered)
        if result.cache_info is not None:
            info = result.cache_info
            print(
                f"cache: {info.hits} hit(s), {info.misses} miss(es), "
                f"{info.submitted_units} work units submitted",
                file=sys.stderr,
            )
        if args.save:
            json_path, npz_path = result.save(args.save)
            print(
                f"archived study result: {json_path} + {npz_path}", file=sys.stderr
            )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _command_adaptive(args: argparse.Namespace) -> int:
    scenario = Scenario(
        PROFILES[args.profile](),
        seed=args.seed,
        config=ScenarioConfig(video_duration_s=args.duration),
    )
    controller = CONTROLLERS[args.controller](args.itag)
    config = PlayerConfig(prebuffer_s=12.0, low_watermark_s=6.0, rebuffer_fetch_s=8.0)
    outcome = AdaptiveSimDriver(scenario, controller, config, stop="full").run()
    print(f"controller       : {args.controller}")
    print(f"outcome          : {outcome.stop_reason}")
    print(f"mean bitrate     : {outcome.mean_bitrate_bps / 1e6:.2f} Mb/s")
    print(f"bitrate switches : {outcome.switches}")
    print(f"stall time       : {outcome.metrics.total_stall_time:.2f} s")
    print(f"itag history     : {outcome.itag_history}")
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for experiment_id in experiment_ids():
        definition = get_experiment(experiment_id)
        print(f"  {experiment_id:8s} [{definition.kind}] {definition.title}")
        for param in definition.schema:
            print(f"           {param.describe()}")
    print("profiles:")
    for key in sorted(PROFILES):
        print(f"  {key}")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    import json as json_module

    from .study.cache import resolve_cache

    try:
        cache = resolve_cache(args.dir)
        if cache is None:
            raise ConfigError(
                "no cache directory: pass DIR or set REPRO_CACHE"
            )
        if args.action == "ls":
            if args.as_json:
                print(json_module.dumps(cache.manifest(), indent=2, sort_keys=True))
                return 0
            entries = cache.entries()
            if not entries:
                print(f"cache {cache.root}: empty")
                return 0
            print(f"cache {cache.root}: {len(entries)} entr" + (
                "y" if len(entries) == 1 else "ies"
            ))
            for entry in entries:
                experiment = entry.meta.get("experiment", "?")
                state = "ok" if entry.complete() else "incomplete"
                if "error" in entry.meta and "format" not in entry.meta:
                    state = "unreadable meta"
                print(
                    f"  {entry.key}  {experiment:8s} "
                    f"{entry.size_bytes():>10d} B  {state}"
                )
            return 0
        if args.action == "gc":
            from .units import parse_size

            max_bytes = (
                parse_size(args.max_bytes) if args.max_bytes is not None else None
            )
            if args.max_age is not None and args.max_age < 0:
                raise ConfigError("--max-age must be >= 0 days")
            removed, freed = cache.gc(
                everything=args.everything,
                max_bytes=max_bytes,
                max_age_days=args.max_age,
            )
            print(f"cache gc: removed {removed} entr" + (
                "y" if removed == 1 else "ies"
            ) + f", freed {freed} bytes")
            return 0
        ok, bad = cache.verify()
        print(f"cache verify: {len(ok)} ok, {len(bad)} bad")
        for key, reason in bad:
            print(f"  bad {key}: {reason}", file=sys.stderr)
        return 1 if bad else 0
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _command_serve(args: argparse.Namespace) -> int:
    from .serve.broker import Broker
    from .study.cache import resolve_cache

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    try:
        broker = Broker(
            args.db,
            cache=resolve_cache(args.cache),
            lease_timeout=args.lease_timeout,
            max_attempts=args.max_attempts,
            log=log,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.run_gc:
        try:
            stats = broker.gc(keep_days=args.keep_days)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            broker.close()
        print(
            f"serve gc: purged {stats['cells']} cell blob(s) across "
            f"{stats['studies']} completed study(ies), freed {stats['bytes']} bytes"
        )
        return 0
    try:
        log(f"[serve] broker db {args.db}; listening on {args.host}:{args.port}")
        if args.fastapi:
            from .serve.app import serve_uvicorn

            serve_uvicorn(broker, args.host, args.port)
        else:
            from .serve.httpd import run_server

            run_server(broker, args.host, args.port)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        broker.close()
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .serve.engine import resolve_broker
    from .serve.worker import run_worker

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    try:
        client = resolve_broker(args.url)
        processed = run_worker(
            client,
            jobs=args.jobs,
            poll=args.poll,
            max_cells=args.max_cells,
            once=args.once,
            worker_id=args.worker_id,
            log=log,
        )
        log(f"[worker] processed {processed} cell(s)")
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    try:
        return command_lint(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


_HANDLERS = {
    "play": _command_play,
    "experiment": _command_experiment,
    "adaptive": _command_adaptive,
    "list": _command_list,
    "cache": _command_cache,
    "serve": _command_serve,
    "worker": _command_worker,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Parse and dispatch; returns an exit code, never raises SystemExit.

    argparse signals rejection (unknown id, a knob aimed at the wrong
    experiment, bad int) by raising ``SystemExit(2)`` after printing to
    stderr; converting that to a return keeps in-process callers —
    tests, notebooks — on the same contract as the shell.
    """
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
