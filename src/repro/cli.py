"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``play`` — run one MSPlayer session on a simulated profile and print
  its QoE metrics;
* ``experiment`` — regenerate a paper figure/table by id (fig1…fig5,
  table1, x1…x3, x6) and print the panel;
* ``adaptive`` — run the DASH-extension player with a chosen controller;
* ``list`` — show available experiments and profiles.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Sequence

from .analysis import experiments as exp
from .core.config import PlayerConfig
from .errors import ConfigError
from .ext.adaptive import (
    AdaptiveSimDriver,
    BufferBasedController,
    FixedBitrateController,
    ThroughputController,
)
from .sim.driver import MSPlayerDriver
from .sim.profiles import PROFILES
from .sim.scenario import Scenario, ScenarioConfig
from .units import parse_size

#: experiment id -> (callable, kind).  ``single`` experiments are
#: deterministic one-pass functions; ``trials`` experiments take the
#: --trials/--jobs campaign knobs; ``population`` experiments take
#: --replicates/--clients/--jobs (whole populations as work units).
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig1": (exp.fig1_bootstrap_timing, "single"),
    "fig2": (exp.fig2_prebuffer_testbed, "trials"),
    "fig3": (exp.fig3_scheduler_sweep, "trials"),
    "fig4": (exp.fig4_prebuffer_youtube, "trials"),
    "fig5": (exp.fig5_rebuffer, "trials"),
    "table1": (exp.table1_traffic_fraction, "trials"),
    "x1": (exp.x1_robustness, "trials"),
    "x2": (exp.x2_source_diversity, "trials"),
    "x3": (exp.x3_estimators, "single"),
    "x6": (exp.x6_population, "population"),
}

CONTROLLERS = {
    "fixed": lambda itag: FixedBitrateController(itag),
    "buffer": lambda itag: BufferBasedController(),
    "throughput": lambda itag: ThroughputController(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MSPlayer reproduction (CoNEXT 2014) — simulate, measure, reproduce.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    play = sub.add_parser("play", help="run one MSPlayer session")
    play.add_argument("--profile", choices=sorted(PROFILES), default="testbed")
    play.add_argument("--seed", type=int, default=1)
    play.add_argument(
        "--scheduler", choices=("harmonic", "ewma", "ratio", "last", "window"),
        default="harmonic",
    )
    play.add_argument("--chunk", default="256KB", help="initial chunk size (e.g. 64KB, 1MB)")
    play.add_argument("--prebuffer", type=float, default=40.0, help="seconds")
    play.add_argument("--duration", type=float, default=180.0, help="video length, seconds")
    play.add_argument(
        "--stop", choices=("prebuffer", "cycles", "full"), default="prebuffer"
    )
    play.add_argument("--paths", type=int, choices=(1, 2), default=2)

    experiment = sub.add_parser("experiment", help="regenerate a paper figure/table")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    # None (not 10) so misuse on non-trials experiments is detectable;
    # the trials branch resolves None to the historical default of 10.
    experiment.add_argument("--trials", type=int, default=None)
    experiment.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="trial execution backend for the figure's campaign: an integer "
        "worker count, 'auto' (one per CPU), or 'serial' (default; "
        "REPRO_JOBS env overrides).  A whole-figure sweep is submitted "
        "as one campaign — every configuration's trials interleaved "
        "into a single pool submission, no per-configuration barrier",
    )
    experiment.add_argument(
        "--ipc",
        choices=("pickle", "shm"),
        default=None,
        help="result collection for process backends: 'shm' (default) has "
        "workers write dense outcome columns into a shared-memory arena, "
        "'pickle' sends full outcome objects through the pool pipe.  "
        "Byte-identical results either way; sets REPRO_IPC for the run",
    )
    experiment.add_argument(
        "--replicates",
        type=int,
        default=None,
        metavar="R",
        help="population experiments (x6) only: independently seeded "
        "populations per policy; each whole population is one parallel "
        "work unit",
    )
    experiment.add_argument(
        "--clients",
        type=int,
        default=None,
        metavar="C",
        help="population experiments (x6) only: simultaneous MSPlayer "
        "clients per population (a flash crowd sharing one CDN deployment)",
    )

    adaptive = sub.add_parser("adaptive", help="run the DASH-extension player (§7)")
    adaptive.add_argument("--controller", choices=sorted(CONTROLLERS), default="throughput")
    adaptive.add_argument("--profile", choices=sorted(PROFILES), default="youtube")
    adaptive.add_argument("--seed", type=int, default=1)
    adaptive.add_argument("--duration", type=float, default=120.0)
    adaptive.add_argument("--itag", type=int, default=22, help="fixed controller's itag")

    sub.add_parser("list", help="list experiments and profiles")
    return parser


def _command_play(args: argparse.Namespace) -> int:
    scenario = Scenario(
        PROFILES[args.profile](),
        seed=args.seed,
        config=ScenarioConfig(video_duration_s=args.duration),
    )
    low = min(10.0, args.prebuffer / 4.0)
    config = PlayerConfig(
        scheduler=args.scheduler,
        base_chunk_bytes=parse_size(args.chunk),
        prebuffer_s=args.prebuffer,
        low_watermark_s=low,
        max_paths=args.paths,
    )
    outcome = MSPlayerDriver(scenario, config, stop=args.stop).run()
    print(f"profile={args.profile} seed={args.seed} scheduler={args.scheduler}")
    print(f"stop reason      : {outcome.stop_reason}")
    if outcome.startup_delay is not None:
        print(f"start-up delay   : {outcome.startup_delay:.2f} s")
    for key, value in outcome.metrics.summary().items():
        print(f"{key:24s}: {value}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    function, kind = EXPERIMENTS[args.id]
    if kind != "population" and (
        args.replicates is not None or args.clients is not None
    ):
        print(
            f"error: --replicates/--clients only apply to population "
            f"experiments, not {args.id!r}",
            file=sys.stderr,
        )
        return 2
    if kind != "trials" and args.trials is not None:
        print(
            f"error: --trials does not apply to {args.id!r}"
            + (" (use --replicates/--clients)" if kind == "population" else ""),
            file=sys.stderr,
        )
        return 2
    if (args.replicates is not None and args.replicates < 1) or (
        args.clients is not None and args.clients < 1
    ):
        print("error: --replicates and --clients must be >= 1", file=sys.stderr)
        return 2
    # The experiment functions take a jobs knob but construct their own
    # engines, so the collection mode travels via the environment —
    # --ipc overrides REPRO_IPC for this invocation only (restored on
    # exit so in-process callers of main() don't inherit it).
    previous_ipc = os.environ.get("REPRO_IPC")
    if args.ipc is not None:
        os.environ["REPRO_IPC"] = args.ipc
    try:
        # Validate before the campaign starts so a typo'd --jobs (or
        # REPRO_JOBS — resolve_engine(None) consults it) fails in
        # milliseconds with a one-line error, not a traceback.  Validated
        # for every experiment id so the flag behaves consistently even on
        # the single-pass experiments that have nothing to fan out.
        try:
            from .sim.execution import resolve_engine

            resolve_engine(args.jobs)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Trial-based experiments all accept the execution-backend knob;
        # fig1/x3 are deterministic single passes with nothing to fan out.
        if kind == "trials":
            trials = 10 if args.trials is None else args.trials
            result = function(trials=trials, jobs=args.jobs)
        elif kind == "population":
            # None falls through to the experiment function's defaults.
            kwargs = {}
            if args.replicates is not None:
                kwargs["replicates"] = args.replicates
            if args.clients is not None:
                kwargs["clients"] = args.clients
            result = function(jobs=args.jobs, **kwargs)
        else:
            result = function()
    finally:
        if args.ipc is not None:
            if previous_ipc is None:
                os.environ.pop("REPRO_IPC", None)
            else:
                os.environ["REPRO_IPC"] = previous_ipc
    print(result.rendered)
    return 0


def _command_adaptive(args: argparse.Namespace) -> int:
    scenario = Scenario(
        PROFILES[args.profile](),
        seed=args.seed,
        config=ScenarioConfig(video_duration_s=args.duration),
    )
    controller = CONTROLLERS[args.controller](args.itag)
    config = PlayerConfig(prebuffer_s=12.0, low_watermark_s=6.0, rebuffer_fetch_s=8.0)
    outcome = AdaptiveSimDriver(scenario, controller, config, stop="full").run()
    print(f"controller       : {args.controller}")
    print(f"outcome          : {outcome.stop_reason}")
    print(f"mean bitrate     : {outcome.mean_bitrate_bps / 1e6:.2f} Mb/s")
    print(f"bitrate switches : {outcome.switches}")
    print(f"stall time       : {outcome.metrics.total_stall_time:.2f} s")
    print(f"itag history     : {outcome.itag_history}")
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    print("profiles:")
    for key in sorted(PROFILES):
        print(f"  {key}")
    return 0


_HANDLERS = {
    "play": _command_play,
    "experiment": _command_experiment,
    "adaptive": _command_adaptive,
    "list": _command_list,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
