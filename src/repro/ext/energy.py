"""Interface energy accounting (§7 / Huang et al. [17]).

The paper's future-work list opens with energy: streaming over two
radios finishes faster but keeps two radios powered.  This module
quantifies that trade-off from session metrics, using the standard
three-component radio model from the LTE measurement literature [17]:

* **active power** while the radio is transferring (W);
* **tail energy**: after each transfer burst the radio lingers in a
  high-power state for a platform-specific tail time — the dominant
  LTE cost for chatty request patterns (many small chunks = many
  tails, another reason large chunks win in Fig. 3/5);
* **per-byte marginal energy** (J/MB) for the data itself.

Defaults approximate published 2013-era numbers: LTE ≈ 1.2 W active
with an 11 s tail, WiFi ≈ 0.7 W active with a 0.24 s tail.

The model is deliberately an *estimator over metrics* (bytes, active
seconds, request counts per path) rather than a simulation component,
so it applies identically to simulated and live sessions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import QoEMetrics
from ..errors import ConfigError


@dataclass(frozen=True)
class InterfaceEnergyProfile:
    """Radio energy constants for one interface technology."""

    name: str
    active_power_w: float
    tail_power_w: float
    tail_time_s: float
    joules_per_mb: float

    def __post_init__(self) -> None:
        for value in (
            self.active_power_w,
            self.tail_power_w,
            self.tail_time_s,
            self.joules_per_mb,
        ):
            if value < 0:
                raise ConfigError(f"negative energy constant in {self.name}")


#: WiFi 802.11n-era constants (Huang et al. [17], rounded).
WIFI_ENERGY = InterfaceEnergyProfile(
    name="wifi", active_power_w=0.7, tail_power_w=0.25, tail_time_s=0.24, joules_per_mb=0.4
)

#: LTE category-3 dongle constants: the famous long tail.
LTE_ENERGY = InterfaceEnergyProfile(
    name="lte", active_power_w=1.2, tail_power_w=1.0, tail_time_s=11.0, joules_per_mb=1.0
)


@dataclass(frozen=True)
class EnergyReport:
    """Joules spent by one session, per path and total."""

    joules_by_path: dict[int, float]
    breakdown_by_path: dict[int, dict[str, float]]

    @property
    def total_joules(self) -> float:
        return sum(self.joules_by_path.values())

    def joules_per_megabyte(self, metrics: QoEMetrics) -> float:
        """Energy efficiency of the session (J per MB of video)."""
        total_bytes = sum(metrics.prebuffer_bytes_by_path.values()) + sum(
            metrics.rebuffer_bytes_by_path.values()
        )
        if total_bytes == 0:
            raise ConfigError("session transferred no bytes")
        return self.total_joules / (total_bytes / (1024 * 1024))


class EnergyModel:
    """Estimate session energy from QoE metrics.

    ``profiles`` maps path id → interface energy profile; the default
    matches the library convention (path 0 = WiFi, path 1 = LTE).

    Tail accounting: every ON/OFF-style gap after a request burst costs
    one tail.  From metrics alone we cannot see individual gaps, so the
    model charges tails per *re-buffering cycle* plus one for the
    pre-buffering phase per path — a lower bound that matches the
    player's periodic downloading pattern (§2: one OFF period per
    cycle), and exact when chunks within a cycle are back-to-back.
    """

    def __init__(self, profiles: dict[int, InterfaceEnergyProfile] | None = None) -> None:
        self.profiles = profiles or {0: WIFI_ENERGY, 1: LTE_ENERGY}

    def report(self, metrics: QoEMetrics) -> EnergyReport:
        joules: dict[int, float] = {}
        breakdown: dict[int, dict[str, float]] = {}
        cycles = max(len(metrics.completed_cycle_durations()), 0)
        for path_id, profile in self.profiles.items():
            total_bytes = metrics.prebuffer_bytes_by_path.get(
                path_id, 0
            ) + metrics.rebuffer_bytes_by_path.get(path_id, 0)
            if total_bytes == 0 and path_id not in metrics.active_time_by_path:
                continue
            active_s = metrics.active_time_by_path.get(path_id, 0.0)
            active_j = profile.active_power_w * active_s
            data_j = profile.joules_per_mb * total_bytes / (1024 * 1024)
            bursts = (1 if total_bytes else 0) + cycles
            tail_j = profile.tail_power_w * profile.tail_time_s * bursts
            breakdown[path_id] = {
                "active": active_j,
                "data": data_j,
                "tail": tail_j,
                "active_seconds": active_s,
                "bursts": float(bursts),
            }
            joules[path_id] = active_j + data_j + tail_j
        return EnergyReport(joules_by_path=joules, breakdown_by_path=breakdown)
