"""DASH-style rate adaptation on top of multi-source multi-path (§7).

    "As dynamic adaptive streaming over HTTP (DASH) is now widely used,
    exploring how rate adaption can be integrated with MSPlayer [is]
    also our future work."

This module is that exploration: a segment-based adaptive player that
keeps MSPlayer's transport (two paths, two sources, range requests,
just-in-time buffering) and adds per-segment bitrate selection.

Model:

* the video exists in every itag of its ladder (the CDN already serves
  all of them); a *segment* is ``segment_s`` seconds of one itag —
  a byte range of that itag's CBR stream, so the unmodified
  :class:`~repro.cdn.videoserver.VideoServerApp` serves it;
* segments are fetched in playback order, at most one in flight per
  path; a completed segment adds ``segment_s`` seconds to the buffer
  once all earlier segments have arrived;
* a pluggable :class:`BitrateController` picks each segment's itag.

Controllers provided:

* :class:`FixedBitrateController` — the paper's constant-bitrate mode;
* :class:`BufferBasedController` — BBA-style: map the buffer level
  linearly onto the ladder between a reservoir and a cushion;
* :class:`ThroughputController` — FESTIVE-style: highest bitrate under
  a safety fraction of the harmonic-mean aggregate throughput [19].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cdn.deployment import PROXY_DNS_NAME
from ..cdn.jsonapi import VideoInfo, parse_video_info
from ..cdn.signature import decipher
from ..cdn.videos import FORMATS
from ..cdn.webproxy import parse_decoder_page
from ..core.buffer import BufferPhase, PlayoutBuffer
from ..core.config import PlayerConfig
from ..core.estimators import HarmonicMeanEstimator
from ..core.metrics import QoEMetrics
from ..errors import CDNError, ConfigError, HTTPError, NetworkError
from ..http.client import SimHTTPClient
from ..http.messages import Request
from ..http.ranges import ByteRange
from ..sim.scenario import Scenario


# ---------------------------------------------------------------------------
# Controllers
# ---------------------------------------------------------------------------


class BitrateController:
    """Interface: choose the itag for the next segment."""

    name = "abstract"

    def select(
        self,
        ladder: list[int],
        buffer_level_s: float,
        throughput_estimate: float | None,
        current_itag: int,
    ) -> int:
        """Return the itag (from ``ladder``, sorted ascending by rate)."""
        raise NotImplementedError


class FixedBitrateController(BitrateController):
    """The paper's mode: one constant bitrate, no adaptation (§2)."""

    name = "fixed"

    def __init__(self, itag: int) -> None:
        self.itag = itag

    def select(self, ladder, buffer_level_s, throughput_estimate, current_itag) -> int:
        if self.itag not in ladder:
            raise ConfigError(f"fixed itag {self.itag} not in ladder {ladder}")
        return self.itag


class BufferBasedController(BitrateController):
    """BBA-0-style: bitrate as a function of buffer occupancy.

    Below ``reservoir_s`` → lowest rate; above ``cushion_s`` → highest;
    linear ladder mapping in between.  Uses no throughput estimate at
    all, which makes it immune to estimate noise but slow off the mark.
    """

    name = "buffer"

    def __init__(self, reservoir_s: float = 8.0, cushion_s: float = 25.0) -> None:
        if not 0 < reservoir_s < cushion_s:
            raise ConfigError("need 0 < reservoir < cushion")
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def select(self, ladder, buffer_level_s, throughput_estimate, current_itag) -> int:
        if buffer_level_s <= self.reservoir_s:
            return ladder[0]
        if buffer_level_s >= self.cushion_s:
            return ladder[-1]
        fraction = (buffer_level_s - self.reservoir_s) / (self.cushion_s - self.reservoir_s)
        index = min(int(fraction * len(ladder)), len(ladder) - 1)
        return ladder[index]


class ThroughputController(BitrateController):
    """Highest bitrate sustainable under a safety-factored estimate.

    The estimate is the harmonic mean of recent segment throughputs —
    the same outlier-resistant statistic MSPlayer's scheduler uses
    (§3.3, [19]).  Falls back to the lowest rate until an estimate
    exists.
    """

    name = "throughput"

    def __init__(self, safety: float = 0.7) -> None:
        if not 0.0 < safety <= 1.0:
            raise ConfigError(f"safety must be in (0, 1], got {safety}")
        self.safety = safety

    def select(self, ladder, buffer_level_s, throughput_estimate, current_itag) -> int:
        if throughput_estimate is None:
            return ladder[0]
        budget = self.safety * throughput_estimate
        viable = [
            itag
            for itag in ladder
            if FORMATS[itag].total_bitrate_bytes_per_s <= budget
        ]
        return viable[-1] if viable else ladder[0]


# ---------------------------------------------------------------------------
# Outcome record
# ---------------------------------------------------------------------------


@dataclass
class AdaptiveOutcome:
    metrics: QoEMetrics
    stop_reason: str
    finished_at: float
    #: itag fetched for each segment index, in order.
    itag_history: list[int] = field(default_factory=list)

    @property
    def switches(self) -> int:
        return sum(1 for a, b in zip(self.itag_history, self.itag_history[1:], strict=False) if a != b)

    @property
    def mean_bitrate_bps(self) -> float:
        if not self.itag_history:
            return 0.0
        rates = [FORMATS[i].total_bitrate_bytes_per_s * 8 for i in self.itag_history]
        return sum(rates) / len(rates)

    def time_at_itag(self, itag: int) -> float:
        """Fraction of segments fetched at ``itag``."""
        if not self.itag_history:
            return 0.0
        return self.itag_history.count(itag) / len(self.itag_history)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass
class _AdaptivePath:
    client: SimHTTPClient
    info: VideoInfo | None = None
    signatures: dict[int, str] = field(default_factory=dict)
    busy: bool = False
    server: str = ""


class AdaptiveSimDriver:
    """Segment-based adaptive player over the simulated substrate."""

    def __init__(
        self,
        scenario: Scenario,
        controller: BitrateController,
        config: PlayerConfig | None = None,
        segment_s: float = 4.0,
        stop: str = "full",
        max_sim_time: float = 1800.0,
    ) -> None:
        if segment_s <= 0:
            raise ConfigError("segment_s must be positive")
        if stop not in ("prebuffer", "full"):
            raise ValueError(f"unknown stop condition {stop!r}")
        self.scenario = scenario
        self.controller = controller
        self.config = config or PlayerConfig()
        self.segment_s = segment_s
        self.stop = stop
        self.max_sim_time = max_sim_time
        self.metrics = QoEMetrics()
        self.itag_history: list[int] = []
        env = scenario.env
        self._finish = env.event()
        self._stop_reason = "unknown"
        self._paths = {
            i: _AdaptivePath(client=SimHTTPClient(env, scenario.network, scenario.iface_for(i)))
            for i in range(self.config.max_paths)
        }
        self._ladder = sorted(
            scenario.video.itags, key=lambda i: FORMATS[i].total_bitrate_bytes_per_s
        )
        duration = scenario.video.duration_s
        self._segment_count = max(int(duration // segment_s) + (duration % segment_s > 0), 1)
        self.buffer = PlayoutBuffer(self.config, duration)
        self._next_to_schedule = 0
        self._arrived: set[int] = set()
        self._playable_frontier = 0  # segments contiguously received
        # One estimator per path; the controller sees their *sum* — a
        # multipath player's sustainable rate is the aggregate pipe
        # (segments ride one path each, but consecutive segments ride
        # both paths concurrently).
        self._estimators = {i: HarmonicMeanEstimator() for i in self._paths}
        self._current_itag = self._ladder[0]
        self._playback_announced = False

    # -- public -----------------------------------------------------------------

    def run(self) -> AdaptiveOutcome:
        self.launch()
        self.scenario.env.run(until=self._finish)
        return self.collect()

    def launch(self) -> None:
        """Start the session without running the event loop.

        The same split :class:`~repro.sim.driver.MSPlayerDriver` offers:
        shared-environment populations launch many drivers, then run
        the environment until every ``finished`` event has fired.
        """
        env = self.scenario.env
        self.metrics.session_started_at = env.now
        for path_id in self._paths:
            env.process(self._path_loop(path_id))
        env.process(self._ticker())
        env.process(self._watchdog())

    @property
    def finished(self):
        """Event fired when the driver's stop condition is met."""
        return self._finish

    def collect(self) -> AdaptiveOutcome:
        return AdaptiveOutcome(
            metrics=self.metrics,
            stop_reason=self._stop_reason,
            finished_at=self.scenario.env.now,
            itag_history=list(self.itag_history),
        )

    # -- per-path fetch loop --------------------------------------------------------

    def _path_loop(self, path_id: int):
        env = self.scenario.env
        try:
            yield from self._bootstrap(path_id)
        except (NetworkError, CDNError, HTTPError):
            # Single-shot bootstrap per path; a dead path just idles
            # (robust failover is exercised by the core player).
            return
        while not self._finish.triggered and not self._download_complete():
            if not self.buffer.fetch_on or self._next_to_schedule >= self._segment_count:
                yield env.pooled_timeout(self.config.tick_s)
                continue
            index = self._next_to_schedule
            self._next_to_schedule += 1
            itag = self._choose_itag()
            try:
                yield from self._fetch_segment(path_id, index, itag)
            except (NetworkError, CDNError, HTTPError):
                # Requeue the segment for the other path and retire.
                self._next_to_schedule = min(self._next_to_schedule, index)
                return

    def _aggregate_estimate(self) -> float | None:
        estimates = [
            e.estimate for e in self._estimators.values() if e.estimate is not None
        ]
        return sum(estimates) if estimates else None

    def _choose_itag(self) -> int:
        itag = self.controller.select(
            self._ladder,
            self.buffer.level_s,
            self._aggregate_estimate(),
            self._current_itag,
        )
        self._current_itag = itag
        return itag

    # -- IO ------------------------------------------------------------------------

    def _bootstrap(self, path_id: int):
        env = self.scenario.env
        path = self._paths[path_id]
        network_id = self.scenario.iface_for(path_id).network_id
        addresses = yield env.process(
            self.scenario.resolver.resolve(PROXY_DNS_NAME, network_id)
        )
        proxy = addresses[0]
        response, _ = yield env.process(
            path.client.get(
                proxy,
                Request.get(f"/videoinfo?v={self.scenario.video.video_id}", host=proxy),
                expect=(200,),
            )
        )
        info = parse_video_info(response.parsed_json())
        path.info = info
        decoder_program = None
        for itag in self._ladder:
            stream = info.stream(itag)
            if stream.needs_decipher:
                if decoder_program is None:
                    page, _ = yield env.process(
                        path.client.get(
                            proxy, Request.get(info.decoder_path, host=proxy), expect=(200,)
                        )
                    )
                    decoder_program = parse_decoder_page(page.body)
                path.signatures[itag] = decipher(
                    stream.enciphered_signature, decoder_program
                )
            else:
                path.signatures[itag] = stream.signature
        path.server = info.stream(self._ladder[0]).hosts[0]
        yield env.process(path.client.connect(path.server))

    def _segment_range(self, info: VideoInfo, index: int, itag: int) -> ByteRange:
        size = info.stream(itag).size_bytes
        rate = FORMATS[itag].total_bitrate_bytes_per_s
        start = int(index * self.segment_s * rate)
        stop = min(int((index + 1) * self.segment_s * rate), size)
        return ByteRange(min(start, size - 1), max(stop, min(start, size - 1) + 1))

    def _fetch_segment(self, path_id: int, index: int, itag: int):
        env = self.scenario.env
        path = self._paths[path_id]
        assert path.info is not None
        byte_range = self._segment_range(path.info, index, itag)
        target = path.info.playback_target(itag, path.signatures[itag])
        request = Request.get(target, host=path.server, byte_range=byte_range)
        _response, timing = yield env.process(
            path.client.get(path.server, request, expect=(206,))
        )
        self._estimators[path_id].update(byte_range.length / timing.duration)
        prebuffering = self.buffer.phase is BufferPhase.PREBUFFERING
        self.metrics.record_chunk(
            path_id, byte_range.length, prebuffering, duration=timing.duration
        )
        self._on_segment_arrived(index, itag, env.now)

    # -- reassembly + buffer ----------------------------------------------------------

    def _on_segment_arrived(self, index: int, itag: int, now: float) -> None:
        self._arrived.add(index)
        while len(self.itag_history) <= index:
            self.itag_history.append(itag)
        self.itag_history[index] = itag
        advanced = 0
        while self._playable_frontier in self._arrived:
            self._playable_frontier += 1
            advanced += 1
        if advanced:
            previous = self.buffer.phase
            seconds = min(
                advanced * self.segment_s,
                self.buffer.video_duration_s
                - (self.buffer.playhead_s + self.buffer.level_s),
            )
            self.buffer.on_data(max(seconds, 0.0), now)
            self._note_transitions(previous, now)
        if self._download_complete():
            self.buffer.mark_download_complete(now)

    def _download_complete(self) -> bool:
        return self._playable_frontier >= self._segment_count

    # -- playback clock ------------------------------------------------------------------

    def _ticker(self):
        env = self.scenario.env
        tick = self.config.tick_s
        while not self._finish.triggered:
            yield env.pooled_timeout(tick)
            previous = self.buffer.phase
            self.buffer.on_tick(tick, env.now)
            self._note_transitions(previous, env.now)
            if self.buffer.playback_finished:
                if self.metrics.playback_finished_at is None:
                    self.metrics.playback_finished_at = env.now
                self._finish_once("playback-finished")

    def _note_transitions(self, previous: BufferPhase, now: float) -> None:
        current = self.buffer.phase
        if current is previous:
            return
        if previous is BufferPhase.PREBUFFERING and not self._playback_announced:
            self._playback_announced = True
            self.metrics.prebuffer_completed_at = now
            self.metrics.playback_started_at = now
            if self.stop == "prebuffer":
                self._finish_once("prebuffer-complete")
        if current is BufferPhase.REBUFFERING and previous is BufferPhase.STEADY:
            self.metrics.begin_rebuffer_cycle(now, self.buffer.level_s)
        if previous in (BufferPhase.REBUFFERING, BufferPhase.STALLED) and current in (
            BufferPhase.STEADY,
            BufferPhase.FINISHED,
        ):
            self.metrics.end_rebuffer_cycle(now)
        if current is BufferPhase.STALLED:
            self.metrics.begin_stall(now)
        if previous is BufferPhase.STALLED:
            self.metrics.end_stall(now)

    def _watchdog(self):
        yield self.scenario.env.pooled_timeout(self.max_sim_time)
        self._finish_once("timeout")

    def _finish_once(self, reason: str) -> None:
        if not self._finish.triggered:
            self._stop_reason = reason
            self._finish.succeed(reason)
