"""Population campaigns: whole multi-client populations as work units.

The paper's §2 source-diversity argument is operationally about
*populations* — many MSPlayer clients arriving together and stressing
the CDN's server selection.  One such population is a single
:class:`~repro.ext.multi_client.MultiClientExperiment` run: every
client shares one :class:`~repro.net.env.Environment`, so the clients
*within* a population cannot be split across processes without a
cross-environment clock sync (see DESIGN.md's conservative-lookahead
notes).  But a population-level study needs *seed replicates* — the
same policy over many independently seeded populations — and replicates
are embarrassingly parallel for exactly the reason trials are: each
population builds its whole world from its own derived seed.

This module makes a population a campaign work unit:

* :class:`PopulationSpec` — a picklable ``(policy, replicate, seed,
  client_count, profile)`` description that runs one whole population
  per unit on the existing serial/process engines
  (:class:`~repro.sim.execution.WorkSpec` protocol);
* dense per-population scalars (:data:`POPULATION_COLUMNS`: mean/p95
  start-up, load imbalance, total server bytes, completed sessions)
  are written through the shared-memory arena by the workers, one row
  per population, computed by :func:`population_dense_row` on both the
  worker and serial paths so the bits agree;
* the ragged per-client remainder — every client's
  :class:`~repro.sim.shm.SideRecord` plus the population's
  ``server_bytes`` — rides the pool pipe as a
  :class:`PopulationSideRecord`, whose :meth:`~PopulationSideRecord.
  rebuild` inverts it into the exact
  :class:`~repro.ext.multi_client.MultiClientResult`;
* :class:`PopulationCampaign` demultiplexes per policy into columnar
  :class:`PopulationBatch`es (CSR per-client start-up delays next to
  the dense replicate columns), wrapped in lazy
  :class:`PopulationResult`s.

Determinism bar, same as every other campaign: serial /
process-pickle / process-shm produce bit-identical batches for a fixed
root seed (``tests/test_ext_population.py``,
``tests/test_determinism_sweeps.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from collections.abc import Callable, Sequence
from typing import ClassVar, NamedTuple

import numpy as np

from ..core.config import PlayerConfig
from ..errors import ConfigError
from ..sim.campaign import Campaign, dense_field_mismatches
from ..sim.profiles import NetworkProfile
from ..sim.shm import ColumnLayout, OutcomeArena, encode_side, rebuild_outcome
from .multi_client import MultiClientExperiment, MultiClientResult

__all__ = [
    "POPULATION_COLUMNS",
    "PopulationBatch",
    "PopulationCampaign",
    "PopulationResult",
    "PopulationSideRecord",
    "PopulationSpec",
    "population_dense_row",
]

#: The population arena layout: one row of per-population aggregates
#: per replicate.  Float columns are NaN when no client ever started
#: playback; ``completed`` counts clients with a defined start-up.
POPULATION_COLUMNS: ColumnLayout = (
    ("mean_startup", np.float64),
    ("p95_startup", np.float64),
    ("load_imbalance", np.float64),
    ("total_server_bytes", np.int64),
    ("completed", np.int64),
    ("total_stall", np.float64),
    ("session_time", np.float64),
    ("total_failovers", np.int64),
    ("sessions", np.int64),
)


def _session_seconds(outcome) -> float:
    """One client's session wall time for the rebuffer-ratio denominator.

    Playback end when playback finished; otherwise the collection
    timestamp (in shared worlds that is the population's end time — the
    honest upper bound for a session that never completed).
    """
    ended = outcome.metrics.playback_finished_at
    if ended is None:
        ended = outcome.finished_at
    return ended - outcome.metrics.session_started_at


def population_dense_row(result: MultiClientResult) -> dict[str, float]:
    """One population's dense scalars, as stored in the arena row.

    The single source of the aggregate arithmetic: the shm path runs it
    worker-side into the arena, the serial/pickle paths run it
    parent-side in :meth:`PopulationBatch.from_results` — same numpy
    operations, so the two collection paths agree bit for bit.
    """
    delays = np.asarray(result.startup_delays(), dtype=np.float64)
    if delays.size:
        mean = float(delays.mean())
        p95 = float(np.quantile(delays, 0.95))
    else:
        mean = p95 = float("nan")
    return {
        "mean_startup": mean,
        "p95_startup": p95,
        "load_imbalance": result.load_imbalance,
        "total_server_bytes": sum(result.server_bytes.values()),
        "completed": delays.size,
        "total_stall": float(
            sum(o.metrics.total_stall_time for o in result.outcomes)
        ),
        "session_time": float(sum(_session_seconds(o) for o in result.outcomes)),
        "total_failovers": sum(o.metrics.failovers for o in result.outcomes),
        "sessions": len(result.outcomes),
    }


class PopulationSideRecord(NamedTuple):
    """One population's ragged remainder, flattened to primitives.

    Everything the dense row does not carry: the per-server byte map
    and every client's outcome — each client as the same flat
    :class:`~repro.sim.shm.SideRecord` the per-trial path ships, plus
    the two scalars (``finished_at``, ``failovers``) that per-trial
    collection stores densely but have no per-client arena row here.
    """

    policy: str
    replicate: int
    server_bytes: dict
    client_finished_at: tuple
    client_failovers: tuple
    client_sides: tuple

    def client_startup_delays(self) -> list[float]:
        """Defined per-client start-up delays, client order.

        The same ``playback_started_at - session_started_at``
        subtraction :attr:`~repro.core.metrics.QoEMetrics.startup_delay`
        performs, so batches assembled from side records are
        bit-identical to ones built from result objects.
        """
        return [
            side.playback_started_at - side.session_started_at
            for side in self.client_sides
            if side.playback_started_at is not None
        ]

    def rebuild(self) -> MultiClientResult:
        """Invert :meth:`PopulationSpec.encode_side` exactly."""
        return MultiClientResult(
            policy=self.policy,
            outcomes=[
                rebuild_outcome(side, finished_at, failovers)
                for side, finished_at, failovers in zip(
                    self.client_sides,
                    self.client_finished_at,
                    self.client_failovers,
                    strict=True,
                )
            ],
            server_bytes=dict(self.server_bytes),
        )


def rebuild_populations(
    dense: dict[str, np.ndarray], sides: Sequence[PopulationSideRecord]
) -> list[MultiClientResult]:
    """Materialize result objects from a columnar population collection.

    The dense columns are aggregates *derived* from the side records,
    so the rebuild needs only the sides; the signature matches the
    ``TrialCollection`` rebuild contract.
    """
    del dense
    return [side.rebuild() for side in sides]


@dataclass(frozen=True)
class PopulationSpec:
    """One (policy, seed-replicate) population, self-contained.

    The :class:`~repro.sim.execution.WorkSpec` kind for population
    campaigns: ``run`` executes a whole
    :class:`~repro.ext.multi_client.MultiClientExperiment` population —
    ``client_count`` clients sharing one environment and CDN — under
    one selection policy, seeded for this replicate.
    """

    label: str
    trial: int
    seed: int
    policy: str
    client_count: int
    profile_factory: Callable[[], NetworkProfile]
    video_duration_s: float = 120.0
    overload_threshold: int | None = 2
    player_config: PlayerConfig = field(default_factory=PlayerConfig)
    stop: str = "prebuffer"
    #: Optional arrival-schedule hook, ``(rng, count) -> delays`` —
    #: module-level callables only (specs must stay picklable).  ``None``
    #: keeps the classic uniform flash-crowd stagger bit-for-bit.
    launch_schedule: Callable[[np.random.Generator, int], Sequence[float]] | None = None
    #: Optional world hook ``(env, deployment) -> None`` run before any
    #: client launches — the churn-injection seam (same pickling rule).
    world_hook: Callable | None = None

    #: Arena layout for the shm collection path (class-level).
    dense_columns: ClassVar[ColumnLayout] = POPULATION_COLUMNS

    def run(self) -> MultiClientResult:
        """Execute this population start to finish (the pool work unit)."""
        experiment = MultiClientExperiment(
            self.profile_factory,
            client_count=self.client_count,
            seed=self.seed,
            video_duration_s=self.video_duration_s,
            overload_threshold=self.overload_threshold,
            player_config=self.player_config,
            stop=self.stop,
            launch_schedule=self.launch_schedule,
            world_hook=self.world_hook,
        )
        return experiment.run(self.policy)

    def write_dense(
        self, arena: OutcomeArena, row: int, result: MultiClientResult
    ) -> None:
        arena.write_row(row, population_dense_row(result))

    def encode_side(self, result: MultiClientResult) -> PopulationSideRecord:
        return PopulationSideRecord(
            policy=result.policy,
            replicate=self.trial,
            server_bytes=result.server_bytes,
            client_finished_at=tuple(o.finished_at for o in result.outcomes),
            client_failovers=tuple(o.metrics.failovers for o in result.outcomes),
            client_sides=tuple(encode_side(o) for o in result.outcomes),
        )

    rebuild = staticmethod(rebuild_populations)


# ---------------------------------------------------------------------------
# Columnar per-policy storage
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class PopulationBatch:
    """One policy's replicated populations, transposed into columns.

    ``eq=False`` for the same reason as ``OutcomeBatch``: identity
    comparison is the useful semantic for a derived cache.  Dense
    replicate aggregates are ``(r,)`` arrays; the ragged per-client
    start-up delays are flat with CSR offsets (replicate ``i`` owns
    ``client_startup[client_offsets[i]:client_offsets[i+1]]``).
    """

    #: (r,) mean client start-up per replicate; NaN if none started.
    mean_startup: np.ndarray
    #: (r,) 95th-percentile client start-up per replicate.
    p95_startup: np.ndarray
    #: (r,) max/mean server byte ratio per replicate.
    load_imbalance: np.ndarray
    #: (r,) total bytes served across all video servers.
    total_server_bytes: np.ndarray
    #: (r,) clients whose playback started.
    completed: np.ndarray
    #: (r,) total stalled seconds across the population's clients.
    total_stall: np.ndarray
    #: (r,) total session wall seconds (rebuffer-ratio denominator).
    session_time: np.ndarray
    #: (r,) total source failovers across the population's clients.
    total_failovers: np.ndarray
    #: (r,) population size (clients launched, started or not).
    sessions: np.ndarray
    #: flat defined per-client start-up delays, replicate-major.
    client_startup: np.ndarray
    #: (r+1,) CSR offsets into ``client_startup``.
    client_offsets: np.ndarray

    @classmethod
    def _from_csr_source(
        cls, dense: dict[str, np.ndarray], delays_per_replicate: Sequence[list[float]]
    ) -> "PopulationBatch":
        flat: list[float] = []
        offsets: list[int] = [0]
        for delays in delays_per_replicate:
            flat.extend(delays)
            offsets.append(len(flat))
        return cls(
            **{
                name: np.asarray(dense[name], dtype=dtype)
                for name, dtype in POPULATION_COLUMNS
            },
            client_startup=np.asarray(flat, dtype=np.float64),
            client_offsets=np.asarray(offsets, dtype=np.int64),
        )

    @classmethod
    def from_results(cls, results: Sequence[MultiClientResult]) -> "PopulationBatch":
        """Serial/pickle assembly: aggregate each materialized result
        through the same :func:`population_dense_row` the workers use."""
        rows = [population_dense_row(result) for result in results]
        dense = {
            name: np.asarray([row[name] for row in rows], dtype=dtype)
            for name, dtype in POPULATION_COLUMNS
        }
        return cls._from_csr_source(
            dense, [result.startup_delays() for result in results]
        )

    @classmethod
    def from_dense_and_sides(
        cls, dense: dict[str, np.ndarray], sides: Sequence[PopulationSideRecord]
    ) -> "PopulationBatch":
        """Shm assembly: adopt the worker-written arena columns as-is;
        only the CSR delays are built from the side records."""
        return cls._from_csr_source(
            dense, [side.client_startup_delays() for side in sides]
        )

    def __len__(self) -> int:
        return len(self.mean_startup)

    def column_mismatches(self, other: "PopulationBatch") -> list[str]:
        """Names of columns not bit-identical to ``other``'s (NaN==NaN)."""
        return dense_field_mismatches(self, other)

    def startup_delays(self) -> np.ndarray:
        """All defined client start-up delays, replicate-major order."""
        return self.client_startup


# ---------------------------------------------------------------------------
# Per-policy results and the campaign
# ---------------------------------------------------------------------------


class PopulationResult:
    """One policy's results across seed replicates.

    The population analogue of
    :class:`~repro.sim.campaign.TrialResult`: holds materialized
    :class:`~repro.ext.multi_client.MultiClientResult`s (serial/pickle
    paths) or — on the shm path — a pre-assembled columnar batch plus a
    thunk that rebuilds the result objects only if something walks
    them.
    """

    def __init__(
        self,
        label: str,
        results: list[MultiClientResult] | None = None,
        batch: PopulationBatch | None = None,
        result_thunk: Callable[[], list[MultiClientResult]] | None = None,
    ) -> None:
        if batch is not None and results is None and result_thunk is None:
            raise ConfigError(
                "a PopulationResult built from a batch needs a result source "
                "(results or result_thunk)"
            )
        self.label = label
        self._results = results if results is not None else (
            None if result_thunk is not None else []
        )
        self._batch = batch
        self._thunk = result_thunk

    @property
    def policy(self) -> str:
        return self.label

    @property
    def results(self) -> list[MultiClientResult]:
        """The per-replicate result objects, materialized on first use."""
        if self._results is None:
            self._results = self._thunk()
        return self._results

    @property
    def batch(self) -> PopulationBatch:
        """The columnar view, built once per result on first use."""
        if self._batch is not None and (
            self._results is None or len(self._batch) == len(self._results)
        ):
            return self._batch
        self._batch = PopulationBatch.from_results(self.results)
        return self._batch

    def __len__(self) -> int:
        if self._results is not None:
            return len(self._results)
        return len(self._batch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PopulationResult(label={self.label!r}, replicates={len(self)})"

    def startup_delays(self) -> list[float]:
        """All defined client start-up delays across replicates."""
        return self.batch.startup_delays().tolist()


class PopulationCampaign(Campaign):
    """A figure's worth of population batches, one pool submission.

    Identical scheduling to :class:`~repro.sim.campaign.Campaign`
    (round-robin interleave, single engine submission, per-label
    demux); only the demux hooks differ — each policy's slice becomes a
    :class:`PopulationBatch` inside a :class:`PopulationResult`.
    """

    def _result_from_outcomes(
        self, label: str, outcomes: list[MultiClientResult]
    ) -> PopulationResult:
        return PopulationResult(label, results=outcomes)

    def _result_from_columnar(
        self, label: str, dense: dict[str, np.ndarray], sides: list
    ) -> PopulationResult:
        return PopulationResult(
            label,
            batch=PopulationBatch.from_dense_and_sides(dense, sides),
            result_thunk=partial(rebuild_populations, dense, sides),
        )
