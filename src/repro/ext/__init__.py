"""Extensions beyond the paper's evaluation — its §7 future-work list.

* :mod:`repro.ext.energy` — interface energy accounting ("our scheduler
  currently does not take into account energy constraints when
  leveraging multiple interfaces" [17]);
* :mod:`repro.ext.adaptive` — DASH-style bitrate adaptation integrated
  with multi-source multi-path fetching ("exploring how rate adaption
  can be integrated with MSPlayer");
* :mod:`repro.ext.multi_client` — many MSPlayer clients sharing one CDN
  deployment, for server-selection-policy studies (the load-balancing
  concern behind §2's source-diversity argument);
* :mod:`repro.ext.population` — population campaigns: whole
  multi-client populations as parallel work units (policy ×
  seed-replicate × client count), collected through the shared-memory
  arena into per-policy columnar batches.
"""

from .energy import EnergyModel, EnergyReport, LTE_ENERGY, WIFI_ENERGY
from .adaptive import (
    AdaptiveOutcome,
    AdaptiveSimDriver,
    BitrateController,
    BufferBasedController,
    FixedBitrateController,
    ThroughputController,
)
from .multi_client import MultiClientExperiment, MultiClientResult
from .population import (
    PopulationBatch,
    PopulationCampaign,
    PopulationResult,
    PopulationSpec,
)

__all__ = [
    "PopulationBatch",
    "PopulationCampaign",
    "PopulationResult",
    "PopulationSpec",
    "EnergyModel",
    "EnergyReport",
    "WIFI_ENERGY",
    "LTE_ENERGY",
    "BitrateController",
    "FixedBitrateController",
    "BufferBasedController",
    "ThroughputController",
    "AdaptiveSimDriver",
    "AdaptiveOutcome",
    "MultiClientExperiment",
    "MultiClientResult",
]
