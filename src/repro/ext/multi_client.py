"""Many MSPlayer clients sharing one CDN deployment.

The load-balancing side of §2's source-diversity argument: when a
population of players streams simultaneously, where the demand lands
depends on the CDN's server-selection policy.  This experiment spawns
``client_count`` independent MSPlayer clients — each with its own
WiFi/LTE access links — against one shared deployment, and reports
start-up delays plus the byte distribution across video servers for
each :class:`~repro.cdn.selection.ServerSelection` policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cdn.catalog import Catalog
from ..cdn.deployment import CDNConfig, CDNDeployment
from ..cdn.videos import VideoMeta
from ..core.config import PlayerConfig
from ..errors import ConfigError
from ..net.dns import StubResolver
from ..net.env import Environment
from ..net.iface import NetworkInterface
from ..net.link import Link
from ..net.topology import Network
from ..rng import RngFactory
from ..sim.driver import MSPlayerDriver, SessionOutcome
from ..sim.profiles import NetworkProfile
from ..sim.scenario import LTE_NET, WIFI_NET, Scenario, ScenarioConfig


class _SharedWorldScenario(Scenario):
    """A Scenario subclass whose CDN/topology is shared across clients.

    Each client still gets private access links and interfaces (their
    bottlenecks are their own last miles), derived from independent
    random substreams, but hosts/DNS/catalog are common.
    """

    def __init__(
        self,
        profile: NetworkProfile,
        seed: int,
        client_index: int,
        shared_env: Environment,
        shared_network: Network,
        shared_resolver: StubResolver,
        shared_catalog: Catalog,
        shared_deployment: CDNDeployment,
        config: ScenarioConfig,
    ) -> None:
        # Deliberately NOT calling super().__init__: we assemble the
        # same attributes around the shared world.
        self.profile = profile
        self.config = config
        self.rng_factory = RngFactory(seed).child(f"client-{client_index}")
        self.env = shared_env
        self.network = shared_network
        self.resolver = shared_resolver
        self.catalog = shared_catalog
        self.deployment = shared_deployment
        self.video = shared_catalog.get(config.video_id)

        label = f"c{client_index}"
        self.wifi_link = Link(
            self.env,
            profile.wifi.bandwidth_process(self.rng_factory, f"{label}.wifi"),
            name=f"{label}-wifi-link",
        )
        self.lte_link = Link(
            self.env,
            profile.lte.bandwidth_process(self.rng_factory, f"{label}.lte"),
            name=f"{label}-lte-link",
        )
        self.wifi = NetworkInterface(
            self.env,
            name=f"{label}-wlan0",
            kind="wifi",
            link=self.wifi_link,
            latency=profile.wifi.latency_process(self.rng_factory, f"{label}.wifi"),
            network_id=WIFI_NET,
            address=f"192.168.1.{client_index + 10}",
        )
        self.lte = NetworkInterface(
            self.env,
            name=f"{label}-wwan0",
            kind="lte",
            link=self.lte_link,
            latency=profile.lte.latency_process(self.rng_factory, f"{label}.lte"),
            network_id=LTE_NET,
            address=f"10.54.3.{client_index + 10}",
        )


@dataclass
class MultiClientResult:
    policy: str
    outcomes: list[SessionOutcome] = field(default_factory=list)
    server_bytes: dict[str, int] = field(default_factory=dict)

    def startup_delays(self) -> list[float]:
        return [o.startup_delay for o in self.outcomes if o.startup_delay is not None]

    @property
    def load_imbalance(self) -> float:
        """Max/mean byte ratio across *all* video servers.

        1.0 = perfectly even; with S servers, a policy that starves all
        but one scores S.  Idle servers count — an unused replica is
        exactly the imbalance the selection policy should prevent.
        """
        loads = list(self.server_bytes.values())
        if not loads or sum(loads) == 0:
            return 0.0
        return max(loads) / (sum(loads) / len(loads))


class MultiClientExperiment:
    """Run a client population under one selection policy."""

    def __init__(
        self,
        profile_factory,
        client_count: int = 6,
        seed: int = 77,
        video_duration_s: float = 150.0,
        overload_threshold: int | None = 2,
        player_config: PlayerConfig | None = None,
        stop: str = "prebuffer",
        launch_schedule=None,
        world_hook=None,
    ) -> None:
        if client_count < 1:
            raise ConfigError("need at least one client")
        self.profile_factory = profile_factory
        self.client_count = client_count
        self.seed = seed
        self.video_duration_s = video_duration_s
        self.overload_threshold = overload_threshold
        self.player_config = player_config or PlayerConfig()
        self.stop = stop
        #: ``(rng, count) -> launch delays`` — the scenarios package's
        #: arrival-process seam.  ``None`` keeps the classic uniform
        #: 2-second flash-crowd stagger, bit-for-bit (same rng stream,
        #: same draw sequence).  Module-level callables only: specs that
        #: carry this hook ride the process engines pickled.
        self.launch_schedule = launch_schedule
        #: ``(env, deployment) -> None`` run after the world is built
        #: and before any client launches — where churn timelines
        #: register their timer processes (same pickling rule).
        self.world_hook = world_hook

    def run(self, policy: str) -> MultiClientResult:
        profile = self.profile_factory()
        config = ScenarioConfig(
            video_duration_s=self.video_duration_s,
            selection_policy=policy,
            overload_threshold=self.overload_threshold,
        )
        env = Environment()
        network = Network(env)
        resolver = StubResolver(env, lookup_delay=profile.dns_delay_s)
        catalog = Catalog()
        catalog.add(
            VideoMeta(
                video_id=config.video_id,
                title="Shared clip",
                author="multi",
                duration_s=config.video_duration_s,
                itags=config.itags,
            )
        )
        deployment = CDNDeployment(
            env,
            network,
            catalog,
            CDNConfig(
                networks=(WIFI_NET, LTE_NET),
                video_servers_per_network=profile.video_servers_per_network,
                selection_policy=policy,
                tls=profile.tls,
                proxy_distance=profile.proxy_distance_s,
                video_distance=profile.video_distance_s,
                overload_threshold=self.overload_threshold,
            ),
            rng=RngFactory(self.seed).generator("cdn"),
            resolver=resolver,
        )

        drivers: list[MSPlayerDriver] = []
        rng = RngFactory(self.seed).generator("stagger")
        for index in range(self.client_count):
            scenario = _SharedWorldScenario(
                profile,
                seed=self.seed,
                client_index=index,
                shared_env=env,
                shared_network=network,
                shared_resolver=resolver,
                shared_catalog=catalog,
                shared_deployment=deployment,
                config=config,
            )
            driver = MSPlayerDriver(scenario, self.player_config, stop=self.stop)
            drivers.append(driver)

        if self.world_hook is not None:
            self.world_hook(env, deployment)

        # Stagger client arrivals — uniformly over a couple of seconds
        # (the classic flash crowd) unless an arrival process supplies
        # the launch schedule — then launch them in one environment.
        def _staggered_launch(driver: MSPlayerDriver, delay: float):
            yield env.pooled_timeout(delay)
            driver.launch()

        if self.launch_schedule is None:
            delays = [float(rng.uniform(0.0, 2.0)) for _ in drivers]
        else:
            delays = [float(d) for d in self.launch_schedule(rng, len(drivers))]
        if len(delays) != len(drivers):
            raise ConfigError(
                f"launch schedule produced {len(delays)} delays for "
                f"{len(drivers)} clients"
            )
        for driver, delay in zip(drivers, delays, strict=True):
            env.process(_staggered_launch(driver, delay))

        env.run(until=env.all_of([driver.finished for driver in drivers]))

        result = MultiClientResult(policy=policy)
        for driver in drivers:
            result.outcomes.append(driver.collect())
        result.server_bytes = deployment.total_bytes_served()
        return result

    # -- population campaigns -----------------------------------------------

    def replicate_seed(self, replicate: int) -> int:
        """The derived seed of one replicate population.

        Policy-independent on purpose: every policy of a comparison
        sees the *same* sequence of seeded populations, so policy
        differences are never confounded with seed differences (the
        population analogue of the paper's identically seeded
        configuration repetitions).
        """
        return RngFactory(self.seed).child(f"replicate-{replicate}").integer(
            "population"
        )

    def specs_for(self, policy: str, replicates: int = 1) -> list:
        """Picklable :class:`~repro.ext.population.PopulationSpec`s that
        rebuild this experiment (one whole population per spec) on any
        execution backend."""
        # Imported lazily: repro.ext.population imports from this
        # module, and a module-level import would close that cycle.
        from .population import PopulationSpec

        return [
            PopulationSpec(
                label=policy,
                trial=replicate,
                seed=self.replicate_seed(replicate),
                policy=policy,
                client_count=self.client_count,
                profile_factory=self.profile_factory,
                video_duration_s=self.video_duration_s,
                overload_threshold=self.overload_threshold,
                player_config=self.player_config,
                stop=self.stop,
                launch_schedule=self.launch_schedule,
                world_hook=self.world_hook,
            )
            for replicate in range(replicates)
        ]

    def compare(
        self,
        policies: tuple[str, ...] = ("static", "rotate", "least_loaded"),
        replicates: int = 1,
        jobs=None,
    ):
        """Run every policy over identically seeded replicate populations.

        One :class:`~repro.ext.population.PopulationCampaign`: all
        ``len(policies) × replicates`` populations are interleaved into
        a single engine submission (replicate *i* of every policy
        before replicate *i+1* of any) and demultiplexed per policy
        into :class:`~repro.ext.population.PopulationResult`s.  Results
        are byte-identical whatever the backend (``jobs`` takes the
        usual ``None``/``"serial"``/``"auto"``/``N``/engine values).
        """
        from .population import PopulationCampaign

        campaign = PopulationCampaign(jobs=jobs)
        for policy in policies:
            campaign.add(self.specs_for(policy, replicates))
        return campaign.run()
