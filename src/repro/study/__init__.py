"""Declarative study API: registry, typed params, grids, archives.

The public surface every scenario PR targets (see DESIGN.md
"Declarative study API"):

* :class:`ExperimentDef` / :func:`register` / :func:`get_experiment` /
  :func:`experiment_ids` — the typed experiment registry;
* :class:`Param` / :class:`ParamSchema` — parameter schemas (the single
  validation point for the Study facade, the generated CLI, and
  archive loading);
* :class:`Study` / :class:`StudyResult` — declarative runs and
  parameter grids, every cell one merged pool submission;
* :func:`run_experiment` — one-shot convenience the legacy
  ``analysis.experiments`` wrappers delegate to;
* :data:`SCHEMA_VERSION` and ``StudyResult.save()/load()`` — versioned
  JSON + npz result archives;
* :class:`StudyCache` / :class:`CacheInfo` / :func:`code_fingerprint` /
  :func:`resolve_cache` — the content-addressed cell cache behind
  ``Study.run(cache=...)`` / ``REPRO_CACHE`` / ``repro cache``.
"""

from .archive import ARCHIVE_FORMAT, SCHEMA_VERSION, load_study, save_study
from .cache import CacheInfo, StudyCache, code_fingerprint, resolve_cache
from .params import Param, ParamSchema, schema
from .registry import (
    ExperimentDef,
    ExperimentPlan,
    experiment_ids,
    get_experiment,
    register,
)
from .study import Study, StudyCell, StudyResult, run_experiment

__all__ = [
    "ARCHIVE_FORMAT",
    "CacheInfo",
    "ExperimentDef",
    "ExperimentPlan",
    "Param",
    "ParamSchema",
    "SCHEMA_VERSION",
    "Study",
    "StudyCache",
    "StudyCell",
    "StudyResult",
    "code_fingerprint",
    "experiment_ids",
    "get_experiment",
    "load_study",
    "register",
    "resolve_cache",
    "run_experiment",
    "save_study",
    "schema",
]
