"""Declarative study API: registry, typed params, grids, archives.

The public surface every scenario PR targets (see DESIGN.md
"Declarative study API"):

* :class:`ExperimentDef` / :func:`register` / :func:`get_experiment` /
  :func:`experiment_ids` — the typed experiment registry;
* :class:`Param` / :class:`ParamSchema` — parameter schemas (the single
  validation point for the Study facade, the generated CLI, and
  archive loading);
* :class:`Study` / :class:`StudyResult` — declarative runs and
  parameter grids, every cell one merged pool submission;
* :func:`run_experiment` — one-shot convenience the legacy
  ``analysis.experiments`` wrappers delegate to;
* :data:`SCHEMA_VERSION` and ``StudyResult.save()/load()`` — versioned
  JSON + npz result archives.
"""

from .archive import ARCHIVE_FORMAT, SCHEMA_VERSION, load_study, save_study
from .params import Param, ParamSchema, schema
from .registry import (
    ExperimentDef,
    ExperimentPlan,
    experiment_ids,
    get_experiment,
    register,
)
from .study import Study, StudyCell, StudyResult, run_experiment

__all__ = [
    "ARCHIVE_FORMAT",
    "ExperimentDef",
    "ExperimentPlan",
    "Param",
    "ParamSchema",
    "SCHEMA_VERSION",
    "Study",
    "StudyCell",
    "StudyResult",
    "experiment_ids",
    "get_experiment",
    "load_study",
    "register",
    "run_experiment",
    "save_study",
    "schema",
]
