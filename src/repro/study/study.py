"""The ``Study`` facade: declarative experiment runs and grids.

One object replaces the pile of per-experiment entry points::

    from repro.study import Study

    # one cell, schema-validated params
    result = Study("fig4", trials=10, prebuffers=(20.0, 40.0)).run(jobs="auto")
    print(result.rendered)

    # a grid: every cell a full experiment, ALL cells one pool submission
    grid = Study("fig2", trials=5).grid(seed=[2014, 2015], trials=[5, 10])
    study_result = grid.run(jobs="auto")
    study_result.save("results/fig2-grid")         # .json + .npz archive

``Study(experiment, **params)`` validates ``params`` against the
registered :class:`~repro.study.registry.ExperimentDef` schema at
construction — unknown or ill-typed knobs fail immediately, before any
simulation runs.  ``grid`` sweeps schema params across cells (Cartesian
product, last axis fastest); ``run`` builds every cell's campaign plan
and submits them together through
:func:`~repro.sim.campaign.run_together`, so a grid saturates the
worker pool exactly like one big campaign while each cell's outcomes
stay byte-identical to running that cell alone (each work spec carries
its own derived seed; submission order is irrelevant).

The returned :class:`StudyResult` is a durable artifact: per-cell
rendered panels and raw numbers plus every label's dense batch columns,
with a versioned save/load round trip (:mod:`repro.study.archive`) that
preserves the column bits exactly.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields
from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import TYPE_CHECKING, Any, cast

import numpy as np

from ..errors import ConfigError
from ..net.calendar import resolve_kernel, set_default_kernel
from ..sim.campaign import run_together
from ..sim.execution import ExecutionEngine, resolve_engine
from .registry import ExperimentDef, get_experiment

if TYPE_CHECKING:  # import cycle: cache.py imports this module lazily
    from .cache import CacheInfo, StudyCache

__all__ = ["Study", "StudyCell", "StudyResult", "run_experiment"]


@contextmanager
def _ipc_override(ipc: str | None) -> Iterator[None]:
    """Scope an ``--ipc``-style collection-mode override to one run.

    The engines consult ``REPRO_IPC`` at construction, so the variable
    is set before engine resolution and restored afterwards — in-process
    callers never inherit the override (same contract the CLI has had
    since the flag existed).
    """
    if ipc is None:
        yield
        return
    previous = os.environ.get("REPRO_IPC")
    os.environ["REPRO_IPC"] = ipc
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_IPC", None)
        else:
            os.environ["REPRO_IPC"] = previous


@contextmanager
def _kernel_override(kernel: str | None) -> Iterator[None]:
    """Scope a ``--kernel``-style event-kernel override to one run.

    Pins the in-process default (which every ``Environment()`` consults
    before ``REPRO_KERNEL``) and restores it afterwards.  The process
    backends re-pin per task from the parent's resolved kernel
    (:func:`repro.sim.execution._run_scoped`), so the override reaches
    cached worker pools too.
    """
    if kernel is None:
        yield
        return
    previous = set_default_kernel(resolve_kernel(kernel))
    try:
        yield
    finally:
        set_default_kernel(previous)


def _study_runner(
    engine: ExecutionEngine | None,
) -> "Callable[[Study], StudyResult] | None":
    """The whole-study entry point of a service-style engine, if any.

    Engines that execute studies rather than spec batches (the
    distributed backend) expose ``run_study``; ``Study.run`` delegates
    to it instead of building plans locally.  Structural on purpose —
    any conforming third-party engine works, without importing
    :mod:`repro.serve` here.
    """
    runner = getattr(engine, "run_study", None)
    if engine is not None and callable(runner):
        return cast("Callable[[Study], StudyResult]", runner)
    return None


def _batch_columns(results: Mapping[str, Any]) -> dict[str, dict[str, np.ndarray]]:
    """Every label's dense batch columns, generically.

    Works for any result kind whose ``batch`` is an ndarray dataclass
    (``OutcomeBatch``, ``PopulationBatch``, ``EstimatorBatch``) — the
    same field enumeration :func:`~repro.sim.campaign.
    dense_field_mismatches` relies on, so archives can never silently
    drop a column a determinism test would have checked.
    """
    columns: dict[str, dict[str, np.ndarray]] = {}
    for label, result in results.items():
        batch = result.batch
        columns[label] = {
            batch_field.name: getattr(batch, batch_field.name)
            for batch_field in dataclass_fields(batch)
        }
    return columns


@dataclass
class StudyCell:
    """One grid cell: its coordinates, full params, and results."""

    index: int
    #: The grid coordinates of this cell ({} for a single-cell study).
    overrides: dict[str, Any]
    #: The cell's full resolved param dict (defaults + overrides).
    params: dict[str, Any]
    #: The finished figure/table (rendered text + raw numbers);
    #: ``None`` for a cell that failed (see ``error``).
    result: Any
    #: ``{label: {column: ndarray}}`` dense batch columns per label.
    columns: dict[str, dict[str, np.ndarray]]
    #: Why the cell has no result (service quarantine: the broker gave
    #: up after ``max_attempts``); ``None`` for a successful cell.  A
    #: failed cell renders as a FAILED block and blocks ``save``.
    error: str | None = None


class StudyResult:
    """A study's durable output: cells, axes, and dense columns.

    Constructed by :meth:`Study.run` and by :meth:`load`; the two are
    interchangeable for analysis — ``save``/``load`` round-trips the
    dense columns bit-identically and the metadata losslessly (tuples
    become lists in JSON; params are re-coerced through the experiment
    schema on load, restoring tuple-ness).
    """

    def __init__(
        self,
        experiment_id: str,
        kind: str,
        params: dict[str, Any],
        axes: dict[str, list],
        cells: list[StudyCell],
    ) -> None:
        self.experiment_id = experiment_id
        self.kind = kind
        self.params = params
        self.axes = axes
        self.cells = cells
        #: Cache accounting for the run that produced this result
        #: (:class:`~repro.study.cache.CacheInfo`); ``None`` when no
        #: cache was consulted (and always ``None`` on a loaded
        #: archive — it is run metadata, not part of the result).
        self.cache_info: CacheInfo | None = None

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[StudyCell]:
        return iter(self.cells)

    @property
    def rendered(self) -> str:
        """Every cell's rendered panel, grid order.

        Failed cells (a distributed run's quarantined cells) render as
        an explicit FAILED block instead of silently vanishing from the
        output.
        """
        blocks = []
        for cell in self.cells:
            if cell.overrides:
                coords = ", ".join(f"{k}={v!r}" for k, v in cell.overrides.items())
                blocks.append(f"=== {self.experiment_id} [{coords}] ===")
            if cell.error is not None:
                blocks.append(
                    f"=== {self.experiment_id} cell {cell.index} FAILED ===\n"
                    f"{cell.error}"
                )
            else:
                blocks.append(cell.result.rendered)
        return "\n\n".join(blocks)

    @property
    def errors(self) -> dict[int, str]:
        """Per-cell failure reasons by cell index ({} when all succeeded)."""
        return {cell.index: cell.error for cell in self.cells if cell.error is not None}

    def only(self) -> StudyCell:
        """The single cell of a gridless study."""
        if len(self.cells) != 1:
            raise ConfigError(
                f"study has {len(self.cells)} cells; use cell(...) to pick one"
            )
        return self.cells[0]

    def cell(self, **coords: Any) -> StudyCell:
        """The cell at the given grid coordinates."""
        unknown = set(coords) - set(self.axes)
        if unknown:
            raise ConfigError(
                f"unknown grid axes {sorted(unknown)}; axes: {sorted(self.axes)}"
            )
        schema = get_experiment(self.experiment_id).schema
        coords = {name: schema[name].coerce(value) for name, value in coords.items()}
        matches = [
            cell
            for cell in self.cells
            if all(cell.params[name] == value for name, value in coords.items())
        ]
        if len(matches) != 1:
            raise ConfigError(
                f"coordinates {coords!r} match {len(matches)} cells, need exactly 1"
            )
        return matches[0]

    def column_mismatches(self, other: "StudyResult") -> list[str]:
        """Column paths (``cell/label/column``) not bit-identical to
        ``other``'s — the archive round-trip determinism predicate."""
        mismatched = []
        if len(self.cells) != len(other.cells):
            return ["<cell count>"]
        for mine, theirs in zip(self.cells, other.cells, strict=True):
            if sorted(mine.columns) != sorted(theirs.columns):
                mismatched.append(f"{mine.index}/<labels>")
                continue
            for label, columns in mine.columns.items():
                for name, column in columns.items():
                    other_column = theirs.columns[label][name]
                    if column.dtype != other_column.dtype or not np.array_equal(
                        column, other_column, equal_nan=column.dtype.kind == "f"
                    ):
                        mismatched.append(f"{mine.index}/{label}/{name}")
        return mismatched

    def save(self, path) -> tuple[str, str]:
        """Archive to ``<path>.json`` + ``<path>.npz``; returns both paths."""
        from .archive import save_study

        return save_study(self, path)

    @classmethod
    def load(cls, path) -> "StudyResult":
        """Load an archive written by :meth:`save` (schema-checked)."""
        from .archive import load_study

        return load_study(path)


class Study:
    """A declarative handle on one registered experiment.

    Immutable-ish builder: ``grid`` returns a new ``Study`` with axes
    attached; ``run`` executes and returns a :class:`StudyResult`.
    """

    def __init__(
        self, experiment: str | ExperimentDef, **params: Any
    ) -> None:
        self.definition = (
            experiment
            if isinstance(experiment, ExperimentDef)
            else get_experiment(experiment)
        )
        # Validate eagerly: a bad knob dies here, not mid-campaign.
        self.params = self.definition.schema.resolve(params)
        self._overrides = dict(params)
        self._axes: dict[str, list] = {}

    @property
    def experiment_id(self) -> str:
        return self.definition.experiment_id

    @property
    def axes(self) -> dict[str, list]:
        """The grid axes (name → coerced values), declaration order."""
        return {name: list(values) for name, values in self._axes.items()}

    def grid(self, **axes: Sequence) -> "Study":
        """Sweep schema params across cells (Cartesian product).

        Axis order is declaration order; the last axis varies fastest.
        Each value is validated through the param's schema entry, so a
        ``chunk=["64KB", "256KB"]`` axis arrives as parsed byte counts.
        """
        clone = Study(self.definition, **self._overrides)
        clone._axes = dict(self._axes)
        schema = self.definition.schema
        for name, values in axes.items():
            param = schema[name]  # raises on unknown names
            if not param.sweepable:
                raise ConfigError(f"param {name!r} cannot be swept in a grid")
            values = list(values)
            if not values:
                raise ConfigError(f"grid axis {name!r} cannot be empty")
            clone._axes[name] = [param.coerce(value) for value in values]
        return clone

    def cells(self) -> list[dict[str, Any]]:
        """Each cell's grid overrides, product order (last axis fastest)."""
        if not self._axes:
            return [{}]
        names = list(self._axes)
        return [
            dict(zip(names, combo, strict=True))
            for combo in itertools.product(*self._axes.values())
        ]

    def __len__(self) -> int:
        """Number of grid cells this study will run."""
        return len(self.cells())

    def run(
        self,
        jobs: int | str | ExecutionEngine | None = None,
        ipc: str | None = None,
        engine: ExecutionEngine | None = None,
        kernel: str | None = None,
        cache: "str | StudyCache | None" = None,
    ) -> StudyResult:
        """Execute every cell as one merged engine submission.

        ``jobs``/``ipc`` take the usual values (``resolve_engine`` /
        ``REPRO_IPC`` semantics); an explicit ``engine`` wins over
        ``jobs``; ``kernel`` scopes an event-kernel override
        (``REPRO_KERNEL`` semantics) to this run.  Cells are
        byte-identical to running each alone — the grid only changes
        scheduling, never outcomes (and the kernels are dispatch-order
        identical, so neither does the kernel).

        ``cache`` names a content-addressed cell cache directory (a
        :class:`~repro.study.cache.StudyCache` also works; ``None``
        consults ``REPRO_CACHE``).  Cells whose archives are already
        cached are rebuilt from disk and only the misses go to the
        engine — a repeated run submits zero work units, a widened grid
        submits the delta cells — and every fresh cell is stored back.
        Cached and fresh cells are bit-identical (the archive round
        trip is exact), so the cache changes cost, never results.  The
        cache key deliberately excludes the backend/ipc/kernel choice:
        those are byte-identity-equivalent by the determinism wall, so
        a cache written under one serves runs under any other.
        Accounting lands in ``StudyResult.cache_info``.

        A *service* backend (``jobs="service"``, an engine exposing
        ``run_study`` — e.g. :class:`repro.serve.engine.ServiceEngine`)
        takes the whole study: the declarative description ships to a
        broker, a worker fleet executes the cells, and the reassembled
        result is byte-identical to a local run.  The local ``cache``/
        ``ipc``/``kernel`` knobs don't apply there — the broker owns
        the cache and each worker its execution details (results are
        invariant to both by the determinism wall).
        """
        from .cache import CacheInfo, code_fingerprint, resolve_cache

        delegated = _study_runner(engine)
        if delegated is None and isinstance(jobs, str) and jobs.strip().lower() == "service":
            delegated = _study_runner(resolve_engine(jobs))
        if delegated is not None:
            return delegated(self)
        study_cache = resolve_cache(cache)
        with _ipc_override(ipc), _kernel_override(kernel):
            cell_overrides = self.cells()
            plans = []
            cell_params = []
            for overrides in cell_overrides:
                params = dict(self.params)
                params.update(overrides)
                plans.append(self.definition.build(params))
                cell_params.append(params)
            cached: dict[int, StudyCell] = {}
            fingerprint = "" if study_cache is None else code_fingerprint()
            if study_cache is not None:
                for index, params in enumerate(cell_params):
                    hit = study_cache.lookup(self.definition, params, fingerprint)
                    if hit is not None:
                        cached[index] = hit
            if engine is None and len(cached) < len(plans):
                # Lazy on purpose: a fully-cached run must not consult
                # REPRO_JOBS at all.  That also means REPRO_JOBS=service
                # only reaches the broker when there is work to ship.
                engine = resolve_engine(jobs)
                delegated = _study_runner(engine)
                if delegated is not None:
                    return delegated(self)
            per_cell = run_together(
                [plan.campaign for plan in plans], engine, skip=cached.keys()
            )
        cells = []
        submitted = 0
        for index, (plan, results) in enumerate(zip(plans, per_cell, strict=True)):
            if index in cached:
                hit = cached[index]
                cell = StudyCell(
                    index=index,
                    overrides=cell_overrides[index],
                    params=cell_params[index],
                    result=hit.result,
                    columns=hit.columns,
                )
            else:
                submitted += len(plan.campaign)
                cell = StudyCell(
                    index=index,
                    overrides=cell_overrides[index],
                    params=cell_params[index],
                    result=plan.render(results),
                    columns=_batch_columns(results),
                )
                if study_cache is not None:
                    study_cache.store(
                        self.definition, cell_params[index], cell, fingerprint
                    )
            cells.append(cell)
        result = StudyResult(
            experiment_id=self.experiment_id,
            kind=self.definition.kind,
            params=dict(self.params),
            axes={name: list(values) for name, values in self._axes.items()},
            cells=cells,
        )
        if study_cache is not None:
            result.cache_info = CacheInfo(
                hits=len(cached),
                misses=len(cells) - len(cached),
                submitted_units=submitted,
            )
        return result


def run_experiment(
    experiment_id: str,
    jobs: int | str | ExecutionEngine | None = None,
    ipc: str | None = None,
    kernel: str | None = None,
    cache: "str | StudyCache | None" = None,
    **params: Any,
):
    """One-shot convenience: run a registered experiment, return its
    :class:`~repro.analysis.experiments.ExperimentResult`.

    The compatibility wrappers in :mod:`repro.analysis.experiments`
    (``fig2_prebuffer_testbed(...)`` and friends) delegate here, so the
    legacy call surface and the Study surface are the same code path.
    """
    return (
        Study(experiment_id, **params)
        .run(jobs=jobs, ipc=ipc, kernel=kernel, cache=cache)
        .only()
        .result
    )
