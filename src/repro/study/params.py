"""Typed parameter schemas for registered experiments.

Every experiment in the registry (:mod:`repro.study.registry`)
declares its knobs as a :class:`ParamSchema` — an ordered collection
of :class:`Param` descriptors carrying the name, element type,
default, optional choices/minimum, and an optional string parser (so
``chunks=64KB`` works anywhere a value can arrive as text: the
generated CLI flags, ``--set key=value``, ``--grid key=v1,v2``, and
archive manifests).  The schema is the single validation point: the
:class:`~repro.study.study.Study` facade, the registry-generated CLI,
and archive loading all funnel values through :meth:`ParamSchema.
resolve`, so a nonsensical knob combination is a :class:`~repro.
errors.ConfigError` everywhere rather than a silently ignored kwarg in
one code path.

Design notes:

* ``many`` params hold a *tuple* of elements (``prebuffers=(20.0,
  40.0)``); a comma-separated string is accepted and split, so the CLI
  needs no per-param plumbing;
* ``cli_default`` lets the generated CLI keep its historical
  CI-friendly defaults (``--trials`` has always defaulted to 10 on the
  command line) without changing the library-level paper defaults
  (:data:`~repro.analysis.experiments.PAPER_TRIALS`);
* validation errors quote the offending param and constraint — these
  strings surface verbatim as one-line CLI errors, so they are part of
  the user interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import Any

from ..errors import ConfigError

__all__ = ["Param", "ParamSchema", "UNSET", "schema"]


class _Unset:
    """Sentinel: distinguishes "no CLI default" from ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNSET"


UNSET = _Unset()


@dataclass(frozen=True)
class Param:
    """One typed experiment knob.

    ``type`` is the *element* type (``int``/``float``/``str``/
    ``bool``); ``many=True`` makes the value a tuple of elements.
    ``parse`` converts a string token to an element (e.g.
    :func:`repro.units.parse_size` for ``"64KB"``); without it,
    ``type`` itself is applied to string input.
    """

    name: str
    type: type
    default: Any
    help: str = ""
    choices: tuple | None = None
    minimum: Any = None
    many: bool = False
    parse: Callable[[str], Any] | None = None
    #: Default the generated CLI uses when the flag is omitted; UNSET
    #: means the CLI falls through to ``default`` like everyone else.
    cli_default: Any = UNSET
    #: Whether ``Study.grid`` may sweep this param across cells.
    sweepable: bool = True

    def _coerce_element(self, value: Any) -> Any:
        if isinstance(value, str):
            token = value.strip()
            if self.parse is not None:
                try:
                    value = self.parse(token)
                except ConfigError:
                    raise
                except (TypeError, ValueError) as exc:
                    # A parse callable that raises raw ValueError (plain
                    # int/float, or a third-party parser) must surface as
                    # the same one-line usage error the schema's own
                    # checks produce — these strings reach the CLI as
                    # exit-code-2 messages, never tracebacks.
                    raise ConfigError(
                        f"param {self.name!r}: cannot read {token!r}: {exc}"
                    ) from None
            elif self.type is bool:
                lowered = token.lower()
                if lowered in ("1", "true", "yes", "on"):
                    value = True
                elif lowered in ("0", "false", "no", "off"):
                    value = False
                else:
                    raise ConfigError(
                        f"param {self.name!r}: cannot read {token!r} as a boolean"
                    )
            else:
                try:
                    value = self.type(token)
                except (TypeError, ValueError):
                    raise ConfigError(
                        f"param {self.name!r}: cannot read {token!r} as "
                        f"{self.type.__name__}"
                    ) from None
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, self.type) or (
            self.type is not bool and isinstance(value, bool)
        ):
            raise ConfigError(
                f"param {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigError(
                f"param {self.name!r}: {value!r} is not one of "
                f"{', '.join(map(repr, self.choices))}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ConfigError(
                f"param {self.name!r} must be >= {self.minimum}, got {value!r}"
            )
        return value

    def coerce(self, value: Any) -> Any:
        """Validate and normalize one value for this param.

        ``None`` means "use the default" (the CLI's omitted-flag
        convention).  Raises :class:`ConfigError` on any mismatch.
        """
        if value is None:
            return self.default
        if not self.many:
            return self._coerce_element(value)
        if isinstance(value, str):
            value = [token for token in value.split(",") if token.strip()]
        elif not isinstance(value, Sequence):
            raise ConfigError(
                f"param {self.name!r} expects a sequence of "
                f"{self.type.__name__}, got {type(value).__name__}"
            )
        if not value:
            raise ConfigError(f"param {self.name!r} cannot be empty")
        return tuple(self._coerce_element(element) for element in value)

    @property
    def flag(self) -> str:
        """The generated CLI flag (``--initial-chunk`` style)."""
        return "--" + self.name.replace("_", "-")

    def describe(self) -> str:
        """One-line rendering for ``repro list`` / generated help."""
        kind = self.type.__name__ + ("…" if self.many else "")
        parts = [f"{self.name}: {kind} = {self.default!r}"]
        if self.choices is not None:
            parts.append(f"choices {', '.join(map(str, self.choices))}")
        if self.minimum is not None:
            parts.append(f">= {self.minimum}")
        return "; ".join(parts)


@dataclass(frozen=True)
class ParamSchema:
    """An ordered, name-addressable collection of :class:`Param`."""

    params: tuple[Param, ...] = ()

    def __post_init__(self) -> None:
        names = [param.name for param in self.params]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate param names in schema: {names}")

    def __iter__(self) -> Iterator[Param]:
        return iter(self.params)

    def __len__(self) -> int:
        return len(self.params)

    def __contains__(self, name: object) -> bool:
        return any(param.name == name for param in self.params)

    def __getitem__(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise ConfigError(
            f"unknown param {name!r}; valid params: "
            f"{', '.join(p.name for p in self.params) or '(none)'}"
        )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(param.name for param in self.params)

    def resolve(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """The full, validated param dict: defaults + coerced overrides.

        Unknown names raise — this is where a ``--clients`` aimed at a
        non-population experiment, or a typo'd ``--set`` key, dies with
        a one-liner naming the valid knobs.
        """
        for name in overrides:
            self[name]  # raises with the valid-name list
        return {
            param.name: param.coerce(overrides.get(param.name))
            for param in self.params
        }


def schema(*params: Param) -> ParamSchema:
    """Build a :class:`ParamSchema` from positional params."""
    return ParamSchema(tuple(params))
