"""Versioned, schema-checked archives for :class:`StudyResult`.

One format for everything that used to be an in-memory return value:
figures regenerated locally, benchmark records, and CI workflow
artifacts all write the same pair of files —

* ``<path>.json`` — the manifest: format tag, schema version,
  experiment id/kind, resolved params, grid axes, and every cell's
  overrides, rendered panel, raw numbers, and label list;
* ``<path>.npz`` — the dense payload: every cell's per-label batch
  columns (``OutcomeBatch`` / ``PopulationBatch`` / ``EstimatorBatch``
  ndarrays), stored uncompressed so the float64/int64 bits the workers
  produced are the bits a later session reads back.

The loader is strict: a missing key, a wrong type, or a schema-version
bump is a :class:`~repro.errors.ConfigError` naming the problem — not
a half-loaded object.  Versioning policy: ``SCHEMA_VERSION`` bumps on
any incompatible manifest change, and loads reject any other version
outright (re-running an experiment is cheap and exact; migrating stale
archives is not worth the code).

Write guarantees:

* **atomic** — both files are written to temp names in the target
  directory and committed with ``os.replace`` (payload first, manifest
  second), so a crash mid-save never leaves a manifest whose payload is
  missing or half-written; a manifest-without-payload pair can only
  come from outside interference and loads as a distinct torn-archive
  error;
* **byte-deterministic** — the npz payload is written through an
  explicit zip writer with pinned member metadata, so saving the same
  :class:`StudyResult` twice produces byte-identical files (the study
  cache's repeated-run acceptance check is a literal ``cmp``).

Round-trip guarantees (held by ``tests/test_study_archive.py``):

* dense columns are bit-identical after save → load (NaN included);
  the manifest records every column's dtype and shape
  (``column_meta``) and the loader checks the payload against it, so a
  truncated or hand-edited npz fails here instead of surfacing as a
  numpy broadcast error downstream;
* metadata survives modulo JSON's tuple→list collapse — params are
  re-coerced through the experiment's schema on load, which restores
  tuples for ``many`` params.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import zipfile
from contextlib import suppress
from pathlib import Path
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # import cycle: study.py imports this module lazily
    from .study import StudyResult

import numpy as np

from ..errors import ConfigError
from .registry import get_experiment

__all__ = ["ARCHIVE_FORMAT", "SCHEMA_VERSION", "load_study", "save_study"]

#: Manifest format tag — rejects arbitrary JSON handed to ``load``.
ARCHIVE_FORMAT = "repro-study"

#: Bump on incompatible manifest changes; loads reject other versions.
#: v2 added ``column_meta`` (per-column dtype/shape the loader checks
#: the payload against).
SCHEMA_VERSION = 2

#: Separator for npz keys (``cell::label::column``).  ``/`` would turn
#: npz member names into nested zip paths; labels may contain ``/``
#: (fig3's ``harmonic/64KB/20s``), so the key is split from the right.
_KEY_SEP = "::"


def _jsonify(value: Any) -> Any:
    """Recursively convert a raw-results object to JSON-safe types.

    Numpy scalars/arrays and tuples appear throughout the experiments'
    ``raw`` dicts; collapse them to Python scalars and lists.  Dict keys
    become strings (JSON has no int keys).
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonify(element) for element in value.tolist()]
    if isinstance(value, Mapping):
        return {str(key): _jsonify(element) for key, element in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(element) for element in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(
        f"cannot archive value of type {type(value).__name__}: {value!r}"
    )


def _paths(path: str | Path) -> tuple[Path, Path]:
    """Resolve a base path to the (json, npz) file pair.

    Accepts a bare base (``results/fig2-grid``) or either member of the
    pair; the sibling is derived.  The suffixes are *appended* to a
    bare base (never substituted), so dotted bases like
    ``fig2.v1`` archive to ``fig2.v1.json`` instead of silently
    colliding on ``fig2.json``.
    """
    path = Path(path)
    if path.suffix in (".json", ".npz"):
        path = path.with_suffix("")
    return Path(f"{path}.json"), Path(f"{path}.npz")


#: Per-process counter for unique temp names (pid disambiguates across
#: processes, the counter across threads of one process).
_TMP_COUNTER = itertools.count()


def _tmp_path(path: Path) -> Path:
    return path.with_name(f"{path.name}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}")


def _write_npz(path: Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Write an npz payload with byte-deterministic output.

    ``np.savez`` round-trips the array bits exactly, but its zip member
    metadata (timestamps) is numpy-version-dependent; writing the
    members explicitly with pinned ``ZipInfo`` fields makes the *file
    bytes* a pure function of the arrays, which is what lets the study
    cache assert "second run produced the identical archive" with a
    plain byte compare.  Uncompressed (``ZIP_STORED``) like
    ``np.savez``: the columns are small and loads skip decompression.
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, array in arrays.items():
            buffer = io.BytesIO()
            np.lib.format.write_array(
                buffer, np.asanyarray(array), allow_pickle=False
            )
            member = zipfile.ZipInfo(f"{name}.npy", date_time=(1980, 1, 1, 0, 0, 0))
            member.compress_type = zipfile.ZIP_STORED
            archive.writestr(member, buffer.getvalue())


def save_study(result: StudyResult, path: str | Path) -> tuple[str, str]:
    """Write ``result`` to ``<path>.json`` + ``<path>.npz`` atomically.

    Both files land under temp names first and are committed with
    ``os.replace`` — payload before manifest, so no reader (or crash)
    can ever observe a manifest whose payload has not been fully
    written.  Concurrent saves of the same base are last-writer-wins
    with both files valid, which is exactly what a content-addressed
    cache directory needs (two processes storing the same key wrote the
    same bytes anyway).
    """
    failed = [cell.index for cell in result.cells if cell.error is not None]
    if failed:
        # An archive is a durable claim of complete results; a partial
        # sweep (quarantined service cells) must be re-run, not saved.
        raise ConfigError(
            f"cannot archive a study with failed cells {failed}; see "
            "StudyResult.errors for the per-cell reasons and re-run them"
        )
    json_path, npz_path = _paths(path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    cells = []
    for cell in result.cells:
        labels = list(cell.columns)
        for label, columns in cell.columns.items():
            for name, column in columns.items():
                arrays[f"{cell.index}{_KEY_SEP}{label}{_KEY_SEP}{name}"] = column
        cells.append(
            {
                "overrides": _jsonify(cell.overrides),
                "params": _jsonify(cell.params),
                "labels": labels,
                "rendered": cell.result.rendered,
                "raw": _jsonify(cell.result.raw),
            }
        )
    manifest = {
        "format": ARCHIVE_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "experiment": result.experiment_id,
        "kind": result.kind,
        "params": _jsonify(result.params),
        "axes": _jsonify(result.axes),
        "cells": cells,
        "columns": sorted(arrays),
        "column_meta": {
            key: {"dtype": column.dtype.str, "shape": list(column.shape)}
            for key, column in sorted(arrays.items())
        },
    }
    json_tmp, npz_tmp = _tmp_path(json_path), _tmp_path(npz_path)
    try:
        _write_npz(npz_tmp, arrays)
        json_tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(npz_tmp, npz_path)
        os.replace(json_tmp, json_path)
    finally:
        for leftover in (npz_tmp, json_tmp):
            with suppress(OSError):
                leftover.unlink()
    return str(json_path), str(npz_path)


_MANIFEST_TYPES = {
    "format": str,
    "schema_version": int,
    "experiment": str,
    "kind": str,
    "params": dict,
    "axes": dict,
    "cells": list,
    "columns": list,
    "column_meta": dict,
}

_CELL_TYPES = {
    "overrides": dict,
    "params": dict,
    "labels": list,
    "rendered": str,
    "raw": dict,
}


def _check_column_meta(
    meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray], json_path: Path
) -> None:
    """Validate payload arrays against the manifest's dtype/shape record.

    A truncated member, a hand-edited payload, or a dtype drift (e.g. an
    int64 column rewritten as int32) dies here with the offending column
    named, instead of as a numpy broadcast/astype error deep inside the
    analysis layer.
    """
    if sorted(meta) != sorted(arrays):
        raise ConfigError(
            f"study archive {json_path}: column_meta does not cover the "
            "manifest's columns"
        )
    for key, column in arrays.items():
        entry = meta[key]
        if not isinstance(entry, dict) or not isinstance(entry.get("dtype"), str) or not isinstance(
            entry.get("shape"), list
        ):
            raise ConfigError(
                f"study archive {json_path}: column_meta[{key!r}] must be an "
                "object with 'dtype' and 'shape'"
            )
        if column.dtype.str != entry["dtype"]:
            raise ConfigError(
                f"study archive {json_path}: column {key!r} has dtype "
                f"{column.dtype.str!r}, manifest says {entry['dtype']!r}"
            )
        if list(column.shape) != entry["shape"]:
            raise ConfigError(
                f"study archive {json_path}: column {key!r} has shape "
                f"{list(column.shape)}, manifest says {entry['shape']}"
            )


def _check(mapping: Mapping, types: Mapping[str, type], where: str) -> None:
    for key, expected in types.items():
        if key not in mapping:
            raise ConfigError(f"study archive {where}: missing key {key!r}")
        if not isinstance(mapping[key], expected):
            raise ConfigError(
                f"study archive {where}: {key!r} must be "
                f"{expected.__name__}, got {type(mapping[key]).__name__}"
            )


def load_study(path: str | Path) -> StudyResult:
    """Load a :class:`StudyResult` archived by :func:`save_study`."""
    from ..analysis.experiments import ExperimentResult
    from .study import StudyCell, StudyResult

    json_path, npz_path = _paths(path)
    if not json_path.exists():
        raise ConfigError(f"study archive not found: {json_path}")
    try:
        manifest = json.loads(json_path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"study archive {json_path} is not valid JSON: {exc}") from None
    if not isinstance(manifest, dict):
        raise ConfigError(f"study archive {json_path}: manifest must be an object")
    _check(manifest, _MANIFEST_TYPES, "manifest")
    if manifest["format"] != ARCHIVE_FORMAT:
        raise ConfigError(
            f"study archive {json_path}: format {manifest['format']!r} is not "
            f"{ARCHIVE_FORMAT!r}"
        )
    if manifest["schema_version"] != SCHEMA_VERSION:
        raise ConfigError(
            f"study archive {json_path}: schema version "
            f"{manifest['schema_version']} is not the supported {SCHEMA_VERSION}"
        )
    definition = get_experiment(manifest["experiment"])
    if manifest["kind"] != definition.kind:
        raise ConfigError(
            f"study archive {json_path}: kind {manifest['kind']!r} does not "
            f"match the registered {definition.kind!r}"
        )
    schema = definition.schema
    if not npz_path.exists():
        raise ConfigError(
            f"study archive payload not found: {npz_path} (torn archive: the "
            "manifest exists without its npz payload — the pair was partially "
            "copied or the payload deleted; saves are atomic, so re-run or "
            "re-copy the archive)"
        )
    try:
        # Hold the file handle ourselves: np.load on a truncated zip
        # raises while constructing the NpzFile, before anything owns
        # (and would close) the handle it opened from a path.
        with open(npz_path, "rb") as stream:
            with np.load(stream, allow_pickle=False) as payload:
                arrays = {key: payload[key] for key in payload.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError, KeyError) as exc:
        raise ConfigError(
            f"study archive payload {npz_path} is not a readable npz archive "
            f"(truncated or corrupt): {exc}"
        ) from None
    if sorted(arrays) != sorted(manifest["columns"]):
        raise ConfigError(
            f"study archive {json_path}: npz columns do not match the manifest"
        )
    _check_column_meta(manifest["column_meta"], arrays, json_path)
    cells = []
    for index, cell in enumerate(manifest["cells"]):
        if not isinstance(cell, dict):
            raise ConfigError(f"study archive cell {index}: must be an object")
        _check(cell, _CELL_TYPES, f"cell {index}")
        columns: dict[str, dict[str, np.ndarray]] = {
            label: {} for label in cell["labels"]
        }
        prefix = f"{index}{_KEY_SEP}"
        for key, column in arrays.items():
            if not key.startswith(prefix):
                continue
            label, name = key[len(prefix) :].rsplit(_KEY_SEP, 1)
            if label not in columns:
                raise ConfigError(
                    f"study archive cell {index}: column for unknown label "
                    f"{label!r}"
                )
            columns[label][name] = column
        overrides = {
            name: schema[name].coerce(value)
            for name, value in cell["overrides"].items()
        }
        cells.append(
            StudyCell(
                index=index,
                overrides=overrides,
                params=schema.resolve(cell["params"]),
                result=ExperimentResult(
                    manifest["experiment"], cell["rendered"], cell["raw"]
                ),
                columns=columns,
            )
        )
    axes = {
        name: [schema[name].coerce(value) for value in values]
        for name, values in manifest["axes"].items()
    }
    return StudyResult(
        experiment_id=manifest["experiment"],
        kind=manifest["kind"],
        params=schema.resolve(manifest["params"]),
        axes=axes,
        cells=cells,
    )
