"""Content-addressed study cache: resumable, incremental grids.

Every grid cell's :class:`~repro.study.study.StudyCell` is a pure
function of (experiment id, schema-coerced params, archive schema, and
the code that computes it) — PR 5's versioned archives made the result
bit-exact and serializable, so cell results are cacheable *by
construction*.  This module keys each cell by a content hash of exactly
those inputs and stores the cell as a normal single-cell
:func:`~repro.study.archive.save_study` archive plus a small meta
manifest:

    <root>/entries/<key>.json        one-cell StudyResult manifest
    <root>/entries/<key>.npz         dense batch columns (bit-exact)
    <root>/entries/<key>.meta.json   cache-level manifest (params,
                                     fingerprint, creation time)
    <root>/quarantine/...            corrupt entries, moved aside

:meth:`Study.run(cache=DIR) <repro.study.study.Study.run>` (or the
``REPRO_CACHE`` env / CLI ``--cache``/``--resume DIR``) consults the
cache per cell: hits are rebuilt from their archives and merged
bit-identically into the :class:`StudyResult`; only misses are
submitted to the execution engine.  A repeated sweep submits zero work
units; a widened or interrupted one submits only the delta cells.

Invalidation policy (strict, in the key — nothing is ever "updated in
place"):

* **params** — the full schema-resolved dict, canonically JSON-ified,
  so ``chunks="64KB"`` and ``chunks=65536`` share an entry and any
  actual value change (including the root ``seed``) is a new key;
* **code fingerprint** — a digest over every ``.py`` source in the
  ``repro`` package (:func:`code_fingerprint`).  Deliberately coarse:
  an edit anywhere in the package invalidates every entry, which
  trades redundant recomputation for a guarantee that a cache hit can
  never serve results a code change would have altered (the contex
  embedding-cache policy: strict invalidation beats clever dependency
  tracking that can be wrong);
* **archive schema + cache layout versions** — a format bump is a
  cold cache, never a migration.

Corrupt entries (torn by a pre-atomic writer, truncated by a full
disk, hand-edited) are *quarantined* on lookup — moved into
``<root>/quarantine/`` and treated as a miss — so one bad file costs
one recompute, not a crashed sweep.  ``repro cache {ls,gc,verify}``
expose the same machinery from the command line.

Concurrency: entries are written atomically (temp + ``os.replace``,
meta file last) and keys are content-addressed, so concurrent
``Study.run`` calls against one cache directory race only toward
writing identical bytes — last writer wins and every reader sees a
complete entry or none.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

from ..errors import ConfigError
from .archive import SCHEMA_VERSION, _jsonify, _tmp_path, load_study, save_study
from .registry import ExperimentDef, get_experiment

if TYPE_CHECKING:  # import cycle: study.py imports this module lazily
    from .study import StudyCell

__all__ = [
    "CACHE_FORMAT",
    "CACHE_VERSION",
    "CacheEntry",
    "CacheInfo",
    "StudyCache",
    "code_fingerprint",
    "resolve_cache",
]

#: Meta-manifest format tag — rejects foreign JSON handed to the cache.
CACHE_FORMAT = "repro-study-cache"

#: Bump on incompatible cache layout/key changes; old entries then
#: simply never hit (their keys embed the old version) and ``gc``
#: collects them.
CACHE_VERSION = 1

_META_SUFFIX = ".meta.json"


# ---------------------------------------------------------------------------
# Code fingerprint
# ---------------------------------------------------------------------------

#: Memo per package root: (stat signature, digest).  The signature is
#: every source file's (relpath, mtime_ns, size), so an edit — the
#: monkeypatched-module test does exactly this — invalidates the memo
#: without re-hashing on every cell lookup of a sweep.
_FINGERPRINT_MEMO: dict[str, tuple[tuple[tuple[str, int, int], ...], str]] = {}


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def code_fingerprint(root: str | Path | None = None) -> str:
    """Digest of every ``.py`` source under ``root`` (default: the
    installed ``repro`` package).

    The "modules backing the ExperimentDef" are, transitively, most of
    the package (registry definitions build campaigns over sim/, net/,
    core/, cdn/ …), so the fingerprint covers the whole package rather
    than chasing an import graph that could silently under-approximate.
    Hashing is over (relative path, file bytes) pairs in sorted order —
    independent of mtimes, so a fresh checkout of identical code shares
    the cache.
    """
    base = Path(root) if root is not None else _package_root()
    files = sorted(path for path in base.rglob("*.py"))
    stats = [path.stat() for path in files]
    signature = tuple(
        (path.relative_to(base).as_posix(), stat.st_mtime_ns, stat.st_size)
        for path, stat in zip(files, stats, strict=True)
    )
    memo = _FINGERPRINT_MEMO.get(str(base))
    if memo is not None and memo[0] == signature:
        return memo[1]
    digest = blake2b(digest_size=20)
    for path in files:
        digest.update(path.relative_to(base).as_posix().encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    _FINGERPRINT_MEMO[str(base)] = (signature, fingerprint)
    return fingerprint


# ---------------------------------------------------------------------------
# Run accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheInfo:
    """One ``Study.run``'s cache accounting (``StudyResult.cache_info``)."""

    hits: int
    misses: int
    #: Engine work units actually submitted (0 on a fully-cached rerun).
    submitted_units: int


@dataclass(frozen=True)
class CacheEntry:
    """One cache entry as seen by ``ls``/``gc``/``verify``."""

    key: str
    json_path: Path
    npz_path: Path
    meta_path: Path
    meta: dict[str, Any]

    def size_bytes(self) -> int:
        total = 0
        for path in (self.json_path, self.npz_path, self.meta_path):
            if path.exists():
                total += path.stat().st_size
        return total

    def complete(self) -> bool:
        return all(
            path.exists() for path in (self.json_path, self.npz_path, self.meta_path)
        )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


class StudyCache:
    """A content-addressed store of single-cell study archives."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def entries_dir(self) -> Path:
        return self.root / "entries"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StudyCache({str(self.root)!r})"

    # -- keying -------------------------------------------------------------

    def cell_key(
        self,
        definition: ExperimentDef,
        params: Mapping[str, Any],
        fingerprint: str | None = None,
    ) -> str:
        """The content hash addressing one cell's archive.

        ``params`` must already be schema-resolved (``Study`` always
        passes the full resolved dict, root seed included), so
        equivalent spellings of a value collapse to one key.
        """
        if fingerprint is None:
            fingerprint = code_fingerprint()
        payload = {
            "format": CACHE_FORMAT,
            "cache_version": CACHE_VERSION,
            "archive_schema": SCHEMA_VERSION,
            "experiment": definition.experiment_id,
            "kind": definition.kind,
            "params": _jsonify(dict(params)),
            "fingerprint": fingerprint,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return blake2b(canonical.encode(), digest_size=20).hexdigest()

    def _entry_paths(self, key: str) -> tuple[Path, Path, Path]:
        base = self.entries_dir / key
        return (
            Path(f"{base}.json"),
            Path(f"{base}.npz"),
            Path(f"{base}{_META_SUFFIX}"),
        )

    def entry_files(self, key: str) -> tuple[Path, Path]:
        """The ``(json, npz)`` archive paths behind one content key.

        The study service serves cache hits straight from these files
        (the entry *is* the wire format), so the broker never re-renders
        a cell just to ship bytes that already exist.  Callers should
        :meth:`lookup` first — this accessor does not validate.
        """
        json_path, npz_path, _meta = self._entry_paths(key)
        return json_path, npz_path

    # -- lookup / store -----------------------------------------------------

    def lookup(
        self,
        definition: ExperimentDef,
        params: Mapping[str, Any],
        fingerprint: str | None = None,
    ) -> "StudyCell | None":
        """The cached cell for (definition, params), or ``None``.

        A present-but-unreadable entry (truncated payload, manifest
        drift, wrong experiment behind the key) is quarantined and
        reported as a miss — the cache never raises on a bad entry and
        never serves one either.
        """
        key = self.cell_key(definition, params, fingerprint)
        json_path, npz_path, meta_path = self._entry_paths(key)
        if not meta_path.exists() or not json_path.exists():
            return None
        try:
            loaded = load_study(json_path)
            if loaded.experiment_id != definition.experiment_id:
                raise ConfigError(
                    f"cache entry {key} holds experiment "
                    f"{loaded.experiment_id!r}, expected "
                    f"{definition.experiment_id!r}"
                )
            cell = loaded.only()
            resolved = definition.schema.resolve(dict(params))
            if cell.params != resolved:
                raise ConfigError(
                    f"cache entry {key} params do not match its key"
                )
        except ConfigError:
            self._quarantine(key)
            return None
        return cell

    def store(
        self,
        definition: ExperimentDef,
        params: Mapping[str, Any],
        cell: "StudyCell",
        fingerprint: str | None = None,
    ) -> str:
        """Archive one finished cell under its content key; returns it.

        The archive pair is written atomically by ``save_study``; the
        meta manifest goes last (temp + replace) so a complete meta file
        implies a complete entry — readers and ``gc`` treat anything
        else as incomplete.
        """
        if fingerprint is None:
            fingerprint = code_fingerprint()
        from .study import StudyCell, StudyResult

        key = self.cell_key(definition, params, fingerprint)
        json_path, npz_path, meta_path = self._entry_paths(key)
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        single = StudyResult(
            experiment_id=definition.experiment_id,
            kind=definition.kind,
            params=dict(params),
            axes={},
            cells=[
                StudyCell(
                    index=0,
                    overrides={},
                    params=dict(params),
                    result=cell.result,
                    columns=cell.columns,
                )
            ],
        )
        save_study(single, self.entries_dir / key)
        meta = {
            "format": CACHE_FORMAT,
            "cache_version": CACHE_VERSION,
            "archive_schema": SCHEMA_VERSION,
            "key": key,
            "experiment": definition.experiment_id,
            "kind": definition.kind,
            "params": _jsonify(dict(params)),
            "fingerprint": fingerprint,
            "created_unix": int(time.time()),
        }
        meta_tmp = _tmp_path(meta_path)
        meta_tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(meta_tmp, meta_path)
        return key

    def _quarantine(self, key: str) -> None:
        """Move a bad entry's files aside so it costs one recompute."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for path in self._entry_paths(key):
            if path.exists():
                os.replace(path, self.quarantine_dir / path.name)

    # -- maintenance (repro cache {ls,gc,verify}) ---------------------------

    def entries(self) -> list[CacheEntry]:
        """Every entry with a meta manifest, sorted by key.

        Unreadable meta files surface with ``{"error": ...}`` so ``ls``
        shows them instead of hiding what ``gc`` would collect.
        """
        found = []
        if not self.entries_dir.is_dir():
            return []
        for meta_path in sorted(self.entries_dir.glob(f"*{_META_SUFFIX}")):
            key = meta_path.name[: -len(_META_SUFFIX)]
            json_path, npz_path, meta_path = self._entry_paths(key)
            try:
                meta = json.loads(meta_path.read_text())
                if not isinstance(meta, dict):
                    meta = {"error": "meta manifest is not an object"}
            except (OSError, json.JSONDecodeError) as exc:
                meta = {"error": str(exc)}
            found.append(
                CacheEntry(
                    key=key,
                    json_path=json_path,
                    npz_path=npz_path,
                    meta_path=meta_path,
                    meta=meta,
                )
            )
        return found

    def manifest(self) -> dict[str, Any]:
        """A JSON-safe summary of the whole cache (``cache ls --json``)."""
        entries = self.entries()
        return {
            "format": CACHE_FORMAT,
            "cache_version": CACHE_VERSION,
            "root": str(self.root),
            "fingerprint": code_fingerprint(),
            "entries": [
                {
                    **entry.meta,
                    "key": entry.key,
                    "size_bytes": entry.size_bytes(),
                    "complete": entry.complete(),
                }
                for entry in entries
            ],
        }

    def verify(self) -> tuple[list[str], list[tuple[str, str]]]:
        """Fully load and re-key every entry; returns (ok, bad) keys.

        ``bad`` carries (key, reason) pairs: unreadable archives,
        incomplete entries, and entries whose recomputed content key
        (from the meta manifest's own params + fingerprint) does not
        match their filename — i.e. a hand-renamed or cross-copied
        entry that lookup would never have produced.
        """
        ok: list[str] = []
        bad: list[tuple[str, str]] = []
        for entry in self.entries():
            if "error" in entry.meta and "format" not in entry.meta:
                bad.append((entry.key, f"unreadable meta: {entry.meta['error']}"))
                continue
            if not entry.complete():
                bad.append((entry.key, "incomplete entry (missing archive file)"))
                continue
            try:
                loaded = load_study(entry.json_path)
                cell = loaded.only()
                definition = get_experiment(str(entry.meta.get("experiment")))
                resolved = definition.schema.resolve(entry.meta.get("params", {}))
                if cell.params != resolved:
                    raise ConfigError("archived params do not match the meta manifest")
                expected = self.cell_key(
                    definition, resolved, str(entry.meta.get("fingerprint"))
                )
                if (
                    entry.meta.get("cache_version") == CACHE_VERSION
                    and entry.meta.get("archive_schema") == SCHEMA_VERSION
                    and expected != entry.key
                ):
                    raise ConfigError(
                        f"content key mismatch (expected {expected})"
                    )
            except ConfigError as exc:
                bad.append((entry.key, str(exc)))
                continue
            ok.append(entry.key)
        return ok, bad

    def gc(
        self,
        everything: bool = False,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> tuple[int, int]:
        """Collect garbage; returns (entries removed, bytes freed).

        Always removes: quarantined files, leftover temp files,
        incomplete entries, entries from other cache/archive versions,
        and entries whose fingerprint no longer matches the current code
        (``everything=True`` drops every entry instead).

        Retention bounds tighten that further over the *surviving*
        (valid, current-code) entries:

        * ``max_age_days`` evicts entries whose meta ``created_unix``
          is older than the cutoff;
        * ``max_bytes`` then evicts oldest-first (by ``created_unix``,
          key as tiebreak for determinism) until the survivors' total
          size fits the budget.

        ``now`` overrides the wall clock (tests).
        """
        removed = 0
        freed = 0
        current = code_fingerprint()
        if now is None:
            now = time.time()

        def _unlink(path: Path) -> None:
            nonlocal freed
            if path.exists():
                freed += path.stat().st_size
                path.unlink()

        def _drop(entry: CacheEntry) -> None:
            nonlocal removed
            removed += 1
            for path in (entry.json_path, entry.npz_path, entry.meta_path):
                _unlink(path)

        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                _unlink(path)
            self.quarantine_dir.rmdir()
        if self.entries_dir.is_dir():
            for path in sorted(self.entries_dir.glob("*.tmp-*")):
                _unlink(path)
        survivors: list[CacheEntry] = []
        for entry in self.entries():
            stale = (
                everything
                or not entry.complete()
                or "format" not in entry.meta
                or entry.meta.get("cache_version") != CACHE_VERSION
                or entry.meta.get("archive_schema") != SCHEMA_VERSION
                or entry.meta.get("fingerprint") != current
            )
            if stale:
                _drop(entry)
            else:
                survivors.append(entry)

        def _created(entry: CacheEntry) -> float:
            created = entry.meta.get("created_unix")
            # An unparseable timestamp sorts oldest, so a mangled meta
            # is first out the door under either bound.
            return float(created) if isinstance(created, (int, float)) else 0.0

        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            kept: list[CacheEntry] = []
            for entry in survivors:
                if _created(entry) < cutoff:
                    _drop(entry)
                else:
                    kept.append(entry)
            survivors = kept

        if max_bytes is not None:
            sized = [(entry, entry.size_bytes()) for entry in survivors]
            total = sum(size for _entry, size in sized)
            # Oldest first; content keys break created_unix ties so two
            # runs of the same gc evict the same entries.
            sized.sort(key=lambda pair: (_created(pair[0]), pair[0].key))
            for entry, size in sized:
                if total <= max_bytes:
                    break
                _drop(entry)
                total -= size
        return removed, freed


def resolve_cache(
    cache: str | Path | StudyCache | None = None,
) -> StudyCache | None:
    """Turn a ``--cache``/``REPRO_CACHE``-style value into a cache.

    ``None`` consults ``REPRO_CACHE``; an unset/empty variable means no
    caching (today's behavior).  A :class:`StudyCache` passes through.
    """
    if cache is None:
        env = os.environ.get("REPRO_CACHE", "").strip()
        if not env:
            return None
        cache = env
    if isinstance(cache, StudyCache):
        return cache
    return StudyCache(cache)
