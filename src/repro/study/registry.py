"""The experiment registry: every figure/table as one typed object.

Before this layer, adding a scenario meant editing three files — a
bespoke kwarg function in ``analysis/experiments.py``, a hand-wired
``EXPERIMENTS`` entry plus copy-pasted argparse flags in ``cli.py``,
and a benchmark importing the function by name.  The registry collapses
that to one :class:`ExperimentDef`:

* ``schema`` — the typed parameter surface (:mod:`repro.study.params`);
  the :class:`~repro.study.study.Study` facade, the generated CLI, and
  archive loading all validate through it;
* ``build`` — a pure function ``params -> ExperimentPlan``, where the
  plan couples an *unrun* :class:`~repro.sim.campaign.Campaign` (every
  configuration's work specs registered, no engine committed) with a
  ``render`` callable that turns the campaign's per-label results into
  the figure's :class:`~repro.analysis.experiments.ExperimentResult`.
  Keeping the campaign unrun is what lets ``Study.grid`` merge many
  cells into one pool submission;
* ``smoke_params`` — the tiny-scale overrides the CI registry-
  completeness gate runs every experiment with.

Definitions live next to their science in
:mod:`repro.analysis.experiments`; importing that module populates the
registry (and :func:`get_experiment` imports it lazily, so
``Study("fig3")`` works without ceremony).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from collections.abc import Callable, Mapping
from typing import Any, TYPE_CHECKING

from ..errors import ConfigError
from .params import ParamSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.experiments import ExperimentResult
    from ..sim.campaign import Campaign

__all__ = [
    "ExperimentDef",
    "ExperimentPlan",
    "KINDS",
    "experiment_ids",
    "get_experiment",
    "register",
]

#: Valid experiment kinds: ``single`` (deterministic pass, no trial
#: fan-out knob), ``trials`` (per-trial campaigns), ``population``
#: (whole multi-client populations as work units).
KINDS = ("single", "trials", "population")


@dataclass
class ExperimentPlan:
    """What one experiment cell submits and how it reads the results.

    ``campaign`` holds every configuration's spec batches but has not
    run; ``render`` maps the campaign's ``{label: result}`` dict to the
    finished :class:`ExperimentResult`.  The split is the contract that
    makes grids possible: N cells' campaigns are interleaved into one
    engine submission and each cell's ``render`` sees exactly the
    results it would have seen running alone.
    """

    campaign: "Campaign"
    render: Callable[[Mapping[str, Any]], "ExperimentResult"]


@dataclass(frozen=True)
class ExperimentDef:
    """One registered experiment: identity, typed schema, plan builder."""

    experiment_id: str
    title: str
    kind: str
    schema: ParamSchema
    build: Callable[[Mapping[str, Any]], ExperimentPlan]
    description: str = ""
    #: Tiny-scale overrides for the CI completeness gate (must run in
    #: seconds, serially).
    smoke_params: Mapping[str, Any] = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"experiment {self.experiment_id!r}: unknown kind "
                f"{self.kind!r}; expected one of {', '.join(KINDS)}"
            )
        # Smoke overrides must themselves satisfy the schema, so the
        # gate cannot silently drift from the declared surface.
        self.schema.resolve(self.smoke_params)


_REGISTRY: dict[str, ExperimentDef] = {}


def register(definition: ExperimentDef) -> ExperimentDef:
    """Add one definition to the registry (idempotent per id + object)."""
    existing = _REGISTRY.get(definition.experiment_id)
    if existing is not None and existing is not definition:
        raise ConfigError(
            f"experiment id {definition.experiment_id!r} is already registered"
        )
    _REGISTRY[definition.experiment_id] = definition
    return definition


def _ensure_builtins() -> None:
    """Populate the registry with the paper's experiments on demand."""
    if "fig1" not in _REGISTRY:
        from ..analysis import experiments as _experiments  # noqa: F401

        del _experiments
    if "x8" not in _REGISTRY:
        from ..scenarios import experiments as _scenario_experiments  # noqa: F401

        del _scenario_experiments


def get_experiment(experiment_id: str) -> ExperimentDef:
    """Look an experiment up by id, importing the built-ins if needed."""
    _ensure_builtins()
    definition = _REGISTRY.get(experiment_id)
    if definition is None:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(experiment_ids())}"
        )
    return definition


def experiment_ids() -> list[str]:
    """All registered experiment ids, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)
