"""The ``repro lint`` sub-command.

Exit codes follow the repo's ``main()`` conventions: ``0`` — no
unbaselined findings; ``1`` — findings to fix; ``2`` — usage error
(bad path, unknown rule id, malformed baseline).  ``--format json``
emits the versioned document from :mod:`repro.lint.findings` for CI
annotation tooling; the human format is one ``path:line:col: RULE
message`` line per finding.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence
from typing import TextIO

from .base import all_rules
from .baseline import DEFAULT_BASELINE, Baseline, load_baseline, write_baseline
from .engine import LintReport, run_lint
from .findings import render_json


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``lint`` sub-command to the top-level CLI parser."""
    parser = sub.add_parser(
        "lint",
        help="run the determinism/invariant static analyzer",
        description="AST-based analysis encoding the repo's runtime "
        "invariants (bit-identical backends, worker pickle protocol, "
        "kernel fast-lane discipline) as machine-checked rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (json is versioned; see DESIGN.md)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE[,RULE]",
        help="restrict to the named rule ids; repeatable",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report everything)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )


def _list_rules(out: TextIO) -> int:
    for rule in all_rules():
        print(f"{rule.id}  {rule.title}", file=out)
        print(f"        {rule.rationale}", file=out)
    return 0


def _render_human(report: LintReport, out: TextIO) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        f" ({report.baselined} baselined, {report.waived} waived)"
    )
    print(summary, file=out)
    for rule_id, path, context in report.stale_baseline:
        print(
            f"stale baseline entry: {rule_id} {path} {context!r} "
            "(fixed? refresh with --write-baseline)",
            file=sys.stderr,
        )


def command_lint(args: argparse.Namespace) -> int:
    """Handler for ``repro lint``; returns the process exit code."""
    if args.list_rules:
        return _list_rules(sys.stdout)
    select: list[str] = []
    for blob in args.select:
        select.extend(token for token in blob.split(",") if token.strip())

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        report = run_lint(args.paths, select=select, baseline=None)
        count = write_baseline(baseline_path, report.findings)
        print(
            f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
            f"to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline: Baseline | None = None
    if not args.no_baseline:
        baseline = load_baseline(baseline_path)
    report = run_lint(args.paths, select=select, baseline=baseline)

    if args.format == "json":
        sys.stdout.write(
            render_json(
                report.findings,
                baselined=report.baselined,
                waived=report.waived,
            )
        )
    else:
        _render_human(report, sys.stdout)
    return 0 if report.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(prog="repro-lint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    try:
        args = parser.parse_args(["lint", *(argv if argv is not None else sys.argv[1:])])
    except SystemExit as exc:
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    from ..errors import ConfigError

    try:
        return command_lint(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
