"""Rule plugin protocol and registry.

A rule is a class with an ``id``, a one-line ``title``, a ``rationale``
paragraph (rendered by ``repro lint --list-rules``), and a ``check``
method that yields :class:`~repro.lint.findings.Finding` objects for one
parsed module.  Rules register themselves with the :func:`rule`
decorator; the engine instantiates every registered rule once per run.

Rules never see waivers or the baseline — filtering is the engine's
job — and they must be deterministic: findings for a given source text
are a pure function of that text.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator
from typing import Type

from ..errors import ConfigError
from .findings import Finding

#: Directory components whose files carry the cross-backend bit-identity
#: guarantee: ambient nondeterminism (DET001) is forbidden there.
DETERMINISTIC_DIRS = frozenset({"sim", "net", "core", "cdn", "ext"})

#: Directory components whose classes sit on the event-kernel hot path
#: and must declare ``__slots__`` (SLT001); ``core`` is restricted to
#: the buffer/chunk ledgers via HOT_CORE_STEMS.
HOT_DIRS = frozenset({"net"})
HOT_CORE_STEMS = ("buffer", "chunks")

#: Modules allowed to touch scheduler internals (KER001): the kernel
#: itself.  Matched on the trailing path components.
KERNEL_INTERNAL_SUFFIXES = (
    "net/env.py",
    "net/calendar.py",
    "net/events.py",
    "net/simclock.py",
)


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    path: str  #: repo-relative posix path
    tree: ast.Module
    lines: list[str] = field(repr=False)

    def source_line(self, lineno: int) -> str:
        """The stripped text of a 1-based source line ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=lineno,
            col=col,
            rule=rule_id,
            message=message,
            context=self.source_line(lineno),
        )

    # -- path classification ------------------------------------------------

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.path.split("/"))

    def in_deterministic_path(self) -> bool:
        """True when the file carries the bit-identity guarantee."""
        return any(part in DETERMINISTIC_DIRS for part in self.parts[:-1])

    def in_hot_path(self) -> bool:
        """True for kernel-hot modules (``net/``, ``core/buffer|chunks``)."""
        directories = self.parts[:-1]
        if any(part in HOT_DIRS for part in directories):
            return True
        stem = self.parts[-1].rsplit(".", 1)[0]
        return "core" in directories and stem.startswith(HOT_CORE_STEMS)

    def is_kernel_internal(self) -> bool:
        """True for the modules that own the scheduler internals."""
        return self.path.endswith(KERNEL_INTERNAL_SUFFIXES)


class Rule:
    """Base class for rule plugins.  Subclass and decorate with @rule."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


#: The global rule registry, id -> rule class.  Populated at import of
#: :mod:`repro.lint.rules`; iteration is always over sorted ids so the
#: engine's finding order is independent of import order.
_REGISTRY: dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule plugin by its ``id``."""
    if not cls.id:
        raise ConfigError(f"rule class {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def select_rules(selected: Callable[[str], bool] | None = None) -> list[Rule]:
    """Instances of registered rules whose id passes ``selected``."""
    rules = all_rules()
    if selected is None:
        return rules
    return [r for r in rules if selected(r.id)]
