"""repro-lint: AST-based determinism & invariant analysis.

The simulator's hard guarantees — bit-identical results across
serial/process backends, pickle/shm IPC, and the three event kernels —
are enforced at runtime by expensive test walls.  This package encodes
the *static* half of those invariants as rule plugins over the python
AST, so a stray ``random.random()`` or an unsorted set feeding a demux
loop fails ``repro lint`` in milliseconds instead of a nightly sweep.

Public surface:

* :func:`repro.lint.engine.run_lint` — programmatic analysis;
* :class:`repro.lint.findings.Finding` — the result record;
* ``repro lint`` (see :mod:`repro.lint.cli`) — the CLI, with inline
  ``# replint: disable=RULE`` waivers and a checked-in baseline file
  for grandfathered findings.

Rule families: ``DET`` (determinism), ``WRK`` (worker pickle
protocol), ``KER`` (kernel API discipline), ``SLT`` (hot-path
``__slots__``).  ``repro lint --list-rules`` describes them.
"""

from . import rules  # noqa: F401  (importing registers the built-in rules)
from .base import ModuleContext, Rule, all_rules, rule, rule_ids
from .baseline import Baseline, load_baseline, write_baseline
from .engine import LintReport, iter_python_files, lint_file, run_lint
from .findings import JSON_SCHEMA_VERSION, Finding, render_json

__all__ = [
    "Baseline",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "render_json",
    "rule",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
