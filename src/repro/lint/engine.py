"""The analysis engine: walk files, parse, run rules, filter findings.

One :func:`run_lint` call is one analysis run: it resolves the target
paths to a sorted list of python files (sorted so finding order — and
therefore output and baselines — is deterministic across filesystems),
parses each once, hands the tree to every selected rule, and applies
the waiver and baseline filters.  Rules never see waivers or the
baseline; the engine owns all filtering so rule implementations stay
pure functions of the source text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

import ast

from ..errors import ConfigError
from .base import ModuleContext, Rule, rule_ids, select_rules
from .baseline import Baseline
from .findings import Finding
from .waivers import parse_waivers

#: Directories never descended into when expanding a directory target.
_SKIPPED_DIRS = frozenset(
    {".git", ".hypothesis", ".benchmarks", "__pycache__", "build", "dist"}
)

#: Pseudo-rule id for unparsable files (not waivable, not registrable).
PARSE_ERROR_RULE = "PARSE"


@dataclass
class LintReport:
    """The outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)  #: unbaselined, sorted
    baselined: int = 0
    waived: int = 0
    stale_baseline: list[tuple] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand targets to a sorted, de-duplicated list of ``.py`` files."""
    files: set[Path] = set()
    for target in paths:
        path = Path(target)
        if path.is_file():
            if path.suffix != ".py":
                raise ConfigError(f"not a python file: {path}")
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        else:
            raise ConfigError(f"no such file or directory: {path}")
    return sorted(files)


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path, rules: Sequence[Rule], root: Path | None = None
) -> tuple[list[Finding], int]:
    """Analyze one file: returns (kept findings, waived count)."""
    rel = _relative_posix(path, root or Path.cwd())
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"unreadable file {path}: {exc}") from None
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
            context=(exc.text or "").strip(),
        )
        return [finding], 0

    context = ModuleContext(path=rel, tree=tree, lines=lines)
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(context))

    waivers = parse_waivers(lines)
    kept = [f for f in raw if not waivers.waives(f)]
    return kept, len(raw) - len(kept)


def run_lint(
    paths: Sequence[str | Path],
    *,
    select: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
) -> LintReport:
    """Run the full analysis over ``paths``.

    ``select`` restricts to the named rule ids (unknown ids are a
    :class:`~repro.errors.ConfigError` — a typo'd selection silently
    checking nothing is worse than failing).  ``baseline`` filters
    grandfathered findings; ``root`` anchors the repo-relative paths in
    reports (defaults to the working directory).
    """
    if select:
        wanted = {token.upper() for token in select}
        unknown = wanted - set(rule_ids())
        if unknown:
            raise ConfigError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(rule_ids())}"
            )
        rules = select_rules(lambda rule_id: rule_id in wanted)
    else:
        rules = select_rules()

    report = LintReport()
    all_findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings, waived = lint_file(path, rules, root=root)
        all_findings.extend(findings)
        report.waived += waived
        report.files_checked += 1
    all_findings.sort()

    if baseline is not None:
        fresh, baselined, stale = baseline.apply(all_findings)
        report.findings = fresh
        report.baselined = baselined
        report.stale_baseline = stale
    else:
        report.findings = all_findings
    return report
