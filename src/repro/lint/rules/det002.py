"""DET002 — no bare iteration over sets on deterministic paths.

``set`` iteration order is a function of element hashes and insertion
history — stable within one process, but not something scheduling,
demux, or aggregation code may depend on (hash randomization is
disabled for strings here only because the test harness pins
``PYTHONHASHSEED`` in CI; int-heavy sets reorder under growth
patterns).  Anything order-sensitive must wrap the set in ``sorted()``
before iterating; order-*insensitive* reductions (``sum``, ``min``,
``max``, ``len``, ``any``, ``all``) are fine and not flagged.

Dict iteration is insertion-ordered and therefore deterministic when
insertion is; it is deliberately out of scope.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..base import ModuleContext, Rule, rule
from ..findings import Finding

_SET_BUILTINS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
#: Iteration wrappers that preserve (and therefore leak) set order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate"}
#: Consumers whose result is independent of traversal order, so a
#: comprehension feeding them may iterate a set bare.  ``sum`` is
#: deliberately absent: float addition is not associative, so summing a
#: set in hash order is exactly the last-ulp hazard this rule exists
#: to catch.
_ORDER_INSENSITIVE_CALLS = {
    "sorted",
    "set",
    "frozenset",
    "min",
    "max",
    "len",
    "any",
    "all",
}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _collect_set_names(tree: ast.Module) -> frozenset[str]:
    """Names statically assigned a set-typed value anywhere in the file.

    Name-level (not scope-aware) on purpose: a helper that rebinds
    ``pending`` from a set in one scope and a list in another is exactly
    the ambiguity this rule wants surfaced for an explicit ``sorted()``.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        value = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is not None and _is_set_expr(value, frozenset()):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _is_set_expr(node: ast.expr, set_names: frozenset[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_expr(func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


@rule
class UnsortedSetIteration(Rule):
    id = "DET002"
    title = "set iteration feeding order-sensitive code must be sorted()"
    rationale = (
        "set order is hash- and history-dependent; scheduling, demux, and "
        "aggregation loops must impose an explicit total order (sorted) or "
        "use an order-insensitive reduction."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_deterministic_path():
            return
        set_names = _collect_set_names(ctx.tree)

        def is_set(node: ast.expr) -> bool:
            return _is_set_expr(node, set_names)

        # Comprehensions consumed by an order-insensitive reduction
        # (e.g. ``sorted(k.__name__ for k in kinds)``) are exempt: the
        # consumer erases the traversal order.
        exempt_iters: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE_CALLS
            ):
                for argument in node.args:
                    if isinstance(
                        argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        for comp in argument.generators:
                            exempt_iters.add(id(comp.iter))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and is_set(node.iter):
                yield ctx.finding(
                    self.id,
                    node.iter,
                    "bare for-loop over a set; wrap the iterable in sorted() "
                    "to fix the traversal order",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if is_set(comp.iter) and id(comp.iter) not in exempt_iters:
                        yield ctx.finding(
                            self.id,
                            comp.iter,
                            "comprehension over a set; wrap the iterable in "
                            "sorted() to fix the traversal order",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                    and is_set(node.args[0])
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{func.id}() materializes set order; use sorted() "
                        "to fix it explicitly",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and not node.args
                    and is_set(func.value)
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        "set.pop() removes a hash-order-dependent element; "
                        "pop from a sorted list instead",
                    )
