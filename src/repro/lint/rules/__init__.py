"""Rule plugins.  Importing this package registers every built-in rule.

Adding a rule = adding a module here that defines a
:class:`~repro.lint.base.Rule` subclass decorated with
:func:`~repro.lint.base.rule`, and importing it below.  The registry is
keyed by rule id; ids are ``FAMILY###`` (DET = determinism, WRK =
worker protocol, KER = kernel discipline, SLT = slots/footprint).
"""

from . import det001, det002, det003, ker001, slt001, wrk001  # noqa: F401
