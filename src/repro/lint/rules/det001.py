"""DET001 — no ambient nondeterminism on deterministic paths.

The simulator's contract is that a trial is a pure function of its
``(seed, label)`` pair: serial and process backends, pickle and shm
IPC, and all three event kernels must produce byte-identical results.
Any read of ambient entropy or wall-clock time inside the simulated
world silently breaks that.  Randomness must come from
:class:`repro.rng.RngFactory` substreams and time from the simulated
environment clock (``env.now``).

Flagged inside ``sim/ net/ core/ cdn/ ext/`` paths:

* importing ``random``, ``secrets``, or ``uuid``;
* calling ``time.time`` / ``time.monotonic`` / ``time.perf_counter`` /
  ``time.time_ns``;
* calling ``datetime.now`` / ``datetime.utcnow`` / ``date.today``;
* calling ``os.urandom`` or ``os.getrandom``;
* calling ``numpy.random.default_rng`` / seeding helpers with no
  arguments (an unseeded generator is OS entropy).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..base import ModuleContext, Rule, rule
from ..findings import Finding

_BANNED_MODULES = {
    "random": "use repro.rng.RngFactory substreams instead",
    "secrets": "OS entropy breaks (seed, label) reproducibility",
    "uuid": "derive identifiers from the trial seed/label instead",
}

#: (object, attribute) call pairs that read ambient entropy or time.
_BANNED_CALLS = {
    ("time", "time"): "use the simulated clock (env.now)",
    ("time", "time_ns"): "use the simulated clock (env.now)",
    ("time", "monotonic"): "use the simulated clock (env.now)",
    ("time", "monotonic_ns"): "use the simulated clock (env.now)",
    ("time", "perf_counter"): "use the simulated clock (env.now)",
    ("time", "perf_counter_ns"): "use the simulated clock (env.now)",
    ("datetime", "now"): "use the simulated clock (env.now)",
    ("datetime", "utcnow"): "use the simulated clock (env.now)",
    ("date", "today"): "use the simulated clock (env.now)",
    ("os", "urandom"): "use repro.rng.RngFactory substreams instead",
    ("os", "getrandom"): "use repro.rng.RngFactory substreams instead",
}


def _dotted_tail(node: ast.expr) -> tuple[str, str] | None:
    """``a.b.c`` -> ("b", "c"): the last two components of a dotted ref."""
    if not isinstance(node, ast.Attribute):
        return None
    if isinstance(node.value, ast.Name):
        return (node.value.id, node.attr)
    if isinstance(node.value, ast.Attribute):
        return (node.value.attr, node.attr)
    return None


@rule
class AmbientNondeterminism(Rule):
    id = "DET001"
    title = "no ambient randomness or wall-clock reads on deterministic paths"
    rationale = (
        "sim/net/core/cdn/ext results must be bit-identical across backends, "
        "IPC modes, and kernels; entropy must flow from repro.rng and time "
        "from the environment clock."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_deterministic_path():
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"import of {alias.name!r} on a deterministic path; "
                            f"{_BANNED_MODULES[root]}",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in _BANNED_MODULES:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"import from {node.module!r} on a deterministic path; "
                        f"{_BANNED_MODULES[root]}",
                    )
            elif isinstance(node, ast.Call):
                tail = _dotted_tail(node.func)
                if tail in _BANNED_CALLS:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"call to {tail[0]}.{tail[1]}() reads ambient state; "
                        f"{_BANNED_CALLS[tail]}",
                    )
                elif (
                    tail is not None
                    and tail[1] == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        "unseeded default_rng() draws OS entropy; derive the "
                        "generator from repro.rng.RngFactory",
                    )
