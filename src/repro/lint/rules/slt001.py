"""SLT001 — hot-path classes must declare ``__slots__``.

Event-kernel throughput is dominated by object churn: events, timers,
flow handles, and per-chunk ledger records are allocated at fast-lane
rates (millions/minute), and a per-instance ``__dict__`` roughly
doubles their footprint and dirties the allocator.  PR 1 measured the
``__slots__`` sweep as a double-digit win on the TCP micro-benchmark —
this rule keeps new classes in ``net/`` and the ``core/buffer`` /
``core/chunks`` ledgers from silently regressing it.

Exempt: exceptions (message payload lives in ``BaseException``),
``Protocol`` / ABC interfaces, ``Enum`` family, ``NamedTuple`` /
``TypedDict``, and ``@dataclass(slots=True)`` (which generates the
declaration).  A plain ``@dataclass`` is flagged with a pointer at
``slots=True``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..base import ModuleContext, Rule, rule
from ..findings import Finding

_EXEMPT_BASE_SUFFIXES = (
    "Exception",
    "Error",
    "Warning",
    "Protocol",
    "Enum",
    "Flag",
    "NamedTuple",
    "TypedDict",
    "ABC",
)


def _terminal(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Protocol[T], Generic[T]
        return _terminal(node.value)
    return ""


def _declares_slots(class_def: ast.ClassDef) -> bool:
    for statement in class_def.body:
        if isinstance(statement, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in statement.targets
            ):
                return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_decorator(class_def: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, has_slots_true) from the decorator list."""
    for decorator in class_def.decorator_list:
        if _terminal(decorator) == "dataclass":
            return True, False
        if isinstance(decorator, ast.Call) and _terminal(decorator.func) == "dataclass":
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True, True
            return True, False
    return False, False


@rule
class MissingSlots(Rule):
    id = "SLT001"
    title = "hot-module classes must declare __slots__"
    rationale = (
        "net/ and core/buffer|chunks objects are allocated at event-kernel "
        "rates; a per-instance __dict__ doubles their footprint and costs "
        "double-digit throughput (PR 1 measurements)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_hot_path():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if any(
                _terminal(base).endswith(_EXEMPT_BASE_SUFFIXES)
                for base in node.bases
            ):
                continue
            if node.keywords:  # metaclass=ABCMeta and friends
                continue
            if _declares_slots(node):
                continue
            is_dataclass, has_slots = _dataclass_decorator(node)
            if is_dataclass and has_slots:
                continue
            if is_dataclass:
                yield ctx.finding(
                    self.id,
                    node,
                    f"dataclass {node.name!r} in a hot module without "
                    "slots=True; add @dataclass(slots=True)",
                )
            else:
                yield ctx.finding(
                    self.id,
                    node,
                    f"class {node.name!r} in a hot module without __slots__; "
                    "declare them (or inherit a slotted base and declare "
                    "__slots__ = ())",
                )
