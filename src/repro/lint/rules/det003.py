"""DET003 — no float equality on simulated times or priorities.

Simulated timestamps are accumulated floats (``now + delay`` chains,
closed-form wake-up schedules); two code paths that are mathematically
simultaneous can differ in the last ulp, so ``==``/``!=`` on them
encodes an invariant the arithmetic does not guarantee.  Ordering
comparisons (``<``, ``<=``) are how the kernel itself sequences events
and remain allowed; identity checks should compare the *integer* tie
counter or an epsilon band instead.

Heuristic: a comparison is flagged when either operand is a
non-integral float literal, or a name/attribute whose terminal segment
looks time- or priority-valued (``now``, ``when``, ``deadline``,
``delay``, ``priority``, a ``*_s`` / ``*_at`` / ``*_time`` /
``*_until`` suffix, …).  String/None/bool comparisons are never
flagged.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..base import ModuleContext, Rule, rule
from ..findings import Finding

_TIMEY_EXACT = frozenset(
    {"now", "when", "deadline", "delay", "delays", "priority", "prio", "t0", "t1"}
)
_TIMEY_SUFFIX = re.compile(r"_(s|at|time|until|deadline|delay|priority)$")


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_timey(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    name = name.lower().lstrip("_")
    return name in _TIMEY_EXACT or bool(_TIMEY_SUFFIX.search(name))


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_exempt(node: ast.expr) -> bool:
    """Operands whose equality is exact whatever the other side is."""
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bool))
    )


@rule
class FloatTimeEquality(Rule):
    id = "DET003"
    title = "no ==/!= on simulated times, delays, or priorities"
    rationale = (
        "simulated timestamps are accumulated floats; exact equality is a "
        "last-ulp coin flip across kernels and platforms — compare ordering, "
        "the integer tie counter, or an epsilon band."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_deterministic_path():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:], strict=False):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_exempt(left) or _is_exempt(right):
                    continue
                pair = (left, right)
                if any(_is_float_literal(side) for side in pair) or any(
                    _is_timey(side) for side in pair
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        "float equality on a time/priority-valued operand; "
                        "use ordering, the tie counter, or an epsilon band",
                    )
                    break
