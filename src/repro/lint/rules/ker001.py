"""KER001 — respect the Environment API and its fast lanes.

Two halves:

* **Bypass** — the scheduler's internals (``env._scheduler``, the
  cached ``_push`` bindings, ``_schedule_event``/``_schedule_resume``,
  calendar bucket state, the timer pool) are owned by the kernel
  modules (``net/env.py``, ``net/calendar.py``, ``net/events.py``,
  ``net/simclock.py``).  Anything else reaching for them skips the
  one-validation-per-schedule contract and couples itself to kernel
  data layout that PRs rewrite (heap → calendar → compiled).

* **Fast-lane advisory** — a bare ``yield env.timeout(...)`` statement
  allocates a fresh ``Timeout`` event per wait and discards it; per-
  chunk churners should use ``env.pooled_timeout(...)`` (recycled
  event, bit-identical dispatch order) or ``env.call_at`` for fire-and-
  forget wake-ups.  Sites that genuinely need a composable event
  (stored, raced with ``AnyOf``) keep ``env.timeout`` and waive or
  baseline the finding with a justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..base import ModuleContext, Rule, rule
from ..findings import Finding

#: Attribute names that are unambiguous scheduler internals.  Generic
#: spellings (``_now``, ``_n``, ``_counter``, ``_clock``) are excluded:
#: unrelated classes legitimately use them for their own state.
_SCHEDULER_INTERNALS = frozenset(
    {
        "_scheduler",
        "_push",
        "_push_callback",
        "_schedule_event",
        "_schedule_resume",
        "_buckets",
        "_dirty",
        "_cursor",
        "_far",
        "_heap",
        "_timer_pool",
        "_active_process",
    }
)


@rule
class KernelApiBypass(Rule):
    id = "KER001"
    title = "no scheduler-internal access; prefer the kernel fast lanes"
    rationale = (
        "scheduler internals are owned by net/env|calendar|events|simclock; "
        "external access skips delay validation and breaks when the kernel "
        "changes.  Discarded per-wait Timeouts should ride the pooled-timer "
        "or bare-callback fast lanes."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_kernel_internal():
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _SCHEDULER_INTERNALS
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"access to scheduler internal {node.attr!r} outside the "
                    "kernel modules; use the Environment API "
                    "(timeout/pooled_timeout/call_at/process/run)",
                )
            elif (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Yield)
                and isinstance(node.value.value, ast.Call)
                and isinstance(node.value.value.func, ast.Attribute)
                and node.value.value.func.attr == "timeout"
                and ctx.in_deterministic_path()
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    "bare `yield env.timeout(...)` discards a fresh Event per "
                    "wait; use env.pooled_timeout(...) (bit-identical "
                    "dispatch) or waive with a justification if the event "
                    "must compose",
                )
