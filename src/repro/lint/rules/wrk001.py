"""WRK001 — work specs must be module-level and picklable.

The execution engine ships :class:`~repro.sim.execution.WorkSpec`
conforming objects (``TrialSpec``, ``PopulationSpec``, the driver
specs) to worker processes by pickling.  Pickle resolves classes and
functions *by qualified name*, so a spec class defined inside a
function, or a spec field carrying a lambda/closure, imports fine in
the parent and explodes (or silently falls back to serial) the moment
a process backend is selected.  The engine's runtime pickle-probe
catches this per run; this rule catches it at review time.

Flagged (repo-wide):

* a ``*Spec`` class defined anywhere but module top level;
* a ``lambda`` anywhere inside a ``*Spec`` class body (field defaults,
  ``default_factory``, method bodies that stash callables on self);
* a ``SomethingSpec(...)`` call passing a ``lambda`` or a function or
  class *defined inside an enclosing function* as an argument.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..base import ModuleContext, Rule, rule
from ..findings import Finding


def _spec_name(name: str) -> bool:
    return name.endswith("Spec") and name != "Spec"


def _nested_definitions(tree: ast.Module) -> frozenset[str]:
    """Names of functions/classes defined inside some function body."""
    nested: set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_def = isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            if is_def and inside_function:
                nested.add(child.name)
            visit(
                child,
                inside_function
                or isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)),
            )

    visit(tree, False)
    return frozenset(nested)


@rule
class UnpicklableWorkSpec(Rule):
    id = "WRK001"
    title = "*Spec classes must be module-level with picklable fields"
    rationale = (
        "work specs cross the process boundary by pickle, which resolves "
        "by qualified name: nested spec classes, lambdas, and closures "
        "break the worker protocol (or silently force the serial fallback)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested_defs = _nested_definitions(ctx.tree)
        module_level = {
            node for node in ctx.tree.body if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _spec_name(node.name):
                if node not in module_level:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"spec class {node.name!r} is not module-level; pickle "
                        "resolves specs by qualified name",
                    )
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Lambda):
                        yield ctx.finding(
                            self.id,
                            inner,
                            f"lambda inside spec class {node.name!r}; lambdas "
                            "do not pickle — use a module-level function",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                callee = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else ""
                )
                if not _spec_name(callee):
                    continue
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                for argument in arguments:
                    if isinstance(argument, ast.Lambda):
                        yield ctx.finding(
                            self.id,
                            argument,
                            f"lambda passed to {callee}(); spec fields must "
                            "pickle — use a module-level function or a "
                            "declarative driver spec",
                        )
                    elif (
                        isinstance(argument, ast.Name)
                        and argument.id in nested_defs
                    ):
                        yield ctx.finding(
                            self.id,
                            argument,
                            f"{argument.id!r} is defined inside a function but "
                            f"passed to {callee}(); closures do not pickle — "
                            "hoist it to module level",
                        )
