"""The :class:`Finding` record and its JSON wire format.

A finding is one rule violation at one source location.  Findings are
value objects: the engine produces them, the waiver/baseline layers
filter them, and the CLI renders them — nothing mutates one after
creation.

The JSON output schema (``repro lint --format json``) is versioned so
downstream tooling (CI annotations, dashboards) can detect drift::

    {
      "version": 1,
      "findings": [
        {"rule": "DET001", "path": "src/repro/net/x.py",
         "line": 12, "col": 5, "message": "...", "context": "import random"},
        ...
      ],
      "counts": {"total": 1, "baselined": 0, "waived": 0}
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from collections.abc import Sequence

#: Bump when the JSON output layout changes shape (not when rules are
#: added — the findings list is open-ended by design).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sort order is (path, line, col, rule) — the field declaration order
    below — so rendered reports are stable across runs and platforms.
    """

    path: str  #: repo-relative posix path of the offending file
    line: int  #: 1-based line number
    col: int  #: 0-based column offset (ast convention)
    rule: str  #: rule identifier, e.g. ``"DET001"``
    message: str  #: human-readable explanation
    context: str  #: stripped source text of the offending line

    def render(self) -> str:
        """The canonical one-line human format: ``path:line:col: RULE msg``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers churn, source text does not.

        Two findings are "the same" for baseline purposes when the rule,
        the file, and the stripped offending line all match; the line
        number is carried for display only.
        """
        return (self.rule, self.path, self.context)


def render_json(
    findings: Sequence[Finding], *, baselined: int = 0, waived: int = 0
) -> str:
    """Serialize findings to the versioned JSON document (sorted)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [asdict(f) for f in sorted(findings)],
        "counts": {
            "total": len(findings),
            "baselined": baselined,
            "waived": waived,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
