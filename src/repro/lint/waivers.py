"""Inline waiver comments: ``# replint: disable=RULE[,RULE...]``.

A waiver suppresses findings of the named rules on the physical line
carrying the comment.  ``# replint: disable-file=RULE`` (anywhere in
the file) suppresses a rule for the whole module — reserved for cases
where the exemption is a property of the module, not one statement
(e.g. a compatibility shim).  ``all`` waives every rule.

Waivers are for *intentional, explained* exemptions: the comment should
sit next to a justification.  Bulk grandfathering of pre-existing
findings belongs in the baseline file instead
(:mod:`repro.lint.baseline`), which keeps waiver noise out of the code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .findings import Finding

_LINE_RE = re.compile(r"#\s*replint:\s*disable=([A-Za-z0-9_*,\s]+)")
_FILE_RE = re.compile(r"#\s*replint:\s*disable-file=([A-Za-z0-9_*,\s]+)")

#: Token waiving every rule.
ALL = "all"


def _parse_ids(blob: str) -> frozenset[str]:
    return frozenset(
        token.strip().upper() if token.strip().lower() != ALL else ALL
        for token in blob.split(",")
        if token.strip()
    )


@dataclass
class WaiverSet:
    """Parsed waivers for one file."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()

    def waives(self, finding: Finding) -> bool:
        rules = self.by_line.get(finding.line, frozenset()) | self.file_wide
        return finding.rule in rules or ALL in rules


def parse_waivers(lines: list[str]) -> WaiverSet:
    """Extract waiver comments from raw source lines.

    A plain regex over each line is sufficient (and fast): a ``#`` in a
    string literal could false-positive, but the only consequence is an
    unintended waiver on that line, which the baseline ratchet and
    review catch.  Findings, not waivers, are the safety-critical side.
    """
    waivers = WaiverSet()
    file_wide: set[str] = set()
    for number, text in enumerate(lines, start=1):
        if "replint" not in text:
            continue
        match = _LINE_RE.search(text)
        if match:
            waivers.by_line[number] = _parse_ids(match.group(1))
        match = _FILE_RE.search(text)
        if match:
            file_wide |= _parse_ids(match.group(1))
    waivers.file_wide = frozenset(file_wide)
    return waivers
