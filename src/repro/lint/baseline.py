"""Checked-in baseline of grandfathered findings.

The baseline lets ``repro lint`` adopt a new rule without a flag day:
pre-existing findings are recorded in ``replint-baseline.json`` and no
longer fail the build, while *new* findings of the same rule do.  The
expected workflow is a ratchet — entries are removed as code is fixed
and only added (with a justification in review) for deliberate
exemptions that would be noisy as inline waivers.

Matching is by ``(rule, path, stripped source line)``, not line number:
unrelated edits move code around without invalidating the baseline,
while editing the offending line itself re-surfaces the finding.
Identical lines in one file fold into a multiset (a ``count`` per key).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from collections.abc import Iterable, Sequence

from ..errors import ConfigError
from .findings import Finding

#: Bump when the baseline file layout changes shape.
BASELINE_VERSION = 1

#: Default baseline location, resolved against the working directory.
DEFAULT_BASELINE = "replint-baseline.json"


class Baseline:
    """A multiset of grandfathered finding keys."""

    def __init__(self, counts: Counter | None = None) -> None:
        self._counts: Counter = Counter(counts or ())

    def __len__(self) -> int:
        return sum(self._counts.values())

    def apply(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int, list[tuple]]:
        """Split findings into (fresh, baselined_count, stale_entries).

        ``fresh`` keeps the original sort order.  ``stale_entries`` are
        baseline keys with no matching finding any more — fixed code
        whose entries should be pruned (``--write-baseline``).
        """
        remaining = Counter(self._counts)
        fresh: list[Finding] = []
        baselined = 0
        for finding in findings:
            key = finding.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                fresh.append(finding)
        stale = sorted(key for key, count in remaining.items() if count > 0)
        return fresh, baselined, stale


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path}: expected version {BASELINE_VERSION}, "
            f"got {payload.get('version')!r}"
        )
    counts: Counter = Counter()
    for entry in payload.get("findings", ()):
        try:
            key = (entry["rule"], entry["path"], entry["context"])
            count = int(entry.get("count", 1))
        except (TypeError, KeyError) as exc:
            raise ConfigError(f"baseline {path}: malformed entry {entry!r}") from exc
        counts[key] += count
    return Baseline(counts)


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the entry count.

    Entries are aggregated by key and sorted, so the file is stable
    under reordering and friendly to diffs; a representative line
    number rides along for human navigation only.
    """
    counts: Counter = Counter()
    lines: dict[tuple, int] = {}
    for finding in findings:
        key = finding.key()
        counts[key] += 1
        lines.setdefault(key, finding.line)
    entries = [
        {
            "rule": rule,
            "path": file_path,
            "context": context,
            "line": lines[(rule, file_path, context)],
            "count": counts[(rule, file_path, context)],
        }
        for rule, file_path, context in sorted(counts)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return sum(counts.values())
