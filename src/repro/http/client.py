"""Simulated HTTP client: persistent secure connections over one interface.

This is the piece of MSPlayer's data plane that §4 describes: per
interface, open an HTTPS connection to a server, keep it alive, and
issue range requests on it.  The client charges the full cost sequence
(3WHS → TLS → per-request RTT → body transfer on the fluid link) and
returns both the parsed :class:`~repro.http.messages.Response` and the
:class:`~repro.net.tcp.TransferResult` timing record the schedulers
feed on.

Connections are cached per server address; losing one (path break,
server failure) evicts it so the next request redials.
"""

from __future__ import annotations


from ..errors import HTTPStatusError, NetworkError
from ..net.env import Environment
from ..net.iface import NetworkInterface
from ..net.tcp import TCPConnection, TransferResult
from ..net.topology import Host, Network
from .messages import Request, Response


class ClientSession:
    """One established secure connection to one server."""

    def __init__(self, connection: TCPConnection, host: Host) -> None:
        self.connection = connection
        self.host = host
        #: Timing of the session establishment, for Fig. 1 style traces.
        self.connected_at: float | None = None
        self.secured_at: float | None = None

    @property
    def usable(self) -> bool:
        return self.connection.connected and not self.connection.closed and self.host.up


class SimHTTPClient:
    """HTTP client bound to one network interface (one path)."""

    def __init__(self, env: Environment, network: Network, iface: NetworkInterface) -> None:
        self.env = env
        self.network = network
        self.iface = iface
        self._sessions: dict[str, ClientSession] = {}
        #: Wall-clock spent inside TLS+TCP handshakes, for overhead reports.
        self.handshake_time = 0.0
        #: Whether we hold a resumable TLS session ticket per server.
        self._tickets: set[str] = set()

    # -- session management -----------------------------------------------------

    def connect(self, address: str):
        """Process: establish (or reuse) a secure session to ``address``."""
        session = self._sessions.get(address)
        if session is not None and session.usable:
            return session
        started = self.env.now
        connection, host = self.network.connect(self.iface, address)
        session = ClientSession(connection, host)
        try:
            yield self.env.process(connection.connect())
            session.connected_at = self.env.now
            resumed = address in self._tickets and host.tls.resumption
            yield self.env.process(connection.secure_handshake(host.tls, resumed=resumed))
            session.secured_at = self.env.now
        except NetworkError:
            connection.close()
            raise
        self._tickets.add(address)
        self.handshake_time += self.env.now - started
        self._sessions[address] = session
        return session

    def disconnect(self, address: str) -> None:
        session = self._sessions.pop(address, None)
        if session is not None:
            session.connection.close()

    def disconnect_all(self) -> None:
        for address in list(self._sessions):
            self.disconnect(address)

    # -- requests -------------------------------------------------------------

    def request(self, address: str, request: Request):
        """Process: send ``request``; returns ``(response, timing)``.

        The server application attached to the host computes the
        response (and its think time); the response's *wire size* —
        headers plus body — is what rides the fluid link, so protocol
        overhead is charged faithfully.

        On any network failure the cached session is evicted before the
        exception propagates, so a retry dials fresh.
        """
        session = yield self.env.process(self.connect(address))
        host = session.host
        if host.app is None:
            raise NetworkError(f"host {address} has no application attached")
        app = host.app
        app.begin_request()
        try:
            response, think_time = app.handle(request, client_network=self.iface.network_id)
            timing = yield self.env.process(
                session.connection.exchange(response.wire_size(), server_delay=think_time)
            )
        except NetworkError:
            self.disconnect(address)
            raise
        finally:
            app.end_request()
        host.bytes_served += response.body_size
        return response, timing

    def get(self, address: str, request: Request, expect: tuple[int, ...] = (200, 206)):
        """Process: request + status check; returns ``(response, timing)``."""
        response, timing = yield self.env.process(self.request(address, request))
        if response.status not in expect:
            raise HTTPStatusError(response.status, response.reason)
        return response, timing

    # -- accounting ---------------------------------------------------------------

    @property
    def open_session_count(self) -> int:
        return sum(1 for s in self._sessions.values() if s.usable)


def body_timing(timing: TransferResult, response: Response) -> TransferResult:
    """Re-express a wire-level timing as body-bytes timing.

    The schedulers reason about *video bytes* per second; the wire
    timing includes header bytes.  Throughput measurements use the body
    size over the same duration.
    """
    return TransferResult(
        timing.requested_at, timing.first_byte_at, timing.completed_at, response.body_size
    )
