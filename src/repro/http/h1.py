"""Incremental, sans-IO HTTP/1.1 parser.

Feed it bytes as they arrive from *any* transport; it emits complete
messages.  The live asyncio backend (:mod:`repro.live`) uses it on both
sides of the connection; property-based tests drive it with arbitrary
re-chunkings of valid streams to guarantee that message boundaries
never depend on how the bytes were segmented — the classic source of
"works on localhost, breaks over DSL" bugs.

Scope: fixed-length bodies via ``Content-Length`` (every server in this
library sets it; ``Transfer-Encoding: chunked`` is rejected rather than
mis-parsed), single-digit-version HTTP/1.x start lines, pipelined
messages supported (leftover bytes roll into the next message).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HTTPParseError
from .headers import Headers
from .messages import Request, Response

#: Header-block size limit; a defense against unbounded buffering.
MAX_HEADER_BLOCK = 64 * 1024
#: Body size limit for parsed messages (video chunks max out well below).
MAX_BODY = 64 * 1024 * 1024

_BODILESS_STATUSES = frozenset({204, 304}) | frozenset(range(100, 200))


@dataclass
class ParsedMessage:
    """A complete message lifted off the wire."""

    kind: str  # "request" | "response"
    headers: Headers
    body: bytes = b""
    # request fields
    method: str = ""
    target: str = ""
    # response fields
    status: int = 0
    reason: str = ""

    def to_request(self) -> Request:
        if self.kind != "request":
            raise HTTPParseError("not a request")
        return Request(self.method, self.target, self.headers, self.body)

    def to_response(self) -> Response:
        if self.kind != "response":
            raise HTTPParseError("not a response")
        return Response(self.status, self.headers, self.body)


@dataclass
class H1Parser:
    """Stateful incremental parser for one direction of one connection."""

    role: str  # parse "request"s (server side) or "response"s (client side)
    #: When parsing responses: statuses of requests whose responses have
    #: no body by construction (HEAD).  Caller pushes ``True`` per HEAD
    #: request sent, in order.
    _head_queue: list[bool] = field(default_factory=list)
    _buffer: bytearray = field(default_factory=bytearray)
    _pending: ParsedMessage | None = None
    _body_remaining: int = 0

    def __post_init__(self) -> None:
        if self.role not in ("request", "response"):
            raise HTTPParseError(f"role must be 'request' or 'response', got {self.role!r}")

    def expect_head_response(self) -> None:
        """Record that the next response answers a HEAD (bodiless)."""
        self._head_queue.append(True)

    def expect_normal_response(self) -> None:
        self._head_queue.append(False)

    # -- feeding ---------------------------------------------------------------

    def feed(self, data: bytes) -> list[ParsedMessage]:
        """Consume bytes; return every message completed by them."""
        self._buffer.extend(data)
        messages: list[ParsedMessage] = []
        while True:
            message = self._try_extract()
            if message is None:
                break
            messages.append(message)
        return messages

    # -- internals ---------------------------------------------------------------

    def _try_extract(self) -> ParsedMessage | None:
        if self._pending is None:
            if not self._parse_header_block():
                return None
        assert self._pending is not None
        take = min(self._body_remaining, len(self._buffer))
        if take:
            self._pending.body += bytes(self._buffer[:take])
            del self._buffer[:take]
            self._body_remaining -= take
        if self._body_remaining > 0:
            return None
        message, self._pending = self._pending, None
        return message

    def _parse_header_block(self) -> bool:
        end = self._buffer.find(b"\r\n\r\n")
        if end == -1:
            if len(self._buffer) > MAX_HEADER_BLOCK:
                raise HTTPParseError("header block exceeds limit")
            return False
        block = bytes(self._buffer[:end])
        del self._buffer[: end + 4]
        lines = block.split(b"\r\n")
        start_line = lines[0].decode("latin-1")
        headers = self._parse_headers(lines[1:])

        if headers.get("transfer-encoding"):
            raise HTTPParseError("Transfer-Encoding not supported by this parser")

        if self.role == "request":
            message = self._parse_request_line(start_line, headers)
            length = headers.get_int("content-length") or 0
        else:
            message = self._parse_status_line(start_line, headers)
            is_head = self._head_queue.pop(0) if self._head_queue else False
            if message.status in _BODILESS_STATUSES or is_head:
                length = 0
            else:
                declared = headers.get_int("content-length")
                if declared is None:
                    raise HTTPParseError(
                        "response without Content-Length (close-delimited bodies unsupported)"
                    )
                length = declared
        if length < 0:
            raise HTTPParseError(f"negative Content-Length {length}")
        if length > MAX_BODY:
            raise HTTPParseError(f"body of {length} bytes exceeds limit")
        self._pending = message
        self._body_remaining = length
        return True

    @staticmethod
    def _parse_headers(lines: list[bytes]) -> Headers:
        headers = Headers()
        for raw in lines:
            if not raw:
                continue
            if raw[0:1] in (b" ", b"\t"):
                raise HTTPParseError("obsolete header line folding rejected")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise HTTPParseError(f"malformed header line {raw!r}")
            headers.add(name.strip(), value.strip())
        return headers

    @staticmethod
    def _parse_request_line(line: str, headers: Headers) -> ParsedMessage:
        parts = line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HTTPParseError(f"malformed request line {line!r}")
        method, target, _version = parts
        return ParsedMessage(kind="request", headers=headers, method=method, target=target)

    @staticmethod
    def _parse_status_line(line: str, headers: Headers) -> ParsedMessage:
        parts = line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise HTTPParseError(f"malformed status line {line!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise HTTPParseError(f"non-numeric status in {line!r}") from None
        reason = parts[2] if len(parts) == 3 else ""
        return ParsedMessage(kind="response", headers=headers, status=status, reason=reason)
