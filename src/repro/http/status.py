"""HTTP status codes and reason phrases (the subset a video CDN speaks)."""

from __future__ import annotations

#: Reason phrases for every status the emulated YouTube service emits.
STATUS_REASONS: dict[int, str] = {
    200: "OK",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    416: "Range Not Satisfiable",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Statuses after which MSPlayer's source manager should fail over to
#: another video server rather than retry the same one (§2 robustness).
FAILOVER_STATUSES = frozenset({429, 500, 502, 503, 504})

#: Statuses that indicate a stale/invalid token: re-bootstrap the path.
REAUTH_STATUSES = frozenset({401, 403})


def status_reason(code: int) -> str:
    """Reason phrase for ``code`` (generic fallback for unknown codes).

    >>> status_reason(206)
    'Partial Content'
    """
    return STATUS_REASONS.get(code, "Unknown")


def is_success(code: int) -> bool:
    """2xx check."""
    return 200 <= code < 300
