"""Case-insensitive HTTP header multimap.

Field names are case-insensitive per RFC 9110 §5.1; insertion order and
original spelling are preserved for faithful serialization.  Multiple
values for one field are supported (``Set-Cookie`` style), though the
video service only needs single values.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..errors import HTTPParseError

_ILLEGAL_NAME_CHARS = set(" \t\r\n:")


def _validate_name(name: str) -> None:
    if not name or any(ch in _ILLEGAL_NAME_CHARS for ch in name):
        raise HTTPParseError(f"illegal header name {name!r}")
    if not name.isascii():
        raise HTTPParseError(f"header names are ASCII tokens, got {name!r}")


def _validate_value(value: str) -> None:
    if "\r" in value or "\n" in value:
        raise HTTPParseError(f"illegal header value {value!r} (CR/LF injection)")
    try:
        value.encode("latin-1")
    except UnicodeEncodeError:
        raise HTTPParseError(f"header value not latin-1 encodable: {value!r}") from None


class Headers:
    """Ordered, case-insensitive multimap of header fields.

    >>> headers = Headers([("Content-Type", "video/mp4")])
    >>> headers["content-type"]
    'video/mp4'
    >>> headers.get("missing", "-")
    '-'
    """

    def __init__(self, items: Iterable[tuple[str, str]] | dict[str, str] | None = None) -> None:
        self._items: list[tuple[str, str]] = []
        if items:
            pairs = items.items() if isinstance(items, dict) else items
            for name, value in pairs:
                self.add(name, str(value))

    # -- mutation -------------------------------------------------------------

    def add(self, name: str, value: str) -> None:
        """Append a field, keeping any existing fields of the same name."""
        _validate_name(name)
        _validate_value(value)
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all fields named ``name`` with a single one."""
        _validate_name(name)
        _validate_value(value)
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self._items.append((name, value))

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    # -- access -----------------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        lowered = name.lower()
        for candidate, value in self._items:
            if candidate.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def get_int(self, name: str) -> int | None:
        """Parse an integer-valued field, raising on garbage."""
        raw = self.get(name)
        if raw is None:
            return None
        try:
            return int(raw.strip())
        except ValueError:
            raise HTTPParseError(f"non-integer value for {name}: {raw!r}") from None

    def __getitem__(self, name: str) -> str:
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return value

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        mine = [(n.lower(), v) for n, v in self._items]
        theirs = [(n.lower(), v) for n, v in other._items]
        return mine == theirs

    def copy(self) -> "Headers":
        return Headers(list(self._items))

    # -- wire format ---------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize as ``Name: value\\r\\n`` lines (no terminating blank line)."""
        return b"".join(f"{n}: {v}\r\n".encode("latin-1") for n, v in self._items)

    def wire_size(self) -> int:
        """Bytes this header block occupies on the wire."""
        return sum(len(n) + len(v) + 4 for n, v in self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Headers({self._items!r})"
