"""HTTP request/response message model and serialization.

One message class pair serves three consumers:

* the simulated client/server, which never serialize bodies but charge
  :meth:`wire_size` bytes to the fluid link so header overhead is
  accounted honestly (a 16 KB chunk response carries a ~2 % header tax
  that the Fig. 3 small-chunk penalty includes);
* the live asyncio backend, which serializes messages for real sockets;
* tests, which round-trip messages through the :mod:`repro.http.h1`
  parser.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from ..errors import HTTPParseError
from .headers import Headers
from .ranges import ByteRange, format_content_range, format_range_header
from .status import status_reason

SUPPORTED_METHODS = frozenset({"GET", "HEAD", "POST"})
HTTP_VERSION = "HTTP/1.1"


class Request:
    """An HTTP request."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: Headers | Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> None:
        method = method.upper()
        if method not in SUPPORTED_METHODS:
            raise HTTPParseError(f"unsupported method {method!r}")
        if not target.startswith("/"):
            raise HTTPParseError(f"request target must be origin-form, got {target!r}")
        self.method = method
        self.target = target
        self.headers = headers if isinstance(headers, Headers) else Headers(headers)
        self.body = body
        if body and "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(body)))

    # -- conveniences ---------------------------------------------------------

    @classmethod
    def get(
        cls, target: str, host: str, byte_range: ByteRange | None = None, **extra: str
    ) -> "Request":
        """Build a GET with the header set MSPlayer sends (§4).

        >>> request = Request.get("/video", "cdn.example", ByteRange(0, 65536))
        >>> request.headers["Range"]
        'bytes=0-65535'
        """
        headers = Headers(
            [
                ("Host", host),
                ("User-Agent", "MSPlayer/1.0"),
                ("Accept", "*/*"),
                ("Connection", "keep-alive"),
            ]
        )
        if byte_range is not None:
            headers.set("Range", format_range_header(byte_range))
        for name, value in extra.items():
            headers.set(name.replace("_", "-"), value)
        return cls("GET", target, headers)

    @property
    def path(self) -> str:
        """Target without the query string."""
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> dict[str, str]:
        """Parsed query parameters (last value wins, as servers do)."""
        if "?" not in self.target:
            return {}
        result: dict[str, str] = {}
        for pair in self.target.split("?", 1)[1].split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            result[key] = value
        return result

    # -- wire format -------------------------------------------------------------

    def encode(self) -> bytes:
        start_line = f"{self.method} {self.target} {HTTP_VERSION}\r\n".encode("latin-1")
        return start_line + self.headers.encode() + b"\r\n" + self.body

    def wire_size(self) -> int:
        """Total bytes on the wire (start line + headers + blank + body)."""
        start_line = len(self.method) + len(self.target) + len(HTTP_VERSION) + 4
        return start_line + self.headers.wire_size() + 2 + len(self.body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request {self.method} {self.target}>"


class Response:
    """An HTTP response.

    For the simulator, large video bodies are represented by
    ``body_size`` alone (``body=b""``) so that gigabytes of synthetic
    video never materialize in memory; the live backend always carries
    real bytes.
    """

    def __init__(
        self,
        status: int,
        headers: Headers | Mapping[str, str] | None = None,
        body: bytes = b"",
        body_size: int | None = None,
    ) -> None:
        self.status = int(status)
        self.reason = status_reason(self.status)
        self.headers = headers if isinstance(headers, Headers) else Headers(headers)
        self.body = body
        self.body_size = len(body) if body_size is None else int(body_size)
        if self.body_size < 0:
            raise HTTPParseError("body_size must be non-negative")
        if "content-length" not in self.headers:
            self.headers.set("Content-Length", str(self.body_size))

    # -- conveniences ----------------------------------------------------------

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "Response":
        """A JSON response, as the web proxy returns video info (§3.1)."""
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        return cls(status, Headers([("Content-Type", "application/json")]), body)

    @classmethod
    def partial_content(
        cls,
        byte_range: ByteRange,
        resource_size: int,
        content_type: str = "video/mp4",
        body: bytes = b"",
    ) -> "Response":
        """A 206 carrying ``byte_range`` of a resource (bodiless in sim)."""
        headers = Headers(
            [
                ("Content-Type", content_type),
                ("Content-Range", format_content_range(byte_range, resource_size)),
                ("Accept-Ranges", "bytes"),
            ]
        )
        return cls(206, headers, body=body, body_size=byte_range.length)

    @classmethod
    def error(cls, status: int, message: str = "") -> "Response":
        body = (message or status_reason(status)).encode("utf-8")
        return cls(status, Headers([("Content-Type", "text/plain")]), body)

    def parsed_json(self) -> object:
        """Decode a JSON body (raises HTTPParseError on garbage)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPParseError(f"invalid JSON body: {exc}") from exc

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    # -- wire format ---------------------------------------------------------------

    def encode(self) -> bytes:
        if self.body and len(self.body) != self.body_size:
            raise HTTPParseError(
                f"body/body_size mismatch: {len(self.body)} vs {self.body_size}"
            )
        start_line = f"{HTTP_VERSION} {self.status} {self.reason}\r\n".encode("latin-1")
        return start_line + self.headers.encode() + b"\r\n" + self.body

    def header_wire_size(self) -> int:
        """Bytes of status line + headers + blank line (excludes body)."""
        start_line = len(HTTP_VERSION) + 3 + len(self.reason) + 4
        return start_line + self.headers.wire_size() + 2

    def wire_size(self) -> int:
        return self.header_wire_size() + self.body_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Response {self.status} {self.reason} {self.body_size}B>"
