"""HTTP/1.1 substrate.

MSPlayer's data plane is plain HTTPS range requests over persistent
connections (§2, §4) — the whole point is that ordinary HTTP passes
middleboxes that break MPTCP.  This package supplies:

* message model and serialization (:mod:`repro.http.messages`),
  case-insensitive headers (:mod:`repro.http.headers`), status codes
  (:mod:`repro.http.status`);
* RFC 7233 byte-range parsing/formatting (:mod:`repro.http.ranges`) —
  the request primitive the chunk scheduler emits;
* an incremental, sans-IO HTTP/1.1 parser (:mod:`repro.http.h1`) used
  verbatim by the real asyncio backend (:mod:`repro.live`);
* simulated client/server glue (:mod:`repro.http.client`,
  :mod:`repro.http.server`) that charges realistic wire sizes and
  latencies on the :mod:`repro.net` substrate.
"""

from .headers import Headers
from .messages import Request, Response
from .ranges import (
    ByteRange,
    format_content_range,
    format_range_header,
    parse_content_range,
    parse_range_header,
)
from .status import STATUS_REASONS, status_reason
from .h1 import H1Parser, ParsedMessage
from .client import SimHTTPClient
from .server import SimHTTPServer, JSONResponse

__all__ = [
    "Headers",
    "Request",
    "Response",
    "ByteRange",
    "parse_range_header",
    "format_range_header",
    "parse_content_range",
    "format_content_range",
    "STATUS_REASONS",
    "status_reason",
    "H1Parser",
    "ParsedMessage",
    "SimHTTPClient",
    "SimHTTPServer",
    "JSONResponse",
]
