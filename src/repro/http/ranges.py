"""RFC 7233 byte ranges — the chunk scheduler's request primitive.

MSPlayer "relies on range requests to retrieve video chunks over
different paths" (§2).  A chunk assignment produced by the scheduler is
exactly a half-open byte interval ``[start, stop)`` of the video file,
serialized as the *inclusive* ``bytes=start-end`` wire form.  We keep
the half-open convention internally (it composes: adjacent chunks share
an endpoint) and convert at the wire boundary, with property tests
guaranteeing the round trip.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import RangeError


@dataclass(frozen=True, order=True)
class ByteRange:
    """A half-open byte interval ``[start, stop)`` within a resource."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise RangeError(f"range start must be non-negative, got {self.start}")
        if self.stop <= self.start:
            raise RangeError(f"empty or inverted range [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        return self.stop - self.start

    @property
    def last(self) -> int:
        """Inclusive last byte offset (the wire form's ``end``)."""
        return self.stop - 1

    def contains(self, offset: int) -> bool:
        return self.start <= offset < self.stop

    def overlaps(self, other: "ByteRange") -> bool:
        return self.start < other.stop and other.start < self.stop

    def adjacent_to(self, other: "ByteRange") -> bool:
        """True if the two ranges tile with no gap (either order)."""
        return self.stop == other.start or other.stop == self.start

    def split_at(self, offset: int) -> tuple["ByteRange", "ByteRange"]:
        """Split into two ranges at an interior offset."""
        if not (self.start < offset < self.stop):
            raise RangeError(f"split offset {offset} outside ({self.start}, {self.stop})")
        return ByteRange(self.start, offset), ByteRange(offset, self.stop)

    def clamp(self, resource_size: int) -> "ByteRange":
        """Clip to a resource of ``resource_size`` bytes (RFC 7233 §2.1).

        Raises :class:`~repro.errors.RangeError` if nothing remains
        (start beyond end of resource → 416).
        """
        if self.start >= resource_size:
            raise RangeError(
                f"range [{self.start}, {self.stop}) unsatisfiable for size {resource_size}"
            )
        return ByteRange(self.start, min(self.stop, resource_size))

    def __str__(self) -> str:
        return f"[{self.start}, {self.stop})"


_RANGE_HEADER_RE = re.compile(r"^bytes=(\d*)-(\d*)$")


def format_range_header(byte_range: ByteRange) -> str:
    """Render the ``Range`` request header value.

    >>> format_range_header(ByteRange(0, 1024))
    'bytes=0-1023'
    """
    return f"bytes={byte_range.start}-{byte_range.last}"


def parse_range_header(value: str, resource_size: int | None = None) -> ByteRange:
    """Parse a single-range ``Range`` header value.

    Supports the three RFC forms: ``bytes=a-b``, ``bytes=a-`` (open
    ended; needs ``resource_size``), and ``bytes=-n`` (suffix; needs
    ``resource_size``).  Multi-range requests are rejected — real video
    players never issue them and the servers here answer 416.

    >>> parse_range_header("bytes=0-1023")
    ByteRange(start=0, stop=1024)
    >>> parse_range_header("bytes=-500", resource_size=2000)
    ByteRange(start=1500, stop=2000)
    """
    if "," in value:
        raise RangeError(f"multi-range requests not supported: {value!r}")
    match = _RANGE_HEADER_RE.match(value.strip())
    if match is None:
        raise RangeError(f"malformed Range header: {value!r}")
    first, last = match.group(1), match.group(2)
    if first and last:
        start, end = int(first), int(last)
        if end < start:
            raise RangeError(f"inverted range in {value!r}")
        return ByteRange(start, end + 1)
    if first:
        if resource_size is None:
            raise RangeError(f"open-ended range {value!r} needs the resource size")
        return ByteRange(int(first), resource_size).clamp(resource_size)
    if last:
        if resource_size is None:
            raise RangeError(f"suffix range {value!r} needs the resource size")
        suffix = int(last)
        if suffix == 0:
            raise RangeError("zero-length suffix range")
        start = max(resource_size - suffix, 0)
        return ByteRange(start, resource_size)
    raise RangeError(f"malformed Range header: {value!r}")


_CONTENT_RANGE_RE = re.compile(r"^bytes (\d+)-(\d+)/(\d+|\*)$")


def format_content_range(byte_range: ByteRange, resource_size: int | None) -> str:
    """Render the ``Content-Range`` response header value.

    >>> format_content_range(ByteRange(0, 1024), 4096)
    'bytes 0-1023/4096'
    """
    total = str(resource_size) if resource_size is not None else "*"
    return f"bytes {byte_range.start}-{byte_range.last}/{total}"


def parse_content_range(value: str) -> tuple[ByteRange, int | None]:
    """Parse ``Content-Range``, returning the range and total size (or None).

    >>> parse_content_range("bytes 0-1023/4096")
    (ByteRange(start=0, stop=1024), 4096)
    """
    match = _CONTENT_RANGE_RE.match(value.strip())
    if match is None:
        raise RangeError(f"malformed Content-Range: {value!r}")
    start, last, total = match.groups()
    byte_range = ByteRange(int(start), int(last) + 1)
    return byte_range, (None if total == "*" else int(total))


def coalesce(ranges: list[ByteRange]) -> list[ByteRange]:
    """Merge overlapping/adjacent ranges into a minimal sorted cover.

    Used by the chunk ledger to track which parts of the video have
    been received, independent of chunk arrival order.

    >>> coalesce([ByteRange(10, 20), ByteRange(0, 10), ByteRange(30, 40)])
    [ByteRange(start=0, stop=20), ByteRange(start=30, stop=40)]
    """
    if not ranges:
        return []
    merged: list[ByteRange] = []
    for current in sorted(ranges, key=lambda r: (r.start, r.stop)):
        if merged and current.start <= merged[-1].stop:
            previous = merged.pop()
            merged.append(ByteRange(previous.start, max(previous.stop, current.stop)))
        else:
            merged.append(current)
    return merged
