"""Simulated HTTP server glue.

A :class:`SimHTTPServer` adapts an *application* — a plain callable
``(Request, client_network) -> Response`` — onto a
:class:`~repro.net.topology.Host`.  The server charges a service-time
model on top of whatever the application does: a fixed dispatch cost
plus a per-byte cost for assembling large responses, roughly an Apache
worker reading the video file off disk (the testbed ran Apache on Linux
3.5, §5).

Applications are synchronous and pure with respect to simulated time;
all *time* is charged by the server model and the network.  This split
keeps application logic (token checks, JSON building, range slicing)
unit-testable without an event loop.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

from ..errors import ConfigError
from ..net.topology import Host
from .messages import Request, Response

#: Application signature: request + originating network id → response.
AppCallable = Callable[[Request, str], Response]


class ServerApp(Protocol):
    """What hosts expect to have attached (duck-typed by SimHTTPServer)."""

    def handle(self, request: Request, client_network: str) -> tuple[Response, float]:
        """Return the response and the server think time in seconds."""
        ...  # pragma: no cover


class JSONResponse(Response):
    """Alias retained for readability at call sites building JSON bodies."""


class SimHTTPServer:
    """Attach an application to a host with a service-time model."""

    def __init__(
        self,
        host: Host,
        app: AppCallable,
        base_service_time: float = 0.002,
        per_megabyte_service_time: float = 0.001,
        overload_threshold: int | None = None,
        overload_penalty: float = 0.050,
    ) -> None:
        if base_service_time < 0 or per_megabyte_service_time < 0:
            raise ConfigError("service times must be non-negative")
        self.host = host
        self.app = app
        self.base_service_time = base_service_time
        self.per_megabyte_service_time = per_megabyte_service_time
        #: Concurrent-request count beyond which each request pays an
        #: extra queueing penalty — the "server demand surge" effect the
        #: paper's source-diversity argument guards against (§2).
        self.overload_threshold = overload_threshold
        self.overload_penalty = overload_penalty
        self._in_flight = 0
        self.requests_served = 0
        host.app = self

    def begin_request(self) -> None:
        """Mark a request in flight (the client calls this around the
        whole exchange, so concurrent transfers count toward overload)."""
        self._in_flight += 1

    def end_request(self) -> None:
        self._in_flight = max(self._in_flight - 1, 0)

    def handle(self, request: Request, client_network: str) -> tuple[Response, float]:
        """Run the application and compute the think time to charge."""
        response = self.app(request, client_network)
        think = (
            self.base_service_time
            + self.per_megabyte_service_time * response.body_size / (1024 * 1024)
        )
        if (
            self.overload_threshold is not None
            and self._in_flight > self.overload_threshold
        ):
            think += self.overload_penalty * (self._in_flight - self.overload_threshold)
        self.requests_served += 1
        return response, think

    @property
    def in_flight(self) -> int:
        return self._in_flight
