"""EXP-X6 — server-selection policies under replicated client populations.

The operational side of §2's source-diversity argument: with many
MSPlayer clients arriving together, YouTube's server selection decides
whether replicas share the load.  Compares the three policies in
:mod:`repro.cdn.selection` on load imbalance (max/mean bytes across
video servers) and client start-up delay, with overloadable servers.

Since the population-campaign layer, the workload is flash-crowd sized:
``replicates`` independently seeded populations per policy (each whole
population one parallel work unit), infeasible serially at paper scale.
The bench times the same campaign serial vs ``--jobs auto``, asserts
the two are byte-identical, and archives the wall clocks + speedup in
``benchmarks/results/BENCH_x6_population.json`` next to the rendered
panel in ``benchmarks/results/x6.txt``.  The ≥2× speedup floor only
applies with ≥4 CPUs and a full (non ``--smoke``) run — shared CI
runners are too noisy to gate ratios on, but they still measure and
archive.
"""

import json
import os
import time

from conftest import RESULTS_DIR, trials

from repro.study import run_experiment

RESULT_FILE = RESULTS_DIR / "BENCH_x6_population.json"


def run_comparison(clients: int, replicates: int, jobs):
    result = run_experiment("x6", replicates=replicates, clients=clients, jobs=jobs)
    return result.rendered, result.raw


def test_x6_selection_policies(benchmark, record_result, smoke):
    clients = 6 if smoke else 12
    # REPRO_TRIALS scales the replicate count like it scales trial
    # counts elsewhere; the paper-fidelity default is 20 (§5.2).
    replicates = 2 if smoke else trials(20)

    serial_start = time.perf_counter()
    rendered, raw = run_comparison(clients, replicates, "serial")
    serial_s = time.perf_counter() - serial_start

    auto_start = time.perf_counter()
    auto_rendered, auto_raw = benchmark.pedantic(
        run_comparison, args=(clients, replicates, "auto"), rounds=1, iterations=1
    )
    auto_s = time.perf_counter() - auto_start
    record_result("x6", rendered)

    # Determinism before speed: population sharding changes nothing.
    assert auto_rendered == rendered
    assert auto_raw == raw

    speedup = serial_s / auto_s
    record = {
        "schema": "x6_population/v1",
        "cpu_count": os.cpu_count(),
        "smoke": smoke,
        "clients": clients,
        "replicates": replicates,
        "policies": 3,
        "serial_s": round(serial_s, 4),
        "auto_s": round(auto_s, 4),
        "auto_speedup": round(speedup, 3),
        "populations_per_sec_serial": round(3 * replicates / serial_s, 2),
        "populations_per_sec_auto": round(3 * replicates / auto_s, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    # Static selection starves the backup replicas.
    assert raw["static"]["imbalance_mean"] > 2.0
    # Rotation spreads the population across replicas.
    assert raw["rotate"]["imbalance_mean"] < raw["static"]["imbalance_mean"] * 0.6
    # Better balance translates into better (or equal) start-up under
    # overloadable servers.
    assert (
        raw["rotate"]["median_startup_s"] <= raw["static"]["median_startup_s"] * 1.05
    )
    # Everybody finishes pre-buffering under every policy.
    for policy in raw:
        assert raw[policy]["completed"] == raw[policy]["sessions"], policy

    # Whole-population sharding is embarrassingly parallel, so the
    # campaign should scale with cores; single-core runners and smoke
    # passes measure and archive without gating.
    cpus = os.cpu_count() or 1
    if not smoke and cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x population-campaign speedup on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )
