"""EXP-X6 — server-selection policies under a client population.

The operational side of §2's source-diversity argument: with several
MSPlayer clients arriving together, YouTube's server selection decides
whether replicas share the load.  Compares the three policies in
:mod:`repro.cdn.selection` on load imbalance (max/mean bytes across
video servers) and client start-up delay, with overloadable servers.
"""

import numpy as np
from conftest import trials

from repro.analysis.tables import format_table
from repro.ext.multi_client import MultiClientExperiment
from repro.sim.profiles import youtube_profile


def run_comparison(clients: int):
    experiment = MultiClientExperiment(
        youtube_profile,
        client_count=clients,
        video_duration_s=120.0,
        overload_threshold=2,
    )
    results = experiment.compare(("static", "rotate", "least_loaded"))
    rows = []
    raw = {}
    for policy, result in results.items():
        delays = result.startup_delays()
        raw[policy] = {
            "imbalance": result.load_imbalance,
            "median_startup_s": float(np.median(delays)),
            "completed": len(delays),
        }
        rows.append(
            {
                "policy": policy,
                "load imbalance (max/mean)": f"{result.load_imbalance:.2f}",
                "median start-up (s)": f"{np.median(delays):.2f}",
                "sessions": f"{len(delays)}/{clients}",
            }
        )
    rendered = format_table(
        rows,
        title=f"EXP-X6 — {clients} simultaneous clients, overloadable servers",
    )
    return rendered, raw


def test_x6_selection_policies(benchmark, record_result):
    clients = max(trials() // 2, 6)
    rendered, raw = benchmark.pedantic(
        run_comparison, args=(clients,), rounds=1, iterations=1
    )
    record_result("x6", rendered)

    # Static selection starves the backup replicas.
    assert raw["static"]["imbalance"] > 2.0
    # Rotation spreads the population across replicas.
    assert raw["rotate"]["imbalance"] < raw["static"]["imbalance"] * 0.6
    # Better balance translates into better (or equal) start-up under
    # overloadable servers.
    assert (
        raw["rotate"]["median_startup_s"]
        <= raw["static"]["median_startup_s"] * 1.05
    )
    # Everybody finishes pre-buffering under every policy.
    for policy in raw:
        assert raw[policy]["completed"] == clients, policy
