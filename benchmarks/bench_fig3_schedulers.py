"""EXP-F3 — Fig. 3: scheduler × pre-buffer duration × initial chunk size.

Paper claims (§5.2):
* download time decreases as the initial chunk size grows (request
  overhead amortizes) — strongest for the Ratio baseline, which never
  adapts the slow path's chunk away from B;
* the dynamic schedulers (Harmonic, EWMA) beat the Ratio baseline in
  most cells ("the baseline scheduler does not perform well");
* Harmonic at 256 KB performs close to 1 MB, which is why the paper
  defaults to 256 KB.

Shape assertions below mirror those claims.  One paper claim — Ratio
showing the *highest variability* — does not reproduce under our
calibrated testbed profile (see EXPERIMENTS.md, deviation D2): our
simulated links drift more gently than the authors' real WiFi/LTE, and
gentle drift is the one regime where a memoryless ratio rule is steady.
We assert instead the robust form: Ratio's worst cell is far worse than
the dynamic schedulers' worst cell.
"""

from conftest import jobs, run_study, trials
from repro.units import KB, MB, format_size

CHUNKS = (16 * KB, 64 * KB, 256 * KB, 1 * MB)
PREBUFFERS = (20.0, 40.0, 60.0)


def test_fig3_scheduler_sweep(benchmark, record_result):
    result = run_study(benchmark, "fig3", trials=trials(), jobs=jobs())
    record_result("fig3", result.rendered)
    raw = result.raw

    def median(scheduler, chunk, prebuffer):
        return raw[f"{scheduler}/{format_size(chunk)}/{prebuffer:.0f}s"]["median"]

    # (1a) Ratio never adapts its base chunk: the 16 KB → 1 MB
    # improvement is large at every duration.
    for prebuffer in PREBUFFERS:
        assert median("ratio", 1 * MB, prebuffer) < 0.8 * median(
            "ratio", 16 * KB, prebuffer
        ), prebuffer

    # (1b) Dynamic schedulers adapt away from the initial size, but
    # 16 KB still never *beats* larger chunks by a meaningful margin.
    for scheduler in ("harmonic", "ewma"):
        for prebuffer in PREBUFFERS:
            smallest = median(scheduler, 16 * KB, prebuffer)
            for chunk in (256 * KB, 1 * MB):
                assert median(scheduler, chunk, prebuffer) <= 1.10 * smallest, (
                    scheduler,
                    prebuffer,
                    format_size(chunk),
                )

    # (2) Dynamic schedulers beat the baseline in the majority of cells.
    wins = 0
    cells = 0
    for chunk in CHUNKS:
        for prebuffer in PREBUFFERS:
            cells += 1
            best_dynamic = min(
                median("harmonic", chunk, prebuffer), median("ewma", chunk, prebuffer)
            )
            if best_dynamic <= median("ratio", chunk, prebuffer):
                wins += 1
    assert wins / cells >= 0.6, f"dynamic schedulers won only {wins}/{cells} cells"

    # (3) "The baseline scheduler does not perform well": its worst
    # configuration is far worse than the dynamic schedulers' worst.
    def worst(scheduler):
        return max(median(scheduler, c, p) for c in CHUNKS for p in PREBUFFERS)

    assert worst("ratio") > 1.3 * max(worst("harmonic"), worst("ewma"))


def test_fig3_harmonic_256k_matches_1mb(benchmark, record_result):
    """§5.2: harmonic at 256 KB performs close to 1 MB — the reason the
    paper defaults to 256 KB (smaller bursts)."""
    result = run_study(
        benchmark,
        "fig3",
        trials=trials(),
        jobs=jobs(),
        prebuffers=(40.0,),
        chunks=(256 * KB, 1 * MB),
        schedulers=("harmonic",),
    )
    record_result("fig3_256k_vs_1mb", result.rendered)
    m256 = result.raw["harmonic/256KB/40s"]["median"]
    m1m = result.raw["harmonic/1MB/40s"]["median"]
    assert m256 <= 1.35 * m1m


def test_fig3_request_overhead_mechanism(benchmark, record_result):
    """The mechanism behind the chunk-size trend: small chunks mean many
    more range requests for the same bytes (each paying an RTT)."""
    from repro.core.config import PlayerConfig
    from repro.sim.driver import MSPlayerDriver
    from repro.sim.profiles import testbed_profile
    from repro.sim.scenario import Scenario, ScenarioConfig

    def run():
        counts = {}
        for chunk in (16 * KB, 1 * MB):
            scenario = Scenario(
                testbed_profile(), seed=12, config=ScenarioConfig(video_duration_s=120.0)
            )
            config = PlayerConfig(scheduler="ratio", base_chunk_bytes=chunk)
            outcome = MSPlayerDriver(scenario, config, stop="prebuffer").run()
            counts[chunk] = sum(outcome.requests_by_path.values())
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts[16 * KB] > 5 * counts[1 * MB]
    record_result(
        "fig3_mechanism",
        "Fig. 3 mechanism — range requests issued for a 40 s pre-buffer "
        f"(Ratio): 16KB chunks -> {counts[16 * KB]} requests, "
        f"1MB chunks -> {counts[1 * MB]} requests",
    )
