"""EXP-X3 — estimator ablation (§3.3's harmonic-mean rationale).

On a trace with occasional 8× bursts, the harmonic mean stays glued to
the sustainable rate while arithmetic-style estimators (EWMA, sliding
window, last-sample) are dragged upward by the outliers — the exact
property the paper cites [19] for choosing it.
"""

from conftest import jobs, run_study


def test_x3_estimator_burst_robustness(benchmark, record_result):
    result = run_study(benchmark, "x3", jobs=jobs())
    record_result("x3", result.rendered)
    raw = result.raw

    # Harmonic tracks the sustainable rate best, by a wide margin.
    assert raw["harmonic"] < raw["ewma"]
    assert raw["harmonic"] < raw["window"]
    assert raw["harmonic"] < raw["last"]
    assert raw["harmonic"] < 0.10  # within 10 % of the base rate


def test_x3_harmonic_incremental_is_o1_memory(benchmark):
    """Eq. 2's selling point: constant state, regardless of history."""
    from repro.core.estimators import HarmonicMeanEstimator

    def run():
        estimator = HarmonicMeanEstimator()
        for i in range(1, 50_001):
            estimator.update(float(i % 97 + 1))
        return estimator

    estimator = benchmark.pedantic(run, rounds=1, iterations=1)
    assert estimator.sample_count == 50_000
    # State is two scalars — no history buffer attribute exists.
    assert not hasattr(estimator, "_samples")
