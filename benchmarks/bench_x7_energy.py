"""EXP-X7 — the energy cost of multipath (§7 future work, [17]).

    "Our scheduler currently does not take into account energy
    constraints when leveraging multiple interfaces on mobile devices."

Quantifies the constraint: MSPlayer (two radios) versus single-path
WiFi and LTE for the same 40 s pre-buffer, under the LTE-tail energy
model of Huang et al. [17].  Expected shape: MSPlayer finishes fastest
but pays for the LTE radio; WiFi-only is the energy-efficient choice;
LTE-only is dominated (slow *and* hungry) — exactly the trade-off an
energy-aware scheduler would navigate.
"""

import numpy as np
from conftest import trials

from repro.analysis.tables import format_table
from repro.core.config import PlayerConfig
from repro.ext.energy import EnergyModel, LTE_ENERGY, WIFI_ENERGY
from repro.sim.driver import MSPlayerDriver
from repro.sim.profiles import youtube_profile
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.singlepath import HTML5_CHUNK, SinglePathDriver


def run_comparison(n_trials: int):
    config = PlayerConfig()
    model_dual = EnergyModel({0: WIFI_ENERGY, 1: LTE_ENERGY})
    model_wifi = EnergyModel({0: WIFI_ENERGY})
    model_lte = EnergyModel({1: LTE_ENERGY})

    measurements = {"MSPlayer": [], "WiFi only": [], "LTE only": []}
    for seed in range(n_trials):

        def world(seed=seed):
            return Scenario(
                youtube_profile(),
                seed=seed,
                config=ScenarioConfig(video_duration_s=150.0),
            )

        ms = MSPlayerDriver(world(), config, stop="prebuffer").run()
        measurements["MSPlayer"].append(
            (ms.startup_delay, model_dual.report(ms.metrics))
        )
        wifi = SinglePathDriver(world(), 0, HTML5_CHUNK, config, stop="prebuffer").run()
        measurements["WiFi only"].append(
            (wifi.startup_delay, model_wifi.report(wifi.metrics))
        )
        lte_outcome = SinglePathDriver(
            world(), 1, HTML5_CHUNK, config, stop="prebuffer"
        ).run()
        # Single-path drivers record under the interface index; LTE is 1.
        measurements["LTE only"].append(
            (lte_outcome.startup_delay, model_lte.report(lte_outcome.metrics))
        )

    rows = []
    raw = {}
    for player, samples in measurements.items():
        delays = [delay for delay, _ in samples]
        joules = [report.total_joules for _, report in samples]
        raw[player] = {
            "median_startup_s": float(np.median(delays)),
            "mean_joules": float(np.mean(joules)),
        }
        rows.append(
            {
                "player": player,
                "median start-up (s)": f"{np.median(delays):.2f}",
                "session energy (J)": f"{np.mean(joules):.1f}",
            }
        )
    rendered = format_table(
        rows,
        title="EXP-X7 — energy vs start-up, 40 s pre-buffer "
        "(radio model: Huang et al. [17])",
    )
    return rendered, raw


def test_x7_energy_tradeoff(benchmark, record_result):
    rendered, raw = benchmark.pedantic(
        run_comparison, args=(max(trials() // 2, 5),), rounds=1, iterations=1
    )
    record_result("x7", rendered)

    # Speed ordering (Fig. 4's result, restated).
    assert raw["MSPlayer"]["median_startup_s"] < raw["WiFi only"]["median_startup_s"]
    # Energy ordering: the WiFi radio alone is cheapest; adding LTE
    # costs joules (the §7 constraint an energy-aware scheduler would
    # weigh).
    assert raw["WiFi only"]["mean_joules"] < raw["MSPlayer"]["mean_joules"]
    # LTE-only is dominated: slower than MSPlayer *and* hungrier than
    # WiFi-only (the long LTE tail).
    assert raw["LTE only"]["median_startup_s"] > raw["MSPlayer"]["median_startup_s"]
    assert raw["LTE only"]["mean_joules"] > raw["WiFi only"]["mean_joules"]
