"""EXP-F5 — Fig. 5: re-buffering refill times.

Paper: refilling 20/40/60 s of video with fixed-chunk single-path
players (64 KB Flash, 256 KB HTML5, over WiFi or LTE) versus MSPlayer.
Claims: larger chunks refill faster (fewer request round trips);
MSPlayer refills fastest everywhere.
"""

from conftest import jobs, run_study, trials


def test_fig5_rebuffer(benchmark, record_result):
    result = run_study(benchmark, "fig5", trials=max(trials() // 2, 4), jobs=jobs())
    record_result("fig5", result.rendered)
    raw = result.raw

    for duration in ("20s", "40s", "60s"):
        medians = raw[duration]
        # Chunk-size effect per interface (Fig. 5's within-group bars).
        assert medians["WiFi 256KB"] < medians["WiFi 64KB"], duration
        assert medians["LTE 256KB"] < medians["LTE 64KB"], duration
        # WiFi beats LTE at equal chunk size.
        assert medians["WiFi 256KB"] < medians["LTE 256KB"], duration
        # MSPlayer is the fastest configuration.
        singles = [v for k, v in medians.items() if k != "MSPlayer"]
        assert medians["MSPlayer"] < min(singles), duration


def test_fig5_refill_scales_with_amount(benchmark, record_result):
    result = run_study(benchmark, "fig5", trials=4, jobs=jobs())
    raw = result.raw
    # Refilling more video takes longer, for every player.
    for player in ("WiFi 256KB", "LTE 256KB", "MSPlayer"):
        assert raw["20s"][player] < raw["60s"][player]
    record_result("fig5_scaling", result.rendered)
