"""EXP-X1 — robustness (the §2/§7 claims the paper leaves unreported).

Two failure scenarios:

* a WiFi outage long enough to hit the single-path player mid-cycle:
  the single-path session aborts (the §2 motivation), MSPlayer rides
  LTE through with bounded stalling;
* a video-server crash: MSPlayer fails over to another server in the
  same network ("switches to another server in that network and
  resumes", §2) and finishes playback.
"""

from conftest import jobs, run_study, trials


def test_x1_robustness(benchmark, record_result):
    result = run_study(benchmark, "x1", trials=max(trials() // 2, 5), jobs=jobs())
    record_result("x1", result.rendered)
    raw = result.raw

    outage = raw["wifi-outage"]
    n = max(trials() // 2, 5)
    # Every single-path session dies in the outage window.
    assert outage["singlepath_aborted_sessions"] == n
    # MSPlayer rides LTE through a 60 s WiFi outage with a bounded
    # stall (refetching the broken path's chunk suffix over the slow
    # path, under the <=1 out-of-order constraint, costs a few seconds)
    # and never aborts.
    assert outage["msplayer_mean_stall_s"] < 10.0

    crash = raw["server-crash"]
    assert crash["sessions_finished"] == n
    assert crash["mean_failovers"] >= 1.0
    assert crash["mean_stall_s"] < 1.0
