"""EXP-X2 — source diversity ablation: MSPlayer vs MPTCP-analogue.

§2's argument against single-server multipath: "users streaming videos
from one server with high aggregate bandwidth through multiple paths
could quickly incur server demand surges".  With overloadable servers,
the MPTCP-like player (both subflows on one server) concentrates 100 %
of the demand and starts up slower; MSPlayer spreads the load.
"""

from conftest import jobs, run_study, trials


def test_x2_source_diversity(benchmark, record_result):
    result = run_study(benchmark, "x2", trials=max(trials() // 2, 5), jobs=jobs())
    record_result("x2", result.rendered)
    raw = result.raw

    # Load concentration: all-on-one vs spread-across-two.
    assert raw["mptcp_like"]["peak_server_share"] > 0.99
    assert raw["msplayer"]["peak_server_share"] < 0.85

    # With an overloadable server, diversity also wins on start-up.
    assert (
        raw["msplayer"]["median_startup_s"] < raw["mptcp_like"]["median_startup_s"]
    )
