"""EXP-X5 — ON/OFF re-buffering policy sweep (§7 future work).

    "We use a simple periodic downloading mechanism for playout
    re-buffering.  A more careful investigation of periodic downloading
    and ON/OFF mechanisms will be explored."

The sweep: low watermark × per-cycle fetch amount, on the bursty
wide-area profile.  The trade-off the paper anticipates appears
directly: tiny watermarks risk stalls on bandwidth dips and churn
through many small ON cycles (each OFF period cools the congestion
window, [23]); greedy policies hold more fetched-but-unwatched video
hostage to an abandoned playback — the §2 "waste of bandwidth" concern
that motivated just-in-time delivery in the first place.
"""

import numpy as np
from conftest import trials

from repro.analysis.tables import format_table
from repro.core.config import PlayerConfig
from repro.sim.driver import MSPlayerDriver
from repro.sim.profiles import youtube_profile
from repro.sim.scenario import Scenario, ScenarioConfig

GRID = [
    # (low watermark s, fetch per cycle s)
    (2.0, 10.0),
    (2.0, 30.0),
    (10.0, 20.0),  # the paper's §4 defaults
    (15.0, 30.0),
]

#: The "impatient viewer" instant at which unwatched buffer is sampled.
QUIT_AT_S = 60.0


def run_sweep(n_trials: int):
    rows = []
    raw = {}
    for low, fetch in GRID:
        config = PlayerConfig(low_watermark_s=low, rebuffer_fetch_s=fetch)
        stalls, requests, cycles, exposure = [], [], [], []
        for seed in range(n_trials):
            scenario = Scenario(
                youtube_profile(),
                seed=3000 + seed,
                config=ScenarioConfig(video_duration_s=240.0),
            )
            driver = MSPlayerDriver(scenario, config, stop="full")
            probe: dict[str, float] = {}

            def sample_buffer(env=scenario.env, driver=driver, probe=probe):
                yield env.timeout(QUIT_AT_S)
                if driver.session.buffer is not None:
                    probe["level"] = driver.session.buffer.level_s

            scenario.env.process(sample_buffer())
            outcome = driver.run()
            stalls.append(outcome.metrics.total_stall_time)
            requests.append(sum(outcome.requests_by_path.values()))
            cycles.append(len(outcome.metrics.completed_cycle_durations()))
            exposure.append(probe.get("level", 0.0))

        key = f"low={low:.0f}s fetch={fetch:.0f}s"
        raw[key] = {
            "mean_stall_s": float(np.mean(stalls)),
            "mean_requests": float(np.mean(requests)),
            "mean_cycles": float(np.mean(cycles)),
            "buffered_exposure_s": float(np.mean(exposure)),
        }
        rows.append(
            {
                "policy": key,
                "stall (mean s)": f"{np.mean(stalls):.2f}",
                "range requests": f"{np.mean(requests):.0f}",
                "ON cycles": f"{np.mean(cycles):.1f}",
                f"buffered @{QUIT_AT_S:.0f}s (s)": f"{np.mean(exposure):.1f}",
            }
        )
    rendered = format_table(
        rows, title="EXP-X5 — ON/OFF policy sweep (240 s video, wide-area profile)"
    )
    return rendered, raw


def test_x5_onoff_policy_sweep(benchmark, record_result):
    rendered, raw = benchmark.pedantic(
        run_sweep, args=(max(trials() // 2, 5),), rounds=1, iterations=1
    )
    record_result("x5", rendered)

    defaults = raw["low=10s fetch=20s"]
    risky = raw["low=2s fetch=10s"]
    greedy = raw["low=15s fetch=30s"]

    # The paper's defaults don't stall on this profile.
    assert defaults["mean_stall_s"] < 0.5
    # A 2 s watermark stalls at least as much as the defaults, and its
    # small cycles mean more ON/OFF churn.
    assert risky["mean_stall_s"] >= defaults["mean_stall_s"]
    assert risky["mean_cycles"] > defaults["mean_cycles"]
    # Greedier buffering exposes more unwatched data if the viewer quits
    # mid-stream (the just-in-time waste argument, §2).
    assert greedy["buffered_exposure_s"] > risky["buffered_exposure_s"]
