"""EXP-F4 — Fig. 4: pre-buffering over the YouTube(-like) service.

Paper: MSPlayer reduces start-up delay versus the best single path by
12 %, 21 %, 28 % for 20/40/60 s pre-buffers — the gain *grows* with the
pre-buffer because the second path's bootstrap cost amortizes.  We
assert MSPlayer wins at every duration, that the reduction at 60 s is
substantial (≥ 15 %), and that it exceeds the 20 s reduction.
"""

from conftest import jobs, run_study, trials


def test_fig4_prebuffer_youtube(benchmark, record_result):
    result = run_study(benchmark, "fig4", trials=trials(), jobs=jobs())
    record_result("fig4", result.rendered)
    raw = result.raw

    for duration in ("20s", "40s", "60s"):
        medians = raw[duration]["medians"]
        assert medians["MSPlayer"] < medians["WiFi"], duration
        assert medians["MSPlayer"] < medians["LTE"], duration
        assert medians["WiFi"] < medians["LTE"], duration  # WiFi is the fast path

    assert raw["60s"]["reduction"] >= 0.15
    # The amortization trend: longer pre-buffers gain more.
    assert raw["60s"]["reduction"] > raw["20s"]["reduction"] - 0.02
