"""BENCH-PERF-CORE — kernel and campaign throughput trajectory.

Unlike the figure benches (which assert paper *shapes*), this one
tracks *speed*: raw kernel event throughput, TCP exchange throughput
(the hot path the closed-form slow start optimizes), end-to-end trial
throughput serial vs ``--jobs auto``, whole-sweep campaign submission
vs the per-configuration barrier path, and columnar (OutcomeBatch /
vectorized bootstrap) vs per-trial Python-loop aggregation.  Numbers
land in ``benchmarks/results/BENCH_perf_core.json`` so the perf
trajectory is populated run over run.

Determinism is asserted alongside speed: the parallel campaign must
reproduce the serial outcomes byte-for-byte.

Speedup assertions are scaled to the runner: the ≥3× parallel target
only applies with ≥4 CPUs (trials are embarrassingly parallel, so the
pool scales with cores); single-core CI still measures and archives.
``--smoke`` (CI) shrinks every workload and skips the speedup floors —
shared runners are too noisy to assert ratios on — while still
exercising each path and archiving what it measured.
"""

from __future__ import annotations

import json
import os
import pickle
import time

import numpy as np
import pytest
from conftest import RESULTS_DIR

from repro.analysis.stats import bootstrap_ci, summarize
from repro.core.config import PlayerConfig
from repro.net.bandwidth import ConstantBandwidth
from repro.net.calendar import KERNELS, compiled_core
from repro.net.env import Environment
from repro.net.latency import ConstantLatency
from repro.net.link import Link
from repro.net.tcp import TCPConnection, TCPParams
from repro.sim.campaign import Campaign, OutcomeBatch
from repro.sim.profiles import testbed_profile
from repro.sim.runner import TrialRunner
from repro.sim.shm import OutcomeArena, encode_side
from repro.units import KB, mbit

RESULT_FILE = RESULTS_DIR / "BENCH_perf_core.json"

#: Trial count of the paper's campaigns (§5.2) — the parallel target.
CAMPAIGN_TRIALS = 20

#: Kernels measurable on this machine ("compiled" only when built).
BUILT_KERNELS = [
    kernel for kernel in KERNELS if kernel != "compiled" or compiled_core() is not None
]

#: The seed tree's archived ``kernel_events_per_sec`` (commit 89e28d2,
#: this machine): the monolithic heapq kernel driving the same periodic
#: wake-up storm through generator timeouts — the workload the fast
#: lane replaced.  The recorded ``kernel_speedup_vs_seed`` is the
#: kernel rewrite's headline ratio against this pinned number.
SEED_KERNEL_EVENTS_PER_SEC = 516_785


@pytest.fixture(scope="module")
def perf_record(smoke):
    record: dict[str, object] = {
        "schema": "perf_core/v2",
        "cpu_count": os.cpu_count(),
        "smoke": smoke,
    }
    yield record
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


class _Ticker:
    """A periodic wake-up churner on the bare-callback fast lane — the
    link ``_arm_wake`` pattern distilled: each firing re-arms itself
    until its budget runs out, so every event is one fast-lane push and
    one dispatch with zero Event allocations."""

    __slots__ = ("call_later", "remaining")

    def __init__(self, call_later, remaining):
        self.call_later = call_later
        self.remaining = remaining

    def __call__(self):
        left = self.remaining - 1
        if left:
            self.remaining = left
            self.call_later(0.001, self)


def _callback_storm(kernel: str, chains: int, depth: int) -> float:
    """Fast-lane events per second: ``chains`` concurrent churners,
    ``depth`` wake-ups each — the same logical workload the seed
    baseline drove through generator timeouts."""
    env = Environment(kernel=kernel)
    for _ in range(chains):
        env.call_later(0.001, _Ticker(env.call_later, depth))
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    return env.scheduled_count / elapsed


def _generator_storm(kernel: str, procs: int, timeouts: int) -> float:
    """Generator-timeout events per second — the seed's exact workload
    (``kernel_events_per_sec`` in the archived baseline), kept per
    kernel so the classic lane's trajectory stays visible too."""

    def worker(env, n):
        for _ in range(n):
            yield env.timeout(0.001)

    env = Environment(kernel=kernel)
    for _ in range(procs):
        env.process(worker(env, timeouts))
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    return env.scheduled_count / elapsed


def test_kernel_event_throughput(perf_record, smoke):
    """Dispatch rate of the bare discrete-event kernel, per kernel and
    per lane.  The headline ``kernel_events_per_sec`` is the calendar
    kernel on the fast lane — the rewrite's production hot path — and
    ``kernel_speedup_vs_seed`` is its ratio against the pinned seed
    baseline (same machine, same logical workload)."""
    chains, depth = (10, 300) if smoke else (50, 2000)
    repeats = 1 if smoke else 5
    for kernel in BUILT_KERNELS:
        fast = max(_callback_storm(kernel, chains, depth) for _ in range(repeats))
        classic = max(_generator_storm(kernel, chains, depth) for _ in range(repeats))
        perf_record[f"kernel_events_per_sec_{kernel}"] = round(fast)
        perf_record[f"kernel_generator_events_per_sec_{kernel}"] = round(classic)
        assert fast > 10_000  # sanity floor, not a target
    headline = perf_record["kernel_events_per_sec_calendar"]
    perf_record["kernel_events_per_sec"] = headline
    perf_record["kernel_speedup_vs_seed"] = round(
        headline / SEED_KERNEL_EVENTS_PER_SEC, 3
    )
    if not smoke:
        # Live same-machine floor (the nightly wall re-asserts this via
        # tests/test_kernel_perf_floor.py): the calendar fast lane must
        # comfortably beat the seed-shaped heapq generator path.
        live_ratio = headline / perf_record["kernel_generator_events_per_sec_heapq"]
        perf_record["kernel_live_speedup"] = round(live_ratio, 3)
        assert live_ratio >= 1.8, f"calendar fast lane only {live_ratio:.2f}x heapq"


def test_tcp_exchange_throughput(perf_record, smoke):
    """Slow-start exchanges per second, per kernel — the path where the
    closed-form cap schedule replaced a pacer process and the pooled
    timers replaced per-exchange Timeout allocations.  The headline key
    stays the default kernel (heapq) for run-over-run comparability."""
    exchanges = 300 if smoke else 2000
    repeats = 1 if smoke else 2

    def run(kernel: str) -> float:
        env = Environment(kernel=kernel)
        link = Link(env, ConstantBandwidth(mbit(80.0)))
        conn = TCPConnection(
            env, link, ConstantLatency(0.020), TCPParams(idle_reset_after=0.05)
        )

        def main(env):
            yield env.process(conn.connect())
            for _ in range(exchanges):
                yield env.process(conn.exchange(64 * KB))
                yield env.timeout(0.2)  # idle reset: fresh slow start each time

        proc = env.process(main(env))
        start = time.perf_counter()
        env.run(until=proc)
        return exchanges / (time.perf_counter() - start)

    for kernel in BUILT_KERNELS:
        rate = max(run(kernel) for _ in range(repeats))
        perf_record[f"tcp_exchanges_per_sec_{kernel}"] = round(rate)
        assert rate > 100  # sanity floor
    perf_record["tcp_exchanges_per_sec"] = perf_record["tcp_exchanges_per_sec_heapq"]


def test_campaign_throughput_serial_vs_parallel(perf_record, smoke):
    """A 20-trial fig3-style configuration, serial vs ``jobs='auto'``."""
    config = PlayerConfig(scheduler="harmonic", base_chunk_bytes=64 * KB)
    trials = 6 if smoke else CAMPAIGN_TRIALS

    def run(jobs):
        runner = TrialRunner(testbed_profile, trials=trials, jobs=jobs)
        start = time.perf_counter()
        result = runner.run("perf-core", runner.msplayer(config))
        return time.perf_counter() - start, result

    serial_s, serial = run("serial")
    parallel_s, parallel = run("auto")
    speedup = serial_s / parallel_s

    perf_record["campaign_trials"] = trials
    perf_record["campaign_serial_s"] = round(serial_s, 4)
    perf_record["campaign_auto_s"] = round(parallel_s, 4)
    perf_record["campaign_auto_speedup"] = round(speedup, 3)
    perf_record["campaign_trials_per_sec_serial"] = round(trials / serial_s, 2)
    perf_record["campaign_trials_per_sec_auto"] = round(trials / parallel_s, 2)

    # Determinism before speed: byte-identical outcomes.
    assert serial.startup_delays() == parallel.startup_delays()
    assert [o.finished_at for o in serial.outcomes] == [
        o.finished_at for o in parallel.outcomes
    ]

    cpus = os.cpu_count() or 1
    if smoke:
        pass  # measured and archived; shared runners are too noisy to gate on
    elif cpus >= 4:
        assert speedup >= 3.0, f"expected >=3x on {cpus} CPUs, got {speedup:.2f}x"
    elif cpus >= 2:
        assert speedup >= 1.2, f"expected >=1.2x on {cpus} CPUs, got {speedup:.2f}x"


def _sweep_configs() -> list[tuple[str, PlayerConfig]]:
    """A fig3-slice sweep: 6 configurations, heterogeneous durations."""
    configs = []
    for scheduler in ("harmonic", "ewma", "ratio"):
        for chunk in (64 * KB, 256 * KB):
            configs.append(
                (
                    f"{scheduler}-{chunk // KB}KB",
                    PlayerConfig(scheduler=scheduler, base_chunk_bytes=chunk),
                )
            )
    return configs


def test_campaign_vs_barrier_throughput(perf_record, smoke):
    """Whole-sweep campaign submission vs the PR-1 per-configuration
    barrier path (``TrialRunner.run`` once per configuration), both on
    ``jobs='auto'``.  The campaign feeds every configuration's trials
    to the pool at once, so workers never idle at configuration
    boundaries."""
    trials = 3 if smoke else 8

    # Warm the shared pool outside both timed regions so neither path
    # pays the one-off fork cost (pools are cached by worker count —
    # whichever run went first would otherwise absorb it).
    warmup = TrialRunner(testbed_profile, trials=2, jobs="auto")
    warmup.run("warmup", warmup.msplayer(PlayerConfig()))

    def run_barrier():
        runner = TrialRunner(testbed_profile, trials=trials, jobs="auto")
        start = time.perf_counter()
        results = {
            label: runner.run(label, runner.msplayer(config))
            for label, config in _sweep_configs()
        }
        return time.perf_counter() - start, results

    def run_campaign():
        runner = TrialRunner(testbed_profile, trials=trials)
        campaign = Campaign(jobs="auto")
        # Spec construction inside the timed region, symmetric with the
        # barrier path (TrialRunner.run builds specs per call).
        start = time.perf_counter()
        for label, config in _sweep_configs():
            campaign.add_run(runner, label, runner.msplayer(config))
        results = campaign.run()
        return time.perf_counter() - start, results

    barrier_s, barrier = run_barrier()
    campaign_s, campaign = run_campaign()
    speedup = barrier_s / campaign_s

    perf_record["sweep_configurations"] = len(_sweep_configs())
    perf_record["sweep_trials_per_config"] = trials
    perf_record["sweep_barrier_s"] = round(barrier_s, 4)
    perf_record["sweep_campaign_s"] = round(campaign_s, 4)
    perf_record["sweep_campaign_speedup"] = round(speedup, 3)

    # Determinism first: interleaving changes nothing per label.
    for label, _config in _sweep_configs():
        assert campaign[label].startup_delays() == barrier[label].startup_delays()
        assert [o.finished_at for o in campaign[label].outcomes] == [
            o.finished_at for o in barrier[label].outcomes
        ]

    # Barrier removal only shows with real workers to keep busy; the
    # serial fallback (1 CPU) runs the same trials either way.
    if not smoke and (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.05, f"campaign slower than barrier path: {speedup:.2f}x"


def test_columnar_aggregation_throughput(perf_record, smoke):
    """OutcomeBatch-vectorized analysis vs the retired per-trial
    Python-loop accessors, on a campaign-sized outcome list."""
    runner = TrialRunner(testbed_profile, trials=4)
    seed_result = runner.run(
        "agg", runner.msplayer(PlayerConfig(), stop="cycles", target_cycles=1)
    )
    # Campaign-scale sample without campaign-scale simulation time:
    # replicate the real outcomes (aggregation cost is what's measured).
    outcomes = (seed_result.outcomes * 500)[: (400 if smoke else 2000)]

    def python_loop_queries():
        """What the retired accessors did: every statistic re-walks the
        outcome objects (TrialResult.startup_delays / cycle_durations /
        traffic_fractions were each their own pass over the Python
        objects, and Table 1 alone made four of them)."""
        startups = [o.startup_delay for o in outcomes if o.startup_delay is not None]
        cycles: list[float] = []
        for outcome in outcomes:
            cycles.extend(outcome.metrics.completed_cycle_durations())
        values = [summarize(startups).median, summarize(cycles).median]
        for path_id in (0, 1):
            for phase in ("prebuffer", "rebuffer"):
                fractions = [
                    o.metrics.traffic_fraction(path_id, phase) for o in outcomes
                ]
                values.append(float(np.mean(fractions)))
                values.append(float(np.std(fractions)))
        return values

    batch = OutcomeBatch.from_outcomes(outcomes)

    def columnar_queries():
        """Vectorized queries on the cached batch — TrialResult builds
        its OutcomeBatch once and every accessor rides on it."""
        values = [
            summarize(batch.startup_delays()).median,
            summarize(batch.cycle_durations).median,
        ]
        for path_id in (0, 1):
            for phase in ("prebuffer", "rebuffer"):
                fractions = batch.traffic_fractions(path_id, phase)
                values.append(float(np.mean(fractions)))
                values.append(float(np.std(fractions)))
        return values

    assert python_loop_queries() == columnar_queries()

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    extract_s = best_of(lambda: OutcomeBatch.from_outcomes(outcomes))
    loop_s = best_of(python_loop_queries)
    columnar_s = best_of(columnar_queries)
    query_speedup = loop_s / columnar_s
    # Including the one-off extraction pass (amortized across every
    # accessor call in real use — TrialResult caches the batch).
    total_speedup = loop_s / (extract_s + columnar_s)

    perf_record["aggregation_outcomes"] = len(outcomes)
    perf_record["aggregation_extract_ms"] = round(extract_s * 1000, 3)
    perf_record["aggregation_python_loop_ms"] = round(loop_s * 1000, 3)
    perf_record["aggregation_columnar_ms"] = round(columnar_s * 1000, 3)
    perf_record["aggregation_query_speedup"] = round(query_speedup, 3)
    perf_record["aggregation_total_speedup"] = round(total_speedup, 3)

    if not smoke:
        assert query_speedup > 2.0, (
            f"vectorized queries should beat per-trial walks, got {query_speedup:.2f}x"
        )


def test_ipc_collection_pickle_vs_shm(perf_record, smoke):
    """The trial-result collection layer in isolation, per IPC mode.

    Pickle path (``REPRO_IPC=pickle``): every outcome crosses the pool
    pipe as a deep pickle of the ``SessionOutcome`` object graph, and
    the parent unpickles it all back before transposing into an
    ``OutcomeBatch``.  Shm path (the default): the worker stores the
    dense scalars straight into the arena row and pickles only the
    flat ``SideRecord`` remainder; the parent assembles the batch from
    the arena columns without materializing a single outcome object.
    Simulation time is excluded on purpose — this measures collection,
    the part the shm arena changes.
    """
    n = 400 if smoke else 2000
    runner = TrialRunner(testbed_profile, trials=4)
    seed_result = runner.run(
        "ipc", runner.msplayer(PlayerConfig(), stop="cycles", target_cycles=1)
    )
    outcomes = (seed_result.outcomes * (1 + n // len(seed_result.outcomes)))[:n]

    def pickle_collection() -> OutcomeBatch:
        received = [pickle.loads(pickle.dumps(o)) for o in outcomes]
        return OutcomeBatch.from_outcomes(received)

    def shm_collection() -> OutcomeBatch:
        arena = OutcomeArena.create(len(outcomes))
        try:
            for i, outcome in enumerate(outcomes):  # worker side, in place
                arena.write(i, outcome)
            sides = [
                pickle.loads(pickle.dumps(encode_side(o))) for o in outcomes
            ]  # the side channel through the pipe
            dense = arena.read_columns()
        finally:
            arena.destroy()
        return OutcomeBatch.from_dense_and_sides(dense, sides)

    # Determinism before speed: both collection paths assemble the
    # same batch, bit for bit — every column the dataclass declares.
    via_pickle, via_shm = pickle_collection(), shm_collection()
    assert via_pickle.column_mismatches(via_shm) == []

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    pickle_s = best_of(pickle_collection)
    shm_s = best_of(shm_collection)
    speedup = pickle_s / shm_s

    perf_record["ipc_outcomes"] = n
    perf_record["ipc_side_record_bytes"] = len(pickle.dumps(encode_side(outcomes[0])))
    perf_record["ipc_full_outcome_bytes"] = len(pickle.dumps(outcomes[0]))
    perf_record["ipc_pickle_collection_ms"] = round(pickle_s * 1000, 3)
    perf_record["ipc_shm_collection_ms"] = round(shm_s * 1000, 3)
    perf_record["ipc_shm_speedup"] = round(speedup, 3)

    if not smoke:
        assert speedup > 1.1, (
            f"shm collection should beat full-outcome pickling, got {speedup:.2f}x"
        )


def test_bootstrap_vectorization_throughput(perf_record, smoke):
    """Vectorized bootstrap (one ``(resamples, n)`` draw) vs the
    retired 2000-``rng.choice``-calls implementation."""
    rng = np.random.Generator(np.random.PCG64(1))
    values = rng.normal(10.0, 2.0, size=200)

    def old_bootstrap():
        gen = np.random.Generator(np.random.PCG64(0))
        stats = np.empty(2000)
        for i in range(2000):
            stats[i] = np.median(gen.choice(values, size=values.size, replace=True))
        return float(np.quantile(stats, 0.025)), float(np.quantile(stats, 0.975))

    start = time.perf_counter()
    old_ci = old_bootstrap()
    old_s = time.perf_counter() - start

    start = time.perf_counter()
    new_ci = bootstrap_ci(values)
    new_s = time.perf_counter() - start
    speedup = old_s / new_s

    perf_record["bootstrap_loop_ms"] = round(old_s * 1000, 3)
    perf_record["bootstrap_vectorized_ms"] = round(new_s * 1000, 3)
    perf_record["bootstrap_speedup"] = round(speedup, 3)

    # Different resample draw, same distribution: intervals overlap.
    assert max(old_ci[0], new_ci[0]) < min(old_ci[1], new_ci[1])
    if not smoke:
        assert speedup > 2.0, f"vectorized bootstrap should win big, got {speedup:.2f}x"
