"""BENCH-PERF-CORE — kernel and campaign throughput trajectory.

Unlike the figure benches (which assert paper *shapes*), this one
tracks *speed*: raw kernel event throughput, TCP exchange throughput
(the hot path the closed-form slow start optimizes), and end-to-end
trial throughput serial vs ``--jobs auto``.  Numbers land in
``results/BENCH_perf_core.json`` so the perf trajectory is populated
run over run.

Determinism is asserted alongside speed: the parallel campaign must
reproduce the serial outcomes byte-for-byte.

Speedup assertions are scaled to the runner: the ≥3× parallel target
only applies with ≥4 CPUs (trials are embarrassingly parallel, so the
pool scales with cores); single-core CI still measures and archives.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import RESULTS_DIR

from repro.core.config import PlayerConfig
from repro.net.bandwidth import ConstantBandwidth
from repro.net.env import Environment
from repro.net.latency import ConstantLatency
from repro.net.link import Link
from repro.net.tcp import TCPConnection, TCPParams
from repro.sim.profiles import testbed_profile
from repro.sim.runner import TrialRunner
from repro.units import KB, mbit

RESULT_FILE = RESULTS_DIR / "BENCH_perf_core.json"

#: Trial count of the paper's campaigns (§5.2) — the parallel target.
CAMPAIGN_TRIALS = 20


@pytest.fixture(scope="module")
def perf_record():
    record: dict[str, object] = {
        "schema": "perf_core/v1",
        "cpu_count": os.cpu_count(),
    }
    yield record
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def test_kernel_event_throughput(perf_record):
    """Dispatch rate of the bare discrete-event kernel (timeout storm)."""

    def worker(env, n):
        for _ in range(n):
            yield env.timeout(0.001)

    env = Environment()
    for _ in range(50):
        env.process(worker(env, 2000))
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    events_per_sec = env._counter / elapsed
    perf_record["kernel_events_per_sec"] = round(events_per_sec)
    assert events_per_sec > 10_000  # sanity floor, not a target


def test_tcp_exchange_throughput(perf_record):
    """Slow-start exchanges per second — the path the closed-form cap
    schedule replaced a pacer process + O(log S/RTT) timeouts on."""
    env = Environment()
    link = Link(env, ConstantBandwidth(mbit(80.0)))
    conn = TCPConnection(
        env, link, ConstantLatency(0.020), TCPParams(idle_reset_after=0.05)
    )
    exchanges = 2000

    def main(env):
        yield env.process(conn.connect())
        for _ in range(exchanges):
            yield env.process(conn.exchange(64 * KB))
            yield env.timeout(0.2)  # idle reset: fresh slow start each time

    proc = env.process(main(env))
    start = time.perf_counter()
    env.run(until=proc)
    elapsed = time.perf_counter() - start
    perf_record["tcp_exchanges_per_sec"] = round(exchanges / elapsed)
    assert exchanges / elapsed > 100  # sanity floor


def test_campaign_throughput_serial_vs_parallel(perf_record):
    """A 20-trial fig3-style configuration, serial vs ``jobs='auto'``."""
    config = PlayerConfig(scheduler="harmonic", base_chunk_bytes=64 * KB)

    def run(jobs):
        runner = TrialRunner(testbed_profile, trials=CAMPAIGN_TRIALS, jobs=jobs)
        start = time.perf_counter()
        result = runner.run("perf-core", runner.msplayer(config))
        return time.perf_counter() - start, result

    serial_s, serial = run("serial")
    parallel_s, parallel = run("auto")
    speedup = serial_s / parallel_s

    perf_record["campaign_trials"] = CAMPAIGN_TRIALS
    perf_record["campaign_serial_s"] = round(serial_s, 4)
    perf_record["campaign_auto_s"] = round(parallel_s, 4)
    perf_record["campaign_auto_speedup"] = round(speedup, 3)
    perf_record["campaign_trials_per_sec_serial"] = round(CAMPAIGN_TRIALS / serial_s, 2)
    perf_record["campaign_trials_per_sec_auto"] = round(CAMPAIGN_TRIALS / parallel_s, 2)

    # Determinism before speed: byte-identical outcomes.
    assert serial.startup_delays() == parallel.startup_delays()
    assert [o.finished_at for o in serial.outcomes] == [
        o.finished_at for o in parallel.outcomes
    ]

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedup >= 3.0, f"expected >=3x on {cpus} CPUs, got {speedup:.2f}x"
    elif cpus >= 2:
        assert speedup >= 1.2, f"expected >=1.2x on {cpus} CPUs, got {speedup:.2f}x"
