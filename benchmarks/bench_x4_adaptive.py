"""EXP-X4 — DASH integration (§7 future work).

A constrained two-path world whose aggregate capacity hovers near the
720p bitrate and dips below it: the paper's fixed-bitrate player must
stall through the dips, while the adaptive extension (same transport,
per-segment bitrate control) downshifts and keeps playing — the trade
DASH exists to make.
"""

import numpy as np
from conftest import trials

from repro.core.config import PlayerConfig
from repro.ext.adaptive import (
    AdaptiveSimDriver,
    BufferBasedController,
    FixedBitrateController,
    ThroughputController,
)
from repro.analysis.tables import format_table
from repro.cdn.videos import FORMATS
from repro.sim.profiles import InterfaceProfile, NetworkProfile
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.units import MS


def constrained_profile() -> NetworkProfile:
    """Aggregate ≈ 3.6 Mb/s mean with deep dips below 720p's 2.7 Mb/s."""
    return NetworkProfile(
        name="constrained",
        wifi=InterfaceProfile(
            kind="wifi",
            mean_mbps=2.4,
            sigma=0.2,
            rho=0.8,
            one_way_delay_s=17.5 * MS,
            markov_states=((1.3, 6.0), (0.45, 4.0)),
        ),
        lte=InterfaceProfile(
            kind="lte",
            mean_mbps=1.5,
            sigma=0.3,
            rho=0.8,
            one_way_delay_s=45.0 * MS,
            markov_states=((1.3, 5.0), (0.4, 4.0)),
        ),
    )


PLAYER = PlayerConfig(prebuffer_s=12.0, low_watermark_s=6.0, rebuffer_fetch_s=8.0)


def run_controllers(n_trials: int):
    rows = []
    raw = {}
    controllers = {
        "fixed-720p": lambda: FixedBitrateController(22),
        "buffer-based": lambda: BufferBasedController(reservoir_s=6.0, cushion_s=16.0),
        "throughput": lambda: ThroughputController(safety=0.7),
    }
    for name, make in controllers.items():
        stalls, bitrates, switches = [], [], []
        for seed in range(n_trials):
            scenario = Scenario(
                constrained_profile(),
                seed=seed,
                config=ScenarioConfig(video_duration_s=150.0),
            )
            outcome = AdaptiveSimDriver(
                scenario, make(), PLAYER, stop="full", max_sim_time=600.0
            ).run()
            stalls.append(outcome.metrics.total_stall_time)
            bitrates.append(outcome.mean_bitrate_bps)
            switches.append(outcome.switches)
        raw[name] = {
            "mean_stall_s": float(np.mean(stalls)),
            "mean_bitrate_mbps": float(np.mean(bitrates)) / 1e6,
            "mean_switches": float(np.mean(switches)),
        }
        rows.append(
            {
                "controller": name,
                "stall (mean s)": f"{np.mean(stalls):.2f}",
                "bitrate (Mb/s)": f"{np.mean(bitrates) / 1e6:.2f}",
                "switches": f"{np.mean(switches):.1f}",
            }
        )
    rendered = format_table(
        rows,
        title="EXP-X4 — DASH integration on a constrained two-path link "
        "(aggregate dips below 720p's rate)",
    )
    return rendered, raw


def test_x4_adaptive_vs_fixed(benchmark, record_result):
    rendered, raw = benchmark.pedantic(
        run_controllers, args=(max(trials() // 2, 5),), rounds=1, iterations=1
    )
    record_result("x4", rendered)

    fixed = raw["fixed-720p"]
    # The fixed player stalls on this link; both adaptive controllers
    # cut stalling by at least 3x.
    assert fixed["mean_stall_s"] > 2.0
    for name in ("buffer-based", "throughput"):
        assert raw[name]["mean_stall_s"] < fixed["mean_stall_s"] / 3.0, name
        # The price is bitrate: adaptation streams below 720p on average.
        assert raw[name]["mean_bitrate_mbps"] < fixed["mean_bitrate_mbps"]
    # The throughput controller rides the aggregate pipe: above the
    # 360p floor on average, switching as the Markov states move.
    floor = (FORMATS[18].video_bitrate_bps + FORMATS[18].audio_bitrate_bps) / 1e6
    assert raw["throughput"]["mean_bitrate_mbps"] > floor * 1.05
    assert raw["throughput"]["mean_switches"] >= 1.0
    # The buffer-based controller is the conservative end of the design
    # space: on a link this tight it hugs the lowest rung (no stalls,
    # lowest quality) — the classic BBA reservoir behaviour.
    assert raw["buffer-based"]["mean_stall_s"] == 0.0
