"""EXP-F1 — Fig. 1: HTTPS bootstrap milestones vs closed forms.

Regenerates the timing analysis of §3.2: per-path measured ψ (complete
video-info JSON) and π (first video packet) against ``ψ = 6R + Δ1 + Δ2``
and ``π ≈ ψ + η``, plus the fast path's head start ``≈ 10(θ−1)R₁``,
for θ ∈ {1.5, 2, 2.5, 3}.
"""

import pytest
from conftest import jobs, run_study


def test_fig1_bootstrap_milestones(benchmark, record_result):
    result = run_study(benchmark, "fig1", jobs=jobs())
    record_result("fig1", result.rendered)

    for theta_label, data in result.raw.items():
        measured = data["measured"]
        predicted = data["predicted"]
        # Closed forms hold within 15 % (the residual is the JSON body
        # transfer, which the formula rounds to "two round trips").
        for key in ("psi_wifi", "psi_lte", "pi_wifi", "pi_lte"):
            assert measured[key] == pytest.approx(
                predicted[key], rel=0.15
            ), f"{theta_label}:{key}"
        # Head start tracks 10(θ−1)R₁ within 10 % of π_lte's scale.
        assert abs(measured["head_start"] - predicted["head_start"]) < (
            0.10 * predicted["pi_lte"] + 1e-3
        )


def test_fig1_head_start_grows_with_theta(benchmark, record_result):
    result = run_study(benchmark, "fig1", jobs=jobs())
    head_starts = [data["measured"]["head_start"] for data in result.raw.values()]
    assert head_starts == sorted(head_starts)
    record_result("fig1_theta_scan", result.rendered)
