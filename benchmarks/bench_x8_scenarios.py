"""EXP-X8 / EXP-X9 — city-scale scenario populations with SLO gates.

The scenarios package's headline workloads: "x8" arrives along a
compressed diurnal curve with the default city mix (campus VOD, mobile
walk-outs, live edge, adaptive), "x9" drops most of the population as a
flash crowd while the churn timeline browns out and crashes video
servers beneath it.  Both report *population SLOs* (start-up tail,
rebuffer ratio, failover rate, imbalance) per server-selection policy.

The bench times the x8 campaign serial vs ``--jobs auto``, asserts
byte-identity (scenario populations shard like any other work unit),
smokes x9 at the same scale, asserts the SLO-shape claims, and archives
wall clocks + per-policy SLOs in
``benchmarks/results/BENCH_x8_scenarios.json`` next to the rendered
panels in ``x8.txt`` / ``x9.txt``.  Speedup floors only gate full
(non ``--smoke``) runs on ≥4 CPUs.
"""

import json
import os
import time

from conftest import RESULTS_DIR, trials

from repro.study import run_experiment

RESULT_FILE = RESULTS_DIR / "BENCH_x8_scenarios.json"


def run_x8(clients: int, replicates: int, jobs):
    result = run_experiment("x8", replicates=replicates, clients=clients, jobs=jobs)
    return result.rendered, result.raw


def test_x8_x9_scenario_slos(benchmark, record_result, smoke):
    clients = 8 if smoke else 120
    replicates = 1 if smoke else trials(2)

    serial_start = time.perf_counter()
    rendered, raw = run_x8(clients, replicates, "serial")
    serial_s = time.perf_counter() - serial_start

    auto_start = time.perf_counter()
    auto_rendered, auto_raw = benchmark.pedantic(
        run_x8, args=(clients, replicates, "auto"), rounds=1, iterations=1
    )
    auto_s = time.perf_counter() - auto_start
    record_result("x8", rendered)

    # Determinism before speed: scenario populations shard cleanly.
    assert auto_rendered == rendered
    assert auto_raw == raw

    # The robustness scenario, same scale, parallel backend.
    x9 = run_experiment(
        "x9", replicates=replicates, clients=clients, jobs="auto"
    )
    record_result("x9", x9.rendered)

    speedup = serial_s / auto_s
    record = {
        "schema": "x8_scenarios/v1",
        "cpu_count": os.cpu_count(),
        "smoke": smoke,
        "clients": clients,
        "replicates": replicates,
        "policies": 3,
        "serial_s": round(serial_s, 4),
        "auto_s": round(auto_s, 4),
        "auto_speedup": round(speedup, 3),
        "x8_slos": raw,
        "x9_slos": x9.raw,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    for panel in (raw, x9.raw):
        for policy, slo in panel.items():
            # Every population reports a full SLO panel.
            assert slo["sessions"] == clients * replicates, policy
            assert slo["completed"] > 0, policy
            assert slo["p99_startup_s"] >= slo["p95_startup_s"] >= slo["p50_startup_s"]
            assert 0.0 <= slo["rebuffer_ratio"] < 1.0, policy
            assert slo["imbalance_max"] >= slo["imbalance_mean"] >= 1.0, policy

    if not smoke:
        # Under the flash crowd + churn, single-server static selection
        # concentrates load worse than rotation.
        assert (
            x9.raw["static"]["imbalance_mean"]
            > x9.raw["rotate"]["imbalance_mean"]
        )

    cpus = os.cpu_count() or 1
    if not smoke and cpus >= 4:
        assert speedup >= 1.5, (
            f"expected scenario-campaign speedup on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )
