"""EXP-T1 — Table 1: fraction of traffic carried over WiFi.

Paper (mean ± std, initial chunk 256 KB):

    Pre-buffering: 64.1±9.3 / 60.1±15.0 / 63.7±12.6 % (20/40/60 s)
    Re-buffering:  61.8±7.1 / 61.7±11.5 / 56.5±11.6 %

The load-bearing claims: WiFi (the fast path, θ ≈ 2–3) carries the
*majority* of bytes in both phases, thanks to its bootstrap head start
(pre-buffering) and its lower per-request RTT tax (re-buffering), and
the shares stay in a 50–80 % band rather than saturating to 100 %.
"""

from conftest import jobs, run_study, trials


def test_table1_traffic_fraction(benchmark, record_result):
    result = run_study(benchmark, "table1", trials=trials(), jobs=jobs())
    record_result("table1", result.rendered)
    raw = result.raw

    for duration in ("20s", "40s", "60s"):
        for phase in ("prebuffer", "rebuffer"):
            mean = raw[duration][f"{phase}_mean"]
            std = raw[duration][f"{phase}_std"]
            assert 0.50 <= mean <= 0.85, (duration, phase, mean)
            # Run-to-run spread exists (the paper reports ±7–15 %) but
            # stays moderate.
            assert std <= 0.25, (duration, phase, std)
