"""EXP-F2 — Fig. 2: testbed pre-buffering download time.

Paper: 40 s pre-buffer of 720p on the emulated testbed — median
download time 6.9 s for MSPlayer (Ratio scheduler, 1 MB initial chunks)
vs 10.9 s for the best single path (WiFi), a 37 % reduction; LTE worse
than WiFi.  We assert the ordering and a ≥ 25 % reduction.
"""

from conftest import jobs, run_study, trials


def test_fig2_prebuffer_testbed(benchmark, record_result):
    result = run_study(benchmark, "fig2", trials=trials(), jobs=jobs())
    record_result("fig2", result.rendered)

    medians = result.raw["medians"]
    # Ordering: MSPlayer < WiFi < LTE (Fig. 2's panel top to bottom).
    assert medians["MSPlayer"] < medians["WiFi"] < medians["LTE"]
    # The headline factor: paper measures 37 %; shape-match at >= 25 %.
    assert result.raw["reduction"] >= 0.25
