"""Shared benchmark plumbing.

Each benchmark regenerates one paper figure/table via the experiment
functions in :mod:`repro.analysis.experiments`, asserts the *shape*
claims (orderings, trends — not absolute seconds), prints the rendered
panel, and archives it under ``benchmarks/results/``.

Trial count: the paper repeats 20×; benches default to 10 for CI speed.
Set ``REPRO_TRIALS=20`` for a full paper-fidelity run.

Trial parallelism: ``REPRO_JOBS`` selects the trial execution backend
for every campaign (see :mod:`repro.sim.execution`) — ``serial`` (the
default), ``auto`` (one worker process per CPU), or an integer worker
count.  Trials derive independent seeds, so the archived panels are
byte-identical whatever the backend; ``REPRO_TRIALS=20 REPRO_JOBS=auto``
is the fast paper-fidelity run.

Caching: ``REPRO_CACHE=DIR`` points every study at a content-addressed
cell cache (:mod:`repro.study.cache`), so repeated bench invocations
against the same code recompute nothing — useful when iterating on a
bench's assertions rather than the simulation.  Cached panels are
byte-identical to fresh ones, but the *timing* then measures the cache,
so leave it unset for real measurements (``run_study`` passes the knob
through explicitly for the same reason).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    # CI-sized pass: `pytest benchmarks/bench_perf_core.py --smoke`
    # shrinks workload sizes and skips the speedup floors (shared CI
    # runners are too noisy to assert ratios on) while still exercising
    # every path and archiving the measured numbers.
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="minimal benchmark sizes for CI; measures and archives, "
        "skips speedup-floor assertions",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


def trials(default: int = 10) -> int:
    return int(os.environ.get("REPRO_TRIALS", default))


def jobs(default: str | int | None = None) -> str | int | None:
    """The ``jobs`` knob benches pass to experiment functions."""
    return os.environ.get("REPRO_JOBS", default)


@pytest.fixture
def record_result(capsys):
    """Print a rendered experiment and archive it to results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_study(benchmark, experiment_id, *, jobs=None, cache=None, **params):
    """Run a registered experiment once via the study registry.

    The benches drive experiments by id through
    :func:`repro.study.run_experiment` (the same
    :class:`~repro.study.Study` path the CLI generates), so bench
    coverage cannot drift from ``repro list`` — an id with no schema,
    or params the schema rejects, fails here exactly like it fails on
    the command line.  ``tests/test_study_registry.py`` gates the
    inverse: every registered id is referenced by some bench file.

    ``cache`` (or ``REPRO_CACHE``) points at a study cell cache — the
    panel is byte-identical either way, but a hit measures the cache,
    not the simulation.
    """
    from repro.study import run_experiment

    return benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"jobs": jobs, "cache": cache, **params},
        rounds=1,
        iterations=1,
    )
