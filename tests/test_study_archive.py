"""StudyResult archives: versioned, schema-checked, bit-exact."""

import json
import pathlib

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.study import SCHEMA_VERSION, Study, StudyResult
from repro.study.archive import _paths


@pytest.fixture(scope="module")
def grid_result():
    """A grid over two parameters — the acceptance-criteria shape."""
    return Study("fig2", trials=2).grid(seed=[2014, 2015], trials=[2, 3]).run()


@pytest.fixture()
def archived(grid_result, tmp_path):
    json_path, npz_path = grid_result.save(tmp_path / "fig2-grid")
    return grid_result, json_path, npz_path


class TestRoundTrip:
    def test_dense_columns_bit_identical(self, archived):
        original, json_path, _ = archived
        loaded = StudyResult.load(json_path)
        assert original.column_mismatches(loaded) == []
        assert loaded.column_mismatches(original) == []

    def test_metadata_survives(self, archived):
        original, json_path, _ = archived
        loaded = StudyResult.load(json_path)
        assert loaded.experiment_id == "fig2"
        assert loaded.kind == original.kind
        assert loaded.params == original.params
        assert loaded.axes == original.axes
        assert loaded.rendered == original.rendered
        for mine, theirs in zip(original.cells, loaded.cells, strict=True):
            assert mine.overrides == theirs.overrides
            assert mine.params == theirs.params

    def test_load_accepts_base_json_or_npz_path(self, archived):
        original, json_path, npz_path = archived
        for path in (json_path, npz_path, json_path[: -len(".json")]):
            assert StudyResult.load(path).rendered == original.rendered

    def test_nan_columns_survive(self, tmp_path):
        # fig1's startup column is a real float column; force a NaN via
        # a batch that contains one (never-started sessions).  Cheaper:
        # round-trip an x3 study and check exact float bits instead.
        result = Study("x3", samples=60).run()
        json_path, _ = result.save(tmp_path / "x3")
        loaded = StudyResult.load(json_path)
        assert result.column_mismatches(loaded) == []
        raw = result.only().result.raw
        assert loaded.only().result.raw == raw

    def test_many_params_restored_as_tuples(self, tmp_path):
        result = Study("fig1", thetas=(2.0,)).run()
        json_path, _ = result.save(tmp_path / "fig1")
        loaded = StudyResult.load(json_path)
        assert loaded.params["thetas"] == (2.0,)
        assert isinstance(loaded.params["thetas"], tuple)

    def test_population_columns_round_trip(self, tmp_path):
        result = Study("x6", replicates=1, clients=2).run()
        json_path, _ = result.save(tmp_path / "x6")
        loaded = StudyResult.load(json_path)
        assert result.column_mismatches(loaded) == []
        batch_columns = loaded.only().columns["static"]
        assert "load_imbalance" in batch_columns
        assert batch_columns["client_offsets"].dtype == np.int64


class TestRejection:
    def _mutate(self, json_path, **changes):
        path = pathlib.Path(json_path)
        manifest = json.loads(path.read_text())
        manifest.update(changes)
        path.write_text(json.dumps(manifest))

    def test_schema_version_bump_rejected(self, archived):
        _, json_path, _ = archived
        self._mutate(json_path, schema_version=SCHEMA_VERSION + 1)
        with pytest.raises(ConfigError, match="schema version"):
            StudyResult.load(json_path)

    def test_foreign_format_rejected(self, archived):
        _, json_path, _ = archived
        self._mutate(json_path, format="not-a-study")
        with pytest.raises(ConfigError, match="format"):
            StudyResult.load(json_path)

    def test_missing_key_rejected(self, archived):
        _, json_path, _ = archived
        path = pathlib.Path(json_path)
        manifest = json.loads(path.read_text())
        del manifest["cells"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigError, match="cells"):
            StudyResult.load(json_path)

    def test_wrong_type_rejected(self, archived):
        _, json_path, _ = archived
        self._mutate(json_path, axes=[1, 2])
        with pytest.raises(ConfigError, match="axes"):
            StudyResult.load(json_path)

    def test_unknown_experiment_rejected(self, archived):
        _, json_path, _ = archived
        self._mutate(json_path, experiment="fig99")
        with pytest.raises(ConfigError, match="fig99"):
            StudyResult.load(json_path)

    def test_kind_mismatch_rejected(self, archived):
        _, json_path, _ = archived
        self._mutate(json_path, kind="population")
        with pytest.raises(ConfigError, match="kind"):
            StudyResult.load(json_path)

    def test_npz_manifest_drift_rejected(self, archived):
        _, json_path, _ = archived
        path = pathlib.Path(json_path)
        manifest = json.loads(path.read_text())
        manifest["columns"] = manifest["columns"][:-1]
        path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigError, match="npz columns"):
            StudyResult.load(json_path)

    def test_missing_archive_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            StudyResult.load(tmp_path / "nope")

    def test_missing_npz_payload_is_a_config_error(self, archived, tmp_path):
        original, json_path, npz_path = archived
        pathlib.Path(npz_path).unlink()
        with pytest.raises(ConfigError, match="payload not found"):
            StudyResult.load(json_path)

    def test_dotted_base_names_do_not_collide(self, grid_result, tmp_path):
        v1_json, v1_npz = grid_result.save(tmp_path / "fig2.v1")
        v2_json, v2_npz = grid_result.save(tmp_path / "fig2.v2")
        assert pathlib.Path(v1_json).name == "fig2.v1.json"
        assert pathlib.Path(v2_json).name == "fig2.v2.json"
        assert {v1_json, v1_npz, v2_json, v2_npz} == {
            str(tmp_path / name)
            for name in ("fig2.v1.json", "fig2.v1.npz", "fig2.v2.json", "fig2.v2.npz")
        }
        assert StudyResult.load(v1_json).rendered == grid_result.rendered

    def test_invalid_json_is_a_config_error(self, tmp_path):
        json_path, _ = _paths(tmp_path / "bad")
        json_path.write_text("{not json")
        with pytest.raises(ConfigError, match="JSON"):
            StudyResult.load(json_path)

    def test_torn_archive_names_the_failure_mode(self, archived):
        _, json_path, npz_path = archived
        pathlib.Path(npz_path).unlink()
        with pytest.raises(ConfigError, match="torn archive"):
            StudyResult.load(json_path)

    def test_truncated_npz_is_a_config_error(self, archived):
        _, json_path, npz_path = archived
        payload = pathlib.Path(npz_path)
        payload.write_bytes(payload.read_bytes()[:100])
        with pytest.raises(ConfigError, match="truncated or corrupt"):
            StudyResult.load(json_path)

    def test_garbage_npz_is_a_config_error(self, archived):
        _, json_path, npz_path = archived
        pathlib.Path(npz_path).write_bytes(b"PK\x03\x04 this is not a zip")
        with pytest.raises(ConfigError, match="npz"):
            StudyResult.load(json_path)


class TestColumnMeta:
    """The manifest's dtype/shape declarations guard the npz payload."""

    def _rewrite_meta(self, json_path, mutate):
        path = pathlib.Path(json_path)
        manifest = json.loads(path.read_text())
        mutate(manifest["column_meta"])
        path.write_text(json.dumps(manifest))

    def test_manifest_declares_every_column(self, archived):
        _, json_path, _ = archived
        manifest = json.loads(pathlib.Path(json_path).read_text())
        assert sorted(manifest["column_meta"]) == sorted(manifest["columns"])
        for meta in manifest["column_meta"].values():
            assert set(meta) == {"dtype", "shape"}

    def test_dtype_drift_is_a_config_error(self, archived):
        _, json_path, _ = archived

        def flip_dtype(column_meta):
            key = sorted(column_meta)[0]
            column_meta[key]["dtype"] = "<i2"

        self._rewrite_meta(json_path, flip_dtype)
        with pytest.raises(ConfigError, match="dtype"):
            StudyResult.load(json_path)

    def test_shape_drift_is_a_config_error(self, archived):
        _, json_path, _ = archived

        def grow_shape(column_meta):
            key = sorted(column_meta)[0]
            column_meta[key]["shape"] = [999]

        self._rewrite_meta(json_path, grow_shape)
        with pytest.raises(ConfigError, match="shape"):
            StudyResult.load(json_path)

    def test_undeclared_column_is_a_config_error(self, archived):
        _, json_path, _ = archived

        def drop_one(column_meta):
            del column_meta[sorted(column_meta)[0]]

        self._rewrite_meta(json_path, drop_one)
        with pytest.raises(ConfigError, match="column_meta"):
            StudyResult.load(json_path)


class TestAtomicDeterministicWrites:
    def test_repeated_saves_are_byte_identical(self, grid_result, tmp_path):
        grid_result.save(tmp_path / "a")
        grid_result.save(tmp_path / "b")
        for suffix in (".json", ".npz"):
            first = (tmp_path / "a").with_suffix(suffix).read_bytes()
            second = (tmp_path / "b").with_suffix(suffix).read_bytes()
            assert first == second, suffix

    def test_save_overwrites_in_place_atomically(self, grid_result, tmp_path):
        json_path, npz_path = grid_result.save(tmp_path / "a")
        before = pathlib.Path(npz_path).read_bytes()
        grid_result.save(tmp_path / "a")
        assert pathlib.Path(npz_path).read_bytes() == before
        assert StudyResult.load(json_path).rendered == grid_result.rendered

    def test_no_temp_files_left_behind(self, grid_result, tmp_path):
        grid_result.save(tmp_path / "a")
        leftovers = [
            path.name for path in tmp_path.iterdir() if ".tmp-" in path.name
        ]
        assert leftovers == []
