"""Seed derivation: determinism and stream independence."""

import numpy as np
import pytest

from repro.rng import RngFactory


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).generator("wifi").random(10)
        b = RngFactory(42).generator("wifi").random(10)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = RngFactory(42).generator("wifi").random(10)
        b = RngFactory(42).generator("lte").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).generator("wifi").random(10)
        b = RngFactory(2).generator("wifi").random(10)
        assert not np.array_equal(a, b)

    def test_child_is_deterministic(self):
        a = RngFactory(42).child("trial3").generator("x").random()
        b = RngFactory(42).child("trial3").generator("x").random()
        assert a == b

    def test_children_differ(self):
        a = RngFactory(42).child("trial1").generator("x").random()
        b = RngFactory(42).child("trial2").generator("x").random()
        assert a != b

    def test_integer_in_range(self):
        for label in ("a", "b", "c"):
            value = RngFactory(7).integer(label, high=1000)
            assert 0 <= value < 1000

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("42")  # type: ignore[arg-type]

    def test_label_independence_is_stable_under_new_labels(self):
        # Adding a new labelled stream must not perturb existing ones.
        factory = RngFactory(9)
        before = factory.generator("existing").random(5)
        factory.generator("brand-new-component").random(5)
        after = RngFactory(9).generator("existing").random(5)
        assert np.array_equal(before, after)
