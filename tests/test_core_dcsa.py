"""Algorithm 1 (DCSA): every branch, plus hypothesis invariants."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.dcsa import MIN_CHUNK_BYTES, dynamic_chunk_size_adjustment
from repro.errors import SchedulerError
from repro.units import KB, MB

BASE = 256 * KB


def dcsa(current, other, est_self, est_other, measured, delta=0.05, base=BASE, **kwargs):
    return dynamic_chunk_size_adjustment(
        current_size=current,
        other_size=other,
        estimate_self=est_self,
        estimate_other=est_other,
        measured_self=measured,
        delta=delta,
        base_chunk=base,
        **kwargs,
    )


class TestBranches:
    def test_no_estimate_returns_base(self):
        # "if ŵi not available then Si ← B".
        assert dcsa(64 * KB, 512 * KB, None, 4000.0, 999.0) == BASE

    def test_slow_path_doubles_on_improvement(self):
        # wi > (1+δ)ŵi → Si ← 2·Si.
        assert dcsa(64 * KB, 512 * KB, 1000.0, 4000.0, 1051.0) == 128 * KB

    def test_slow_path_halves_on_decline(self):
        # wi < (1−δ)ŵi → Si ← max{⌈Si/2⌉, 16KB}.
        assert dcsa(64 * KB, 512 * KB, 1000.0, 4000.0, 949.0) == 32 * KB

    def test_slow_path_floor_is_16kb(self):
        assert dcsa(16 * KB, 512 * KB, 1000.0, 4000.0, 100.0) == 16 * KB
        assert dcsa(20 * KB, 512 * KB, 1000.0, 4000.0, 100.0) == 16 * KB

    def test_slow_path_holds_inside_band(self):
        # (1−δ)ŵi ≤ wi ≤ (1+δ)ŵi → unchanged.
        assert dcsa(64 * KB, 512 * KB, 1000.0, 4000.0, 1000.0) == 64 * KB
        assert dcsa(64 * KB, 512 * KB, 1000.0, 4000.0, 1049.0) == 64 * KB
        assert dcsa(64 * KB, 512 * KB, 1000.0, 4000.0, 951.0) == 64 * KB

    def test_fast_path_gamma_multiple(self):
        # γ = ⌈ŵi/ŵ1−i⌉, Si ← γ·S1−i.
        assert dcsa(MB, 64 * KB, 4000.0, 1000.0, 4100.0) == 4 * 64 * KB

    def test_fast_path_gamma_ceils(self):
        assert dcsa(MB, 64 * KB, 4100.0, 1000.0, 4100.0) == 5 * 64 * KB

    def test_equal_estimates_treated_as_fast(self):
        # ŵi == ŵ1−i falls to the else branch: γ = 1.
        assert dcsa(128 * KB, 64 * KB, 1000.0, 1000.0, 1000.0) == 64 * KB

    def test_missing_other_estimate_gamma_one(self):
        assert dcsa(128 * KB, 64 * KB, 1000.0, None, 1000.0) == 64 * KB

    def test_max_chunk_clamp(self):
        result = dcsa(MB, MB, 9000.0, 1000.0, 9000.0, max_chunk=2 * MB)
        assert result == 2 * MB

    def test_paper_has_no_max_clamp_by_default(self):
        result = dcsa(MB, MB, 9000.0, 1000.0, 9000.0)
        assert result == 9 * MB


class TestValidation:
    def test_delta_range(self):
        with pytest.raises(SchedulerError):
            dcsa(BASE, BASE, 1.0, 1.0, 1.0, delta=0.0)
        with pytest.raises(SchedulerError):
            dcsa(BASE, BASE, 1.0, 1.0, 1.0, delta=1.0)

    def test_nonpositive_sizes(self):
        with pytest.raises(SchedulerError):
            dcsa(0, BASE, 1.0, 1.0, 1.0)
        with pytest.raises(SchedulerError):
            dcsa(BASE, 0, 1.0, 1.0, 1.0)

    def test_nonpositive_measurement(self):
        with pytest.raises(SchedulerError):
            dcsa(BASE, BASE, 1.0, 1.0, 0.0)

    def test_base_below_min_rejected(self):
        with pytest.raises(SchedulerError):
            dcsa(BASE, BASE, 1.0, 1.0, 1.0, base=1 * KB)


sizes = st.integers(min_value=MIN_CHUNK_BYTES, max_value=64 * MB)
rates = st.floats(min_value=1.0, max_value=1e9)
maybe_rates = st.one_of(st.none(), rates)


class TestInvariants:
    @given(sizes, sizes, maybe_rates, maybe_rates, rates)
    def test_result_at_least_min_chunk(self, current, other, est_self, est_other, measured):
        result = dcsa(current, other, est_self, est_other, measured)
        assert result >= MIN_CHUNK_BYTES

    @given(sizes, sizes, rates, rates, rates)
    def test_slow_path_changes_by_power_of_two_or_holds(
        self, current, other, est_self, est_other, measured
    ):
        if est_self >= est_other:
            return  # fast path; different invariant
        result = dcsa(current, other, est_self, est_other, measured)
        assert result in (
            2 * current,
            max(math.ceil(current / 2), MIN_CHUNK_BYTES),
            current,
        )

    @given(sizes, sizes, rates, rates, rates)
    def test_fast_path_is_integer_multiple_of_other(
        self, current, other, est_self, est_other, measured
    ):
        if est_self < est_other:
            return
        result = dcsa(current, other, est_self, est_other, measured, max_chunk=None)
        assert result % other == 0 or result == MIN_CHUNK_BYTES

    @given(sizes, sizes, rates, rates, rates, st.integers(min_value=1, max_value=64))
    def test_max_clamp_respected(self, current, other, est_self, est_other, measured, mb):
        max_chunk = max(mb * MB, MIN_CHUNK_BYTES)
        result = dcsa(
            current, other, est_self, est_other, measured, max_chunk=max_chunk
        )
        assert MIN_CHUNK_BYTES <= result <= max(max_chunk, MIN_CHUNK_BYTES)

    @given(sizes, sizes, maybe_rates, maybe_rates, rates)
    def test_deterministic(self, current, other, est_self, est_other, measured):
        a = dcsa(current, other, est_self, est_other, measured)
        b = dcsa(current, other, est_self, est_other, measured)
        assert a == b
