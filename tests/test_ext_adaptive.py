"""Adaptive-bitrate extension: controllers and the segment driver."""

import pytest

from repro.cdn.videos import FORMATS
from repro.core.config import PlayerConfig
from repro.errors import ConfigError
from repro.ext.adaptive import (
    AdaptiveSimDriver,
    BufferBasedController,
    FixedBitrateController,
    ThroughputController,
)
from repro.sim.profiles import testbed_profile
from repro.sim.scenario import Scenario, ScenarioConfig

LADDER = [18, 22, 37]  # ascending bitrate


class TestControllers:
    def test_fixed_always_returns_itag(self):
        controller = FixedBitrateController(22)
        assert controller.select(LADDER, 0.0, None, 18) == 22
        assert controller.select(LADDER, 100.0, 1e9, 37) == 22

    def test_fixed_requires_itag_in_ladder(self):
        with pytest.raises(ConfigError):
            FixedBitrateController(45).select(LADDER, 0.0, None, 18)

    def test_buffer_based_reservoir_floor(self):
        controller = BufferBasedController(reservoir_s=8.0, cushion_s=24.0)
        assert controller.select(LADDER, 4.0, None, 22) == 18

    def test_buffer_based_cushion_ceiling(self):
        controller = BufferBasedController(reservoir_s=8.0, cushion_s=24.0)
        assert controller.select(LADDER, 30.0, None, 18) == 37

    def test_buffer_based_linear_middle(self):
        controller = BufferBasedController(reservoir_s=8.0, cushion_s=24.0)
        # Two-thirds of the way up the cushion: the middle rung.
        assert controller.select(LADDER, 16.0, None, 18) == 22

    def test_buffer_based_validation(self):
        with pytest.raises(ConfigError):
            BufferBasedController(reservoir_s=10.0, cushion_s=5.0)

    def test_throughput_no_estimate_floor(self):
        assert ThroughputController().select(LADDER, 10.0, None, 22) == 18

    def test_throughput_picks_highest_sustainable(self):
        controller = ThroughputController(safety=1.0)
        rate_22 = FORMATS[22].total_bitrate_bytes_per_s
        assert controller.select(LADDER, 10.0, rate_22 * 1.01, 18) == 22

    def test_throughput_safety_margin(self):
        # At safety 0.5, an estimate exactly at the 720p rate affords
        # only the lower rung.
        controller = ThroughputController(safety=0.5)
        rate_22 = FORMATS[22].total_bitrate_bytes_per_s
        assert controller.select(LADDER, 10.0, rate_22, 18) == 18

    def test_throughput_floor_when_nothing_fits(self):
        assert ThroughputController().select(LADDER, 10.0, 1.0, 22) == LADDER[0]

    def test_throughput_validation(self):
        with pytest.raises(ConfigError):
            ThroughputController(safety=0.0)


def quick_config():
    return PlayerConfig(prebuffer_s=8.0, low_watermark_s=4.0, rebuffer_fetch_s=6.0)


def make_driver(controller, seed=9, duration=60.0, **kwargs):
    scenario = Scenario(
        testbed_profile(), seed=seed, config=ScenarioConfig(video_duration_s=duration)
    )
    return AdaptiveSimDriver(
        scenario, controller, quick_config(), stop=kwargs.pop("stop", "full"),
        max_sim_time=kwargs.pop("max_sim_time", 400.0), **kwargs
    )


class TestAdaptiveDriver:
    def test_fixed_controller_never_switches(self):
        outcome = make_driver(FixedBitrateController(22)).run()
        assert outcome.stop_reason == "playback-finished"
        assert outcome.switches == 0
        assert set(outcome.itag_history) == {22}

    def test_all_segments_fetched(self):
        outcome = make_driver(FixedBitrateController(18), duration=47.0).run()
        # 47 s at 4 s segments = 12 segments.
        assert len(outcome.itag_history) == 12

    def test_throughput_controller_upshifts_on_fast_link(self):
        # The testbed aggregate (~17.5 Mb/s) sustains 1080p easily:
        # after the warm-up segment the controller rides the top rung.
        outcome = make_driver(ThroughputController(), duration=80.0).run()
        assert outcome.time_at_itag(37) > 0.5
        assert outcome.metrics.total_stall_time == 0.0

    def test_mean_bitrate_between_ladder_ends(self):
        outcome = make_driver(ThroughputController(), duration=80.0).run()
        low = FORMATS[18].total_bitrate_bytes_per_s * 8
        high = FORMATS[37].total_bitrate_bytes_per_s * 8
        assert low <= outcome.mean_bitrate_bps <= high

    def test_prebuffer_stop(self):
        outcome = make_driver(FixedBitrateController(22), stop="prebuffer").run()
        assert outcome.stop_reason == "prebuffer-complete"
        assert outcome.metrics.startup_delay is not None

    def test_deterministic_given_seed(self):
        a = make_driver(ThroughputController(), seed=4).run()
        b = make_driver(ThroughputController(), seed=4).run()
        assert a.itag_history == b.itag_history
        assert a.finished_at == b.finished_at

    def test_both_paths_fetch_segments(self):
        outcome = make_driver(FixedBitrateController(22), duration=80.0).run()
        assert set(outcome.metrics.requests_by_path) == {0, 1}

    def test_invalid_segment_duration(self):
        scenario = Scenario(
            testbed_profile(), seed=1, config=ScenarioConfig(video_duration_s=30.0)
        )
        with pytest.raises(ConfigError):
            AdaptiveSimDriver(scenario, FixedBitrateController(22), segment_s=0.0)

    def test_invalid_stop(self):
        scenario = Scenario(
            testbed_profile(), seed=1, config=ScenarioConfig(video_duration_s=30.0)
        )
        with pytest.raises(ValueError):
            AdaptiveSimDriver(scenario, FixedBitrateController(22), stop="cycles")
