"""Live HTTP server units: one server, raw socket client."""

import asyncio

import pytest

from repro.http.h1 import H1Parser
from repro.http.messages import Request, Response
from repro.live.server import LiveHTTPServer, make_app_adapter
from repro.live.shaping import PathShape


def run(coroutine):
    return asyncio.run(coroutine)


def echo_app(request: Request, client_network: str) -> Response:
    if request.path == "/echo":
        return Response(200, body=f"{request.query.get('m', '')}@{client_network}".encode())
    if request.path == "/virtual":
        return Response(200, body_size=10_000)  # simulator-style body
    return Response.error(404)


async def one_server():
    shape = PathShape(name="test", rate=5_000_000.0, one_way_delay=0.001)
    server = LiveHTTPServer(make_app_adapter(echo_app), shape, client_network="test-net")
    await server.start()
    return server


async def roundtrip(server: LiveHTTPServer, request: Request) -> Response:
    reader, writer = await asyncio.open_connection(server.host, server.port)
    try:
        writer.write(request.encode())
        await writer.drain()
        parser = H1Parser(role="response")
        while True:
            data = await reader.read(65536)
            assert data, "connection closed before response completed"
            messages = parser.feed(data)
            if messages:
                return messages[0].to_response()
    finally:
        writer.close()


class TestLiveHTTPServer:
    def test_echo_roundtrip(self):
        async def main():
            server = await one_server()
            try:
                response = await roundtrip(
                    server, Request.get("/echo?m=hello", host=server.address)
                )
            finally:
                await server.stop()
            return response

        response = run(main())
        assert response.status == 200
        assert response.body == b"hello@test-net"

    def test_virtual_body_materialized(self):
        async def main():
            server = await one_server()
            try:
                return await roundtrip(
                    server, Request.get("/virtual", host=server.address)
                )
            finally:
                await server.stop()

        response = run(main())
        assert len(response.body) == 10_000

    def test_persistent_connection_two_requests(self):
        async def main():
            server = await one_server()
            try:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                parser = H1Parser(role="response")
                bodies = []
                for message in ("a", "b"):
                    writer.write(
                        Request.get(f"/echo?m={message}", host=server.address).encode()
                    )
                    await writer.drain()
                    while True:
                        data = await reader.read(65536)
                        messages = parser.feed(data)
                        if messages:
                            bodies.append(messages[0].body)
                            break
                writer.close()
                return bodies, server.requests_served
            finally:
                await server.stop()

        bodies, served = run(main())
        assert bodies == [b"a@test-net", b"b@test-net"]
        assert served == 2

    def test_malformed_request_gets_400(self):
        async def main():
            server = await one_server()
            try:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(b"COMPLETE GARBAGE\r\n\r\n")
                await writer.drain()
                data = await reader.read(65536)
                writer.close()
                return data
            finally:
                await server.stop()

        data = run(main())
        assert b"400" in data.split(b"\r\n")[0]

    def test_address_requires_start(self):
        shape = PathShape(name="t", rate=1e6, one_way_delay=0.0)
        server = LiveHTTPServer(make_app_adapter(echo_app), shape, client_network="n")
        with pytest.raises(RuntimeError):
            _ = server.address

    def test_shaping_slows_transfer(self):
        async def timed_fetch(rate):
            shape = PathShape(name="t", rate=rate, one_way_delay=0.0, burst=8 * 1024)
            server = LiveHTTPServer(
                make_app_adapter(echo_app), shape, client_network="n"
            )
            await server.start()
            loop = asyncio.get_running_loop()
            try:
                start = loop.time()
                await roundtrip(server, Request.get("/virtual", host=server.address))
                return loop.time() - start
            finally:
                await server.stop()

        async def main():
            slow = await timed_fetch(20_000.0)  # 10 kB at 20 kB/s ≈ 0.4+ s
            fast = await timed_fetch(5_000_000.0)
            return slow, fast

        slow, fast = run(main())
        assert slow > fast * 2
        assert slow > 0.05
